// Package cost implements the performance metric of the declustering
// study. For a query touching the bucket set Q under an allocation onto
// M disks, the response time is the number of buckets the busiest disk
// must read,
//
//	RT(Q) = max_d |{q ∈ Q : diskOf(q) = d}|,
//
// because the M disks read their shares in parallel. No allocation can
// beat RT_opt(Q) = ⌈|Q|/M⌉, so the study reports both the mean response
// time of a method over a workload and its deviation from that optimum.
package cost

import (
	"sync"

	"decluster/internal/alloc"
	"decluster/internal/grid"
	"decluster/internal/query"
	"decluster/internal/stats"
)

// DiskLoads returns, per disk, how many buckets of r the method assigns
// to it. The slice has Disks() entries.
func DiskLoads(m alloc.Method, r grid.Rect) []int {
	loads := make([]int, m.Disks())
	grid.EachRect(r, func(c grid.Coord) bool {
		loads[m.DiskOf(c)]++
		return true
	})
	return loads
}

// ResponseTime returns the parallel response time of the query r under
// method m, in bucket accesses: the maximum per-disk load.
func ResponseTime(m alloc.Method, r grid.Rect) int {
	return stats.MaxInts(DiskLoads(m, r))
}

// OptimalRT returns the information-theoretic lower bound ⌈volume/M⌉ on
// the response time of any allocation for a query of the given volume.
// The ceiling is computed divide-first so a volume near math.MaxInt
// (e.g. a saturated Rect.Volume) cannot wrap the addition.
func OptimalRT(volume, disks int) int {
	q := volume / disks
	if volume%disks != 0 {
		q++
	}
	return q
}

// IsOptimalFor reports whether method m achieves the optimal response
// time on query r.
func IsOptimalFor(m alloc.Method, r grid.Rect) bool {
	return ResponseTime(m, r) == OptimalRT(r.Volume(), m.Disks())
}

// Result aggregates a method's performance over one workload.
type Result struct {
	Method   string  // method name
	Workload string  // workload name
	Queries  int     // number of queries evaluated
	MeanRT   float64 // mean response time, bucket accesses
	MeanOpt  float64 // mean optimal response time
	Ratio    float64 // MeanRT / MeanOpt: mean deviation from optimal (≥ 1)
	WorstRT  int     // worst response time observed
	// FracOptimal is the fraction of queries on which the method
	// achieved the optimal response time exactly.
	FracOptimal float64
}

// Evaluate measures method m over workload w.
func Evaluate(m alloc.Method, w query.Workload) Result {
	return aggregate(m.Name(), m.Disks(), w, func(q grid.Rect) int {
		return ResponseTime(m, q)
	})
}

// aggregate folds per-query response times into a Result. Every kernel
// (the naive walk above, Evaluator, PrefixEvaluator) funnels through
// this one loop so their Results are bit-identical: same integer sums,
// same float divisions, in the same order.
func aggregate(method string, disks int, w query.Workload, rt func(grid.Rect) int) Result {
	res := Result{Method: method, Workload: w.Name, Queries: len(w.Queries)}
	if len(w.Queries) == 0 {
		res.Ratio = 1
		return res
	}
	sumRT, sumOpt, optimalCount := 0, 0, 0
	for _, q := range w.Queries {
		t := rt(q)
		opt := OptimalRT(q.Volume(), disks)
		sumRT += t
		sumOpt += opt
		if t == opt {
			optimalCount++
		}
		if t > res.WorstRT {
			res.WorstRT = t
		}
	}
	n := float64(len(w.Queries))
	res.MeanRT = float64(sumRT) / n
	res.MeanOpt = float64(sumOpt) / n
	res.Ratio = stats.Ratio(res.MeanRT, res.MeanOpt)
	res.FracOptimal = float64(optimalCount) / n
	return res
}

// EvaluateAll measures every method over the same workload, preserving
// method order — one row per method of an experiment's table. Methods
// are evaluated concurrently (each with its own table-materializing
// Evaluator; see evaluator.go), which is safe because methods are
// immutable after construction.
func EvaluateAll(methods []alloc.Method, w query.Workload) []Result {
	out := make([]Result, len(methods))
	var wg sync.WaitGroup
	for i, m := range methods {
		wg.Add(1)
		go func(i int, m alloc.Method) {
			defer wg.Done()
			out[i] = NewEvaluator(m).Evaluate(w)
		}(i, m)
	}
	wg.Wait()
	return out
}

// Matrix evaluates every method over every workload: one row per
// workload, one column per method. Rows preserve workload order,
// columns method order. Evaluators are shared across workloads, so the
// allocation tables materialize once per method.
func Matrix(methods []alloc.Method, ws []query.Workload) [][]Result {
	evals := make([]*Evaluator, len(methods))
	for i, m := range methods {
		evals[i] = NewEvaluator(m)
	}
	out := make([][]Result, len(ws))
	for i, w := range ws {
		row := make([]Result, len(methods))
		for j, e := range evals {
			row[j] = e.Evaluate(w)
		}
		out[i] = row
	}
	return out
}
