package cost

import (
	"decluster/internal/alloc"
	"decluster/internal/grid"
	"decluster/internal/query"
)

// Evaluator amortizes the per-query overheads of evaluating one method
// over many queries: the allocation is materialized once into a flat
// table (a single slice lookup replaces the method's per-coordinate
// computation) and the per-disk load counters are reused across
// queries. For table-backed methods this removes interface-call and
// allocation overhead; for computed methods (DM, FX, ECC) it also
// removes the arithmetic from the inner loop. The experiment harness
// evaluates millions of (query, bucket) pairs, so this path matters —
// see BenchmarkEvaluateWorkload.
//
// An Evaluator is not safe for concurrent use (shared scratch); create
// one per goroutine.
type Evaluator struct {
	method alloc.Method
	g      *grid.Grid
	disks  int
	table  []int
	loads  []int
	// strides mirror the grid's row-major linearization so the hot loop
	// can walk bucket numbers incrementally instead of re-linearizing.
	strides []int
	// cur is the rectangle walk's odometer scratch, reused across
	// queries so ResponseTime allocates nothing.
	cur []int
}

// NewEvaluator materializes the method's allocation.
func NewEvaluator(m alloc.Method) *Evaluator {
	g := m.Grid()
	strides := make([]int, g.K())
	stride := 1
	for i := g.K() - 1; i >= 0; i-- {
		strides[i] = stride
		stride *= g.Dim(i)
	}
	return &Evaluator{
		method:  m,
		g:       g,
		disks:   m.Disks(),
		table:   alloc.Table(m),
		loads:   make([]int, m.Disks()),
		strides: strides,
		cur:     make([]int, g.K()),
	}
}

// setDisk updates the materialized table entry for bucket b — the walk
// kernel's delta maintenance (a cell moving disks is one table write).
func (e *Evaluator) setDisk(b, d int) { e.table[b] = d }

// Method returns the evaluated method.
func (e *Evaluator) Method() alloc.Method { return e.method }

// ResponseTime returns the parallel response time of the query in
// bucket accesses, using the materialized table.
func (e *Evaluator) ResponseTime(r grid.Rect) int {
	for i := range e.loads {
		e.loads[i] = 0
	}
	// Walk the rectangle in row-major order, maintaining the bucket
	// number incrementally.
	k := len(r.Lo)
	cur := e.cur[:k]
	base := 0
	for i := 0; i < k; i++ {
		cur[i] = r.Lo[i]
		base += r.Lo[i] * e.strides[i]
	}
	max := 0
	n := base
	for {
		d := e.table[n]
		e.loads[d]++
		if e.loads[d] > max {
			max = e.loads[d]
		}
		i := k - 1
		for ; i >= 0; i-- {
			cur[i]++
			n += e.strides[i]
			if cur[i] <= r.Hi[i] {
				break
			}
			n -= (cur[i] - r.Lo[i]) * e.strides[i]
			cur[i] = r.Lo[i]
		}
		if i < 0 {
			return max
		}
	}
}

// Evaluate measures the method over a workload with the same aggregates
// as the package-level Evaluate.
func (e *Evaluator) Evaluate(w query.Workload) Result {
	return aggregate(e.method.Name(), e.disks, w, e.ResponseTime)
}
