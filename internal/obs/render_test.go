package obs

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from this run's output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch (re-run with -update if the change is intended)\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestRenderTreeGolden pins the span-tree renderer on a canned query
// lifecycle: every interval is set explicitly, so the output is
// byte-for-byte deterministic.
func TestRenderTreeGolden(t *testing.T) {
	s := NewSink()
	s.EnableTracing(1)
	ms := func(f float64) time.Duration { return time.Duration(f * float64(time.Millisecond)) }
	tr := s.StartTrace("query <3,4>..<9,9> prio 0")
	tr.Root().SetInterval(0, ms(12.40))

	admit := tr.Root().Child("admit")
	admit.SetInterval(ms(0.01), ms(0.22))
	ex := tr.Root().Child("exec")
	ex.SetInterval(ms(0.25), ms(12.36))

	d0 := ex.Child("disk 0")
	d0.SetInterval(ms(0.30), ms(12.10))
	a1 := d0.Child("read b17 attempt 1")
	a1.mu.Lock()
	a1.start, a1.end = ms(0.31), ms(3.05) // left unfinished on purpose
	a1.mu.Unlock()
	a2 := d0.Child("read b17 attempt 2")
	a2.SetInterval(ms(3.10), ms(12.05))
	hedge := a2.Child("hedge d4")
	hedge.SetInterval(ms(8.10), ms(12.00))

	d3 := ex.Child("disk 3")
	d3.SetInterval(ms(0.30), ms(2.40))
	a3 := d3.Child("read b41 attempt 1")
	a3.SetInterval(ms(0.32), ms(2.35))
	a3.mu.Lock()
	a3.errmsg = errors.New("fault: disk 3 unavailable").Error()
	a3.mu.Unlock()
	rrsp := a3.Child("read-repair d3 b41")
	rrsp.SetInterval(ms(1.10), ms(2.30))

	s.FinishTrace(tr)

	var buf bytes.Buffer
	if err := tr.RenderTree(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"├─", "└─", "│", "(unfinished)", "[fault: disk 3 unavailable]"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	checkGolden(t, "trace_tree.golden", out)
}

// TestWriteTableGolden and TestWriteCSVGolden pin the dump formats on a
// hand-built registry with known values — exact, no normalization.
func buildDumpRegistry() *Registry {
	r := NewRegistry()
	r.Counter("serve.queries.issued").Add(42)
	r.Counter("serve.queries.completed").Add(40)
	r.Gauge("serve.queue.depth").Set(3)
	h := r.Histogram("serve.query.latency")
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond} {
		h.Observe(d)
	}
	f := r.CounterFamily("exec.disk.read.attempts", "disk", 3)
	f.At(0).Add(10)
	f.At(1).Add(20)
	f.At(2).Add(12)
	gf := r.GaugeFamily("serve.node.queue.depth", "node", 3)
	gf.At(0).Set(2)
	gf.At(2).Set(7)
	hf := r.HistogramFamily("exec.disk.read.latency", "disk", 2)
	hf.At(0).Observe(3 * time.Millisecond)
	hf.At(1).Observe(5 * time.Millisecond)
	return r
}

func TestWriteTableGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildDumpRegistry().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "registry_table.golden", buf.String())
}

func TestWriteCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildDumpRegistry().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "kind,name,label,field,value\n") {
		t.Fatalf("CSV header wrong: %q", strings.SplitN(out, "\n", 2)[0])
	}
	checkGolden(t, "registry_csv.golden", out)
}

func TestRenderTreeNilTrace(t *testing.T) {
	var tr *Trace
	var buf bytes.Buffer
	if err := tr.RenderTree(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil trace rendered %q, err %v", buf.String(), err)
	}
}
