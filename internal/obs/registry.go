package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket latency histogram over int64 nanosecond
// observations. Bucket b counts observations v with bounds[b-1] < v ≤
// bounds[b]; an implicit overflow bucket catches everything above the
// last bound. Count, sum, min, and max are tracked exactly; quantiles
// are estimated by linear interpolation inside the covering bucket
// using the same rank convention as stats.Percentile, and are clamped
// into [Min, Max] so the edge cases (empty → 0, p ≤ 0 → min, p ≥ 100 →
// max, single sample → that sample) agree with package stats exactly.
type Histogram struct {
	bounds []int64 // ascending upper bounds, ns
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

// DefaultLatencyBounds is a 1-2-5 exponential ladder from 1µs to 10s —
// wide enough for simulated disk reads and whole-query latencies alike.
func DefaultLatencyBounds() []time.Duration {
	var out []time.Duration
	for decade := time.Microsecond; decade <= time.Second; decade *= 10 {
		out = append(out, decade, 2*decade, 5*decade)
	}
	return append(out, 10*time.Second)
}

func newHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds()
	}
	h := &Histogram{
		bounds: make([]int64, len(bounds)),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	for i, b := range bounds {
		h.bounds[i] = int64(b)
	}
	sort.Slice(h.bounds, func(i, j int) bool { return h.bounds[i] < h.bounds[j] })
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	v := int64(d)
	// Binary search for the first bound ≥ v; the overflow bucket is
	// len(bounds).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() time.Duration {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Percentile estimates the p-th percentile (0 ≤ p ≤ 100). Conventions
// match stats.Percentile: an empty histogram returns 0, p is clamped
// into [0, 100] (p ≤ 0 → Min, p ≥ 100 → Max), and a NaN p returns 0.
// The estimate interpolates linearly inside the bucket covering the
// rank p/100·(n−1) and is clamped into [Min, Max], so it can differ
// from the exact sample percentile by at most the covering bucket's
// width.
func (h *Histogram) Percentile(p float64) time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 || math.IsNaN(p) {
		return 0
	}
	if p <= 0 {
		return h.Min()
	}
	if p >= 100 {
		return h.Max()
	}
	rank := p / 100 * float64(n-1)
	var cum uint64
	for b := range h.counts {
		c := h.counts[b].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) > rank {
			// The rank falls in bucket b: interpolate by position.
			frac := (rank - float64(cum)) / float64(c)
			lo, hi := h.bucketEdges(b)
			v := float64(lo) + frac*float64(hi-lo)
			return h.clamp(time.Duration(v))
		}
		cum += c
	}
	return h.Max()
}

// bucketEdges returns bucket b's value range, tightened by the observed
// min/max so sparse histograms interpolate inside real data.
func (h *Histogram) bucketEdges(b int) (lo, hi int64) {
	if b == 0 {
		lo = h.min.Load()
	} else {
		lo = h.bounds[b-1]
	}
	if b == len(h.bounds) {
		hi = h.max.Load()
	} else {
		hi = h.bounds[b]
	}
	if mn := h.min.Load(); lo < mn {
		lo = mn
	}
	if mx := h.max.Load(); hi > mx {
		hi = mx
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

func (h *Histogram) clamp(d time.Duration) time.Duration {
	if mn := time.Duration(h.min.Load()); d < mn {
		return mn
	}
	if mx := time.Duration(h.max.Load()); d > mx {
		return mx
	}
	return d
}

// HistogramSnapshot is a point-in-time copy of a histogram's bucket
// counts. Subtracting two snapshots of the same histogram yields the
// distribution of just the observations made between them — the
// sliding-window view a controller wants, built on top of cumulative
// atomics without any per-observation cost.
type HistogramSnapshot struct {
	// Bounds aliases the histogram's ascending bucket bounds (ns);
	// treat as read-only.
	Bounds []int64
	// Counts holds one count per bucket plus the overflow bucket.
	Counts []uint64
	// Count is the total number of observations in the snapshot.
	Count uint64
	// Sum is the total of all observations, ns.
	Sum int64
}

// Snapshot copies the histogram's current bucket counts. Buckets are
// read individually (not under a lock), so a snapshot taken during
// concurrent observation can be off by the handful of observations in
// flight — fine for windowed control decisions.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Sub returns the bucket-wise difference s − prev, clamped at zero, so
// two snapshots of the same histogram bracket a window of observations.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Bounds: s.Bounds, Counts: make([]uint64, len(s.Counts))}
	for i, c := range s.Counts {
		var p uint64
		if i < len(prev.Counts) {
			p = prev.Counts[i]
		}
		if c > p {
			out.Counts[i] = c - p
			out.Count += c - p
		}
	}
	if s.Sum > prev.Sum {
		out.Sum = s.Sum - prev.Sum
	}
	return out
}

// Percentile estimates the p-th percentile of the snapshot by linear
// interpolation inside the covering bucket. Unlike Histogram.Percentile
// it cannot tighten bucket edges with observed min/max (a window has
// neither), so the estimate is coarser by up to one bucket width; an
// empty snapshot returns 0.
func (s HistogramSnapshot) Percentile(p float64) time.Duration {
	if s.Count == 0 || math.IsNaN(p) {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := p / 100 * float64(s.Count-1)
	var cum uint64
	for b, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) > rank {
			frac := (rank - float64(cum)) / float64(c)
			var lo, hi int64
			if b > 0 {
				lo = s.Bounds[b-1]
			}
			if b < len(s.Bounds) {
				hi = s.Bounds[b]
			} else if len(s.Bounds) > 0 {
				// Overflow bucket: extend one last-bound width.
				hi = 2 * s.Bounds[len(s.Bounds)-1]
			}
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum += c
	}
	if len(s.Bounds) > 0 {
		return time.Duration(2 * s.Bounds[len(s.Bounds)-1])
	}
	return 0
}

// CounterFamily is a fixed-size family of counters labeled by a small
// integer — one per disk, in this codebase.
type CounterFamily struct {
	label string
	cs    []Counter
}

// At returns the counter of label value i (nil when out of range or
// the family is nil, keeping call sites branch-free).
func (f *CounterFamily) At(i int) *Counter {
	if f == nil || i < 0 || i >= len(f.cs) {
		return nil
	}
	return &f.cs[i]
}

// Len returns the family size.
func (f *CounterFamily) Len() int {
	if f == nil {
		return 0
	}
	return len(f.cs)
}

// Sum totals the family's counters.
func (f *CounterFamily) Sum() uint64 {
	if f == nil {
		return 0
	}
	var s uint64
	for i := range f.cs {
		s += f.cs[i].Value()
	}
	return s
}

// GaugeFamily is a fixed-size family of gauges labeled by a small
// integer — one per cluster node, in this codebase.
type GaugeFamily struct {
	label string
	gs    []Gauge
}

// At returns the gauge of label value i (nil when out of range or the
// family is nil, keeping call sites branch-free).
func (f *GaugeFamily) At(i int) *Gauge {
	if f == nil || i < 0 || i >= len(f.gs) {
		return nil
	}
	return &f.gs[i]
}

// Len returns the family size.
func (f *GaugeFamily) Len() int {
	if f == nil {
		return 0
	}
	return len(f.gs)
}

// Sum totals the family's gauges.
func (f *GaugeFamily) Sum() int64 {
	if f == nil {
		return 0
	}
	var s int64
	for i := range f.gs {
		s += f.gs[i].Value()
	}
	return s
}

// HistogramFamily is a fixed-size family of histograms labeled by a
// small integer.
type HistogramFamily struct {
	label string
	hs    []*Histogram
}

// At returns the histogram of label value i (nil when out of range).
func (f *HistogramFamily) At(i int) *Histogram {
	if f == nil || i < 0 || i >= len(f.hs) {
		return nil
	}
	return f.hs[i]
}

// Len returns the family size.
func (f *HistogramFamily) Len() int {
	if f == nil {
		return 0
	}
	return len(f.hs)
}

// Count totals the family's observation counts.
func (f *HistogramFamily) Count() uint64 {
	if f == nil {
		return 0
	}
	var s uint64
	for _, h := range f.hs {
		s += h.Count()
	}
	return s
}

// Registry holds named metrics. Get-or-create accessors are safe for
// concurrent use; instrumented code resolves handles once at
// construction and then touches only the atomics.
type Registry struct {
	mu    sync.Mutex
	cs    map[string]*Counter
	gs    map[string]*Gauge
	hs    map[string]*Histogram
	cfams map[string]*CounterFamily
	gfams map[string]*GaugeFamily
	hfams map[string]*HistogramFamily
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		cs:    make(map[string]*Counter),
		gs:    make(map[string]*Gauge),
		hs:    make(map[string]*Histogram),
		cfams: make(map[string]*CounterFamily),
		gfams: make(map[string]*GaugeFamily),
		hfams: make(map[string]*HistogramFamily),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns nil (a valid no-op counter).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.cs[name]
	if !ok {
		c = &Counter{}
		r.cs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gs[name]
	if !ok {
		g = &Gauge{}
		r.gs[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (DefaultLatencyBounds when bounds is
// empty). Later calls ignore bounds.
func (r *Registry) Histogram(name string, bounds ...time.Duration) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hs[name]
	if !ok {
		h = newHistogram(bounds)
		r.hs[name] = h
	}
	return h
}

// CounterFamily returns the named counter family of n members labeled
// label+index, creating it on first use. Later calls ignore label and
// n; asking for a larger n than the existing family panics, since a
// too-small family would silently drop per-disk counts.
func (r *Registry) CounterFamily(name, label string, n int) *CounterFamily {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.cfams[name]
	if !ok {
		f = &CounterFamily{label: label, cs: make([]Counter, n)}
		r.cfams[name] = f
	} else if n > len(f.cs) {
		panic(fmt.Sprintf("obs: counter family %q has %d members; %d requested", name, len(f.cs), n))
	}
	return f
}

// GaugeFamily returns the named gauge family of n members labeled
// label+index, creating it on first use. Later calls ignore label and
// n; asking for a larger n than the existing family panics, since a
// too-small family would silently drop per-node values.
func (r *Registry) GaugeFamily(name, label string, n int) *GaugeFamily {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.gfams[name]
	if !ok {
		f = &GaugeFamily{label: label, gs: make([]Gauge, n)}
		r.gfams[name] = f
	} else if n > len(f.gs) {
		panic(fmt.Sprintf("obs: gauge family %q has %d members; %d requested", name, len(f.gs), n))
	}
	return f
}

// HistogramFamily returns the named histogram family of n members,
// creating it on first use with the given bounds.
func (r *Registry) HistogramFamily(name, label string, n int, bounds ...time.Duration) *HistogramFamily {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.hfams[name]
	if !ok {
		f = &HistogramFamily{label: label, hs: make([]*Histogram, n)}
		for i := range f.hs {
			f.hs[i] = newHistogram(bounds)
		}
		r.hfams[name] = f
	} else if n > len(f.hs) {
		panic(fmt.Sprintf("obs: histogram family %q has %d members; %d requested", name, len(f.hs), n))
	}
	return f
}

// names returns the sorted metric names of one kind, for deterministic
// dumps.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
