package obs

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilSink(t *testing.T) {
	var s *Sink
	if s.Registry() != nil {
		t.Error("nil sink has a registry")
	}
	if s.Tracing() {
		t.Error("nil sink traces")
	}
	s.EnableTracing(5)
	if tr := s.StartTrace("q"); tr != nil {
		t.Error("nil sink started a trace")
	}
	s.FinishTrace(nil)
	if s.SlowestTraces() != nil {
		t.Error("nil sink retained traces")
	}
}

func TestSinkTracingToggle(t *testing.T) {
	s := NewSink()
	if s.Tracing() {
		t.Error("fresh sink traces")
	}
	if tr := s.StartTrace("q"); tr != nil {
		t.Error("non-tracing sink started a trace")
	}
	s.EnableTracing(2)
	if !s.Tracing() {
		t.Error("EnableTracing did not enable")
	}
	tr := s.StartTrace("q")
	if tr == nil {
		t.Fatal("tracing sink returned nil trace")
	}
	if tr.ID() == 0 || tr.Name() != "q" {
		t.Errorf("trace id/name = %d/%q", tr.ID(), tr.Name())
	}
}

func TestSpanTreeLifecycle(t *testing.T) {
	s := NewSink()
	s.EnableTracing(4)
	tr := s.StartTrace("query")
	admit := tr.Root().Child("admit")
	admit.Finish()
	ex := tr.Root().Child("exec")
	d0 := ex.Child("disk 0")
	d0.FinishErr(errors.New("boom"))
	d1 := ex.Child("disk 1")
	d1.Finish()
	ex.Finish()
	tr.Root().Annotate("degraded")
	s.FinishTrace(tr)

	if tr.Total() <= 0 {
		t.Errorf("Total = %v, want > 0", tr.Total())
	}
	snap := tr.Root().snap()
	if !strings.Contains(snap.name, "degraded") {
		t.Errorf("annotation missing from root name %q", snap.name)
	}
	if len(snap.children) != 2 || snap.children[0].name != "admit" || snap.children[1].name != "exec" {
		t.Fatalf("root children = %+v", snap.children)
	}
	execSnap := snap.children[1]
	if len(execSnap.children) != 2 {
		t.Fatalf("exec children = %+v", execSnap.children)
	}
	if execSnap.children[0].errmsg != "boom" {
		t.Errorf("disk 0 errmsg = %q", execSnap.children[0].errmsg)
	}
	got := s.SlowestTraces()
	if len(got) != 1 || got[0] != tr {
		t.Errorf("SlowestTraces = %v", got)
	}
}

func TestNilSpanSafety(t *testing.T) {
	var sp *Span
	if sp.Child("x") != nil {
		t.Error("nil span spawned a child")
	}
	sp.Finish()
	sp.FinishErr(errors.New("e"))
	sp.Annotate("a")
	sp.SetInterval(0, time.Second)
	var tr *Trace
	if tr.Root() != nil || tr.Total() != 0 || tr.ID() != 0 || tr.Name() != "" {
		t.Error("nil trace has state")
	}
	tr.Finish()
}

func TestFinishIdempotent(t *testing.T) {
	s := NewSink()
	s.EnableTracing(1)
	tr := s.StartTrace("q")
	tr.Root().SetInterval(0, 10*time.Millisecond)
	tr.Finish()
	total := tr.Total()
	if total != 10*time.Millisecond {
		t.Fatalf("Total = %v, want 10ms", total)
	}
	time.Sleep(time.Millisecond)
	tr.Finish() // second Finish must not re-freeze
	if tr.Total() != total {
		t.Errorf("Total changed on second Finish: %v", tr.Total())
	}
}

func TestContextSpanPropagation(t *testing.T) {
	ctx := context.Background()
	if SpanFromContext(ctx) != nil {
		t.Error("empty context has a span")
	}
	if ContextWithSpan(ctx, nil) != ctx {
		t.Error("nil span changed the context")
	}
	s := NewSink()
	s.EnableTracing(1)
	tr := s.StartTrace("q")
	sp := tr.Root().Child("read")
	ctx2 := ContextWithSpan(ctx, sp)
	if SpanFromContext(ctx2) != sp {
		t.Error("span did not round-trip through context")
	}
}

// cannedTrace builds a finished trace whose total is exactly d.
func cannedTrace(s *Sink, name string, d time.Duration) *Trace {
	tr := s.StartTrace(name)
	tr.Root().SetInterval(0, d)
	s.FinishTrace(tr)
	return tr
}

func TestTraceBufferKeepsSlowest(t *testing.T) {
	s := NewSink()
	s.EnableTracing(3)
	durs := []time.Duration{5, 1, 9, 3, 7, 2, 8}
	for i, d := range durs {
		cannedTrace(s, strings.Repeat("q", i+1), d*time.Millisecond)
	}
	got := s.SlowestTraces()
	if len(got) != 3 {
		t.Fatalf("retained %d traces, want 3", len(got))
	}
	wants := []time.Duration{9, 8, 7}
	for i, want := range wants {
		if got[i].Total() != want*time.Millisecond {
			t.Errorf("slowest[%d].Total = %v, want %vms", i, got[i].Total(), want)
		}
	}
}

func TestTraceBufferMinimumOne(t *testing.T) {
	b := NewTraceBuffer(0)
	b.Offer(nil) // no-op
	s := NewSink()
	s.EnableTracing(1)
	fast := cannedTrace(s, "fast", time.Millisecond)
	slow := cannedTrace(s, "slow", time.Second)
	b.Offer(fast)
	b.Offer(slow)
	b.Offer(fast)
	got := b.Slowest()
	if len(got) != 1 || got[0] != slow {
		t.Errorf("Slowest = %v", got)
	}
	var nb *TraceBuffer
	nb.Offer(slow)
	if nb.Slowest() != nil {
		t.Error("nil buffer retained traces")
	}
}
