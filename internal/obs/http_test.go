package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestHandlerEndpoints(t *testing.T) {
	s := NewSink()
	s.EnableTracing(2)
	s.Registry().Counter("serve.queries.issued").Add(7)
	s.Registry().Histogram("serve.query.latency").Observe(3 * time.Millisecond)
	s.Registry().CounterFamily("exec.disk.read.attempts", "disk", 2).At(1).Add(4)
	s.Registry().HistogramFamily("exec.disk.read.latency", "disk", 2).At(0).Observe(time.Millisecond)
	cannedTrace(s, "query <0,0>..<1,1>", 5*time.Millisecond)
	h := s.Handler()

	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, body)
	}
	if snap["serve.queries.issued"] != float64(7) {
		t.Errorf("issued = %v", snap["serve.queries.issued"])
	}
	hist, ok := snap["serve.query.latency"].(map[string]any)
	if !ok || hist["count"] != float64(1) {
		t.Errorf("latency snapshot = %v", snap["serve.query.latency"])
	}
	fam, ok := snap["exec.disk.read.attempts"].(map[string]any)
	if !ok || fam["disk1"] != float64(4) {
		t.Errorf("family snapshot = %v", snap["exec.disk.read.attempts"])
	}

	if code, body = get(t, h, "/metrics.txt"); code != http.StatusOK || !strings.Contains(body, "serve.queries.issued") {
		t.Errorf("/metrics.txt = %d:\n%s", code, body)
	}
	if code, body = get(t, h, "/metrics.csv"); code != http.StatusOK || !strings.HasPrefix(body, "kind,name,label,field,value\n") {
		t.Errorf("/metrics.csv = %d:\n%s", code, body)
	}
	if code, body = get(t, h, "/traces"); code != http.StatusOK || !strings.Contains(body, "query <0,0>..<1,1>") {
		t.Errorf("/traces = %d:\n%s", code, body)
	}
	if code, _ = get(t, h, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

// A nil sink's handler still serves every endpoint with empty
// documents — the CLI wires -http unconditionally.
func TestHandlerNilSink(t *testing.T) {
	var s *Sink
	h := s.Handler()
	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if strings.TrimSpace(body) != "{}" {
		t.Errorf("/metrics body = %q, want empty object", body)
	}
	if code, _ := get(t, h, "/metrics.txt"); code != http.StatusOK {
		t.Errorf("/metrics.txt status %d", code)
	}
	if code, body := get(t, h, "/traces"); code != http.StatusOK || body != "" {
		t.Errorf("/traces = %d %q", code, body)
	}
}
