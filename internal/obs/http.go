package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler returns an HTTP mux exposing the sink:
//
//	/metrics        expvar-style flat JSON of every metric
//	/metrics.txt    the WriteTable plain-text dump
//	/metrics.csv    the WriteCSV dump
//	/traces         the slowest retained traces as rendered span trees
//	/debug/pprof/*  the standard runtime profiles
//
// A nil sink still returns a working mux whose metric endpoints serve
// empty documents, so wiring `-http` stays unconditional.
func (s *Sink) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Registry().jsonSnapshot())
	})
	mux.HandleFunc("/metrics.txt", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = s.Registry().WriteTable(w)
	})
	mux.HandleFunc("/metrics.csv", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/csv")
		_ = s.Registry().WriteCSV(w)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, t := range s.SlowestTraces() {
			_ = t.RenderTree(w)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// jsonSnapshot flattens the registry into an expvar-style map:
// counters and gauges map to numbers, histograms to summary objects,
// families to per-label maps.
func (r *Registry) jsonSnapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.cs {
		out[name] = c.Value()
	}
	for name, g := range r.gs {
		out[name] = g.Value()
	}
	for name, h := range r.hs {
		out[name] = histJSON(h)
	}
	for name, f := range r.cfams {
		m := map[string]uint64{}
		for i := range f.cs {
			m[f.label+strconv.Itoa(i)] = f.cs[i].Value()
		}
		out[name] = m
	}
	for name, f := range r.gfams {
		m := map[string]int64{}
		for i := range f.gs {
			m[f.label+strconv.Itoa(i)] = f.gs[i].Value()
		}
		out[name] = m
	}
	for name, f := range r.hfams {
		m := map[string]any{}
		for i, h := range f.hs {
			m[f.label+strconv.Itoa(i)] = histJSON(h)
		}
		out[name] = m
	}
	return out
}

func histJSON(h *Histogram) map[string]any {
	return map[string]any{
		"count":  h.Count(),
		"sum_ns": int64(h.Sum()),
		"p50_ns": int64(h.Percentile(50)),
		"p95_ns": int64(h.Percentile(95)),
		"p99_ns": int64(h.Percentile(99)),
		"max_ns": int64(h.Max()),
	}
}
