package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Span is one interval in a query's lifecycle tree. Spans carry their
// start and end as monotonic offsets from the owning trace's epoch, a
// terse name ("admit", "disk 3", "read b17 attempt 2", "hedge d5"), an
// optional error string, and child spans. All methods are safe for
// concurrent use and no-op on a nil receiver, so instrumented code
// holds spans unconditionally.
type Span struct {
	tr *Trace

	mu       sync.Mutex
	name     string
	start    time.Duration
	end      time.Duration
	ended    bool
	errmsg   string
	children []*Span
}

// Trace is one query's span tree. The epoch is captured with Go's
// monotonic clock at StartTrace, so span offsets are immune to
// wall-clock steps.
type Trace struct {
	id    uint64
	name  string
	epoch time.Time

	mu    sync.Mutex
	root  *Span
	done  bool
	total time.Duration

	// Span arena: spans are carved from chunks owned by this trace, so
	// a traced query with thousands of read spans performs one
	// allocation per spanChunk spans instead of one per span. Chunks are
	// never recycled across traces — a hedge leg may finish its span
	// after the trace itself is finished and offered, so cross-trace
	// reuse would be a use-after-free; per-trace ownership makes the
	// late finish harmlessly touch memory only this trace references.
	smu   sync.Mutex
	chunk []Span
}

// spanChunk is the arena chunk size: big enough to amortize the per-span
// allocation on read-heavy traces, small enough not to bloat two-span
// admission traces.
const spanChunk = 16

func newTrace(id uint64, name string) *Trace {
	t := &Trace{id: id, name: name, epoch: time.Now()}
	t.root = t.newSpan(name, 0)
	return t
}

// newSpan carves one span from the trace's arena.
func (t *Trace) newSpan(name string, start time.Duration) *Span {
	t.smu.Lock()
	if len(t.chunk) == 0 {
		t.chunk = make([]Span, spanChunk)
	}
	s := &t.chunk[0]
	t.chunk = t.chunk[1:]
	t.smu.Unlock()
	s.tr = t
	s.name = name
	s.start = start
	return s
}

// ID returns the trace's sink-unique id (0 for nil).
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Name returns the trace name ("" for nil).
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// now returns the monotonic offset since the trace epoch.
func (t *Trace) now() time.Duration { return time.Since(t.epoch) }

// Finish closes the root span (if still open) and freezes the trace's
// total duration. Idempotent.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.root.Finish()
	t.mu.Lock()
	if !t.done {
		t.done = true
		t.root.mu.Lock()
		t.total = t.root.end - t.root.start
		t.root.mu.Unlock()
	}
	t.mu.Unlock()
}

// Total returns the root span's duration (frozen at Finish; 0 before).
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Child starts a child span of s named name, beginning now. It returns
// nil when s is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.tr.newSpan(name, s.tr.now())
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Finish ends the span now. Idempotent; the first call wins.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.end = s.tr.now()
	}
	s.mu.Unlock()
}

// FinishErr ends the span now, recording err's message when non-nil.
func (s *Span) FinishErr(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.end = s.tr.now()
		if err != nil {
			s.errmsg = err.Error()
		}
	}
	s.mu.Unlock()
}

// Annotate appends ": msg" context to the span name — outcome labels
// like "shed" or "won" — without the cost model of a key-value bag.
func (s *Span) Annotate(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.name += ": " + msg
	s.mu.Unlock()
}

// SetInterval overrides the span's timing — exported for canned traces
// in renderer tests and goldens; production spans are timed by
// Child/Finish.
func (s *Span) SetInterval(start, end time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.start, s.end, s.ended = start, end, true
	s.mu.Unlock()
}

// snapshot copies the span subtree under its locks, for rendering.
type spanSnap struct {
	name     string
	start    time.Duration
	end      time.Duration
	ended    bool
	errmsg   string
	children []spanSnap
}

func (s *Span) snap() spanSnap {
	s.mu.Lock()
	out := spanSnap{
		name: s.name, start: s.start, end: s.end,
		ended: s.ended, errmsg: s.errmsg,
		children: make([]spanSnap, 0, len(s.children)),
	}
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		out.children = append(out.children, c.snap())
	}
	sort.SliceStable(out.children, func(i, j int) bool {
		return out.children[i].start < out.children[j].start
	})
	return out
}

// spanCtxKey keys the active span in a context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sp as the active span. Passing a
// nil span returns ctx unchanged, so the disabled path allocates
// nothing.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the active span, or nil when none is set.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// TraceBuffer retains the slowest N finished traces offered to it — the
// end-of-run "why were these slow" exhibit. Safe for concurrent use.
type TraceBuffer struct {
	mu  sync.Mutex
	cap int
	ts  []*Trace // ascending by Total; index 0 is the fastest retained
}

// NewTraceBuffer returns a buffer keeping the slowest n traces (n ≥ 1).
func NewTraceBuffer(n int) *TraceBuffer {
	if n < 1 {
		n = 1
	}
	return &TraceBuffer{cap: n}
}

// Offer inserts t if it ranks among the slowest retained traces.
func (b *TraceBuffer) Offer(t *Trace) {
	if b == nil || t == nil {
		return
	}
	total := t.Total()
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.ts) == b.cap && total <= b.ts[0].Total() {
		return
	}
	i := sort.Search(len(b.ts), func(i int) bool { return b.ts[i].Total() >= total })
	b.ts = append(b.ts, nil)
	copy(b.ts[i+1:], b.ts[i:])
	b.ts[i] = t
	if len(b.ts) > b.cap {
		b.ts = b.ts[1:]
	}
}

// Slowest returns the retained traces, slowest first.
func (b *TraceBuffer) Slowest() []*Trace {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*Trace, len(b.ts))
	for i, t := range b.ts {
		out[len(b.ts)-1-i] = t
	}
	return out
}
