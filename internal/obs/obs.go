// Package obs is the observability substrate of the serving stack: a
// dependency-free metrics registry plus a per-query lifecycle trace
// recorder. Every future performance claim benchmarks against the
// numbers this package collects, so the package is built to be
// *testable itself*: counters are exact (atomic, never sampled),
// histogram percentile conventions match package stats, and the
// conservation differential test in package serve asserts that the
// counters are conserved end to end under chaos.
//
// Three pieces:
//
//   - Registry: named atomic counters, gauges, and fixed-bucket latency
//     histograms (p50/p95/p99/max), plus per-disk labeled families.
//     Metric handles are resolved once at construction; the hot path
//     touches only the atomics.
//
//   - Trace: a per-query span tree (admit → queued → exec → per-disk
//     reads → read attempts → hedge legs → read-repair) with monotonic
//     timestamps relative to the trace epoch. A TraceBuffer keeps the
//     slowest N finished traces for end-of-run rendering.
//
//   - Sink: the nil-safe handle the serving layers accept. A nil *Sink
//     disables everything: instrumented code pre-resolves its metric
//     handles into a struct that is nil when the sink is nil, so the
//     disabled hot path pays exactly one pointer comparison per site.
//
// The package imports only the standard library and nothing from this
// module, so every layer (fault, exec, serve, repair, experiments, the
// CLI) can depend on it without cycles.
package obs

import (
	"sync"
	"sync/atomic"
)

// Sink receives metrics and (optionally) traces. The zero of *Sink —
// nil — is a valid, fully disabled sink: every method no-ops or returns
// nil, so instrumented code can hold one unconditionally.
type Sink struct {
	reg *Registry

	mu      sync.Mutex
	tracing atomic.Bool
	traces  *TraceBuffer
	nextID  atomic.Uint64
}

// NewSink returns a sink with a fresh registry and tracing disabled.
func NewSink() *Sink {
	return &Sink{reg: NewRegistry()}
}

// Registry returns the sink's metric registry (nil for a nil sink).
func (s *Sink) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// EnableTracing switches per-query tracing on, keeping the slowest
// keep traces (minimum 1). Safe to call at any time; queries that
// started before the switch are unaffected.
func (s *Sink) EnableTracing(keep int) {
	if s == nil {
		return
	}
	if keep < 1 {
		keep = 1
	}
	s.mu.Lock()
	s.traces = NewTraceBuffer(keep)
	s.mu.Unlock()
	s.tracing.Store(true)
}

// Tracing reports whether per-query traces should be recorded. It is a
// single atomic load (false for a nil sink), cheap enough for per-query
// checks.
func (s *Sink) Tracing() bool {
	return s != nil && s.tracing.Load()
}

// StartTrace begins a trace when tracing is enabled, returning nil
// otherwise. All *Trace and *Span methods are nil-safe, so callers may
// use the result unconditionally.
func (s *Sink) StartTrace(name string) *Trace {
	if !s.Tracing() {
		return nil
	}
	return newTrace(s.nextID.Add(1), name)
}

// FinishTrace finalizes t and offers it to the slowest-N buffer. A nil
// sink or nil trace no-ops.
func (s *Sink) FinishTrace(t *Trace) {
	if s == nil || t == nil {
		return
	}
	t.Finish()
	s.mu.Lock()
	buf := s.traces
	s.mu.Unlock()
	if buf != nil {
		buf.Offer(t)
	}
}

// SlowestTraces returns the retained traces, slowest first (nil for a
// nil or non-tracing sink).
func (s *Sink) SlowestTraces() []*Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	buf := s.traces
	s.mu.Unlock()
	if buf == nil {
		return nil
	}
	return buf.Slowest()
}
