package obs

import (
	"math"
	"sync"
	"testing"
	"time"

	"decluster/internal/stats"
)

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(time.Second)
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Error("nil histogram has state")
	}
	var cf *CounterFamily
	cf.At(0).Inc()
	if cf.Len() != 0 || cf.Sum() != 0 {
		t.Error("nil counter family has state")
	}
	var hf *HistogramFamily
	hf.At(0).Observe(time.Second)
	if hf.Len() != 0 || hf.Count() != 0 {
		t.Error("nil histogram family has state")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil ||
		r.CounterFamily("x", "d", 2) != nil || r.HistogramFamily("x", "d", 2) != nil {
		t.Error("nil registry created a metric")
	}
	if err := r.WriteTable(nil); err != nil {
		t.Error("nil registry WriteTable errored")
	}
	if err := r.WriteCSV(nil); err != nil {
		t.Error("nil registry WriteCSV errored")
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewRegistry().Counter("c")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("Value = %d, want %d", c.Value(), workers*per)
	}
}

func TestGauge(t *testing.T) {
	g := NewRegistry().Gauge("g")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("Value = %d, want 7", g.Value())
	}
}

func TestHistogramExactAggregates(t *testing.T) {
	h := NewRegistry().Histogram("h")
	obsd := []time.Duration{3 * time.Millisecond, time.Millisecond, 2 * time.Millisecond}
	for _, d := range obsd {
		h.Observe(d)
	}
	if h.Count() != 3 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Sum() != 6*time.Millisecond {
		t.Errorf("Sum = %v", h.Sum())
	}
	if h.Min() != time.Millisecond || h.Max() != 3*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Errorf("Mean = %v", h.Mean())
	}
}

func TestHistogramPercentileConventions(t *testing.T) {
	h := NewRegistry().Histogram("h")
	if h.Percentile(50) != 0 {
		t.Error("empty percentile != 0")
	}
	h.Observe(5 * time.Millisecond)
	for _, p := range []float64{-10, 0, 1, 50, 99, 100, 500} {
		if got := h.Percentile(p); got != 5*time.Millisecond {
			t.Errorf("single-sample Percentile(%v) = %v, want 5ms", p, got)
		}
	}
	if h.Percentile(math.NaN()) != 0 {
		t.Error("NaN percentile != 0")
	}
	h.Observe(20 * time.Millisecond)
	if got := h.Percentile(0); got != 5*time.Millisecond {
		t.Errorf("p0 = %v, want Min", got)
	}
	if got := h.Percentile(100); got != 20*time.Millisecond {
		t.Errorf("p100 = %v, want Max", got)
	}
	if p50 := h.Percentile(50); p50 < 5*time.Millisecond || p50 > 20*time.Millisecond {
		t.Errorf("p50 = %v outside [Min, Max]", p50)
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	h := NewRegistry().Histogram("h")
	for i := 1; i <= 200; i++ {
		h.Observe(time.Duration(i) * 37 * time.Microsecond)
	}
	prev := time.Duration(-1)
	for p := 0.0; p <= 100; p += 2.5 {
		got := h.Percentile(p)
		if got < prev {
			t.Fatalf("Percentile(%v) = %v < Percentile(%v) = %v", p, got, p-2.5, prev)
		}
		prev = got
	}
}

// TestHistogramAlignsWithStats drives the same sample through
// obs.Histogram and stats.Percentile: the bucketed estimate must agree
// with the exact order statistic to within the covering bucket's width
// (and exactly at the p ≤ 0 / p ≥ 100 / single-sample edges, already
// pinned above). This is the contract the package doc promises.
func TestHistogramAlignsWithStats(t *testing.T) {
	h := NewRegistry().Histogram("h")
	var xs []float64
	for i := 0; i < 500; i++ {
		d := time.Duration((i*i)%9973) * 23 * time.Microsecond
		h.Observe(d)
		xs = append(xs, float64(d))
	}
	for _, p := range []float64{0, 5, 25, 50, 75, 90, 95, 99, 100} {
		exact := time.Duration(stats.Percentile(xs, p))
		got := h.Percentile(p)
		lo, hi := bucketAround(h, exact)
		if got < lo || got > hi {
			t.Errorf("p%v: histogram %v outside bucket [%v, %v] covering exact %v", p, got, lo, hi, exact)
		}
	}
}

// bucketAround returns the histogram bucket range containing v,
// tightened by the observed extrema — the estimate's error bound.
func bucketAround(h *Histogram, v time.Duration) (time.Duration, time.Duration) {
	b := 0
	for b < len(h.bounds) && h.bounds[b] < int64(v) {
		b++
	}
	lo, hi := h.bucketEdges(b)
	return time.Duration(lo), time.Duration(hi)
}

func TestCounterFamily(t *testing.T) {
	r := NewRegistry()
	f := r.CounterFamily("fam", "disk", 4)
	if f.Len() != 4 {
		t.Fatalf("Len = %d", f.Len())
	}
	f.At(0).Add(2)
	f.At(3).Inc()
	f.At(-1).Inc() // out of range: no-op
	f.At(4).Inc()
	if f.Sum() != 3 {
		t.Errorf("Sum = %d, want 3", f.Sum())
	}
	if r.CounterFamily("fam", "ignored", 2) != f {
		t.Error("get-or-create returned a different family")
	}
	defer func() {
		if recover() == nil {
			t.Error("growing a family did not panic")
		}
	}()
	r.CounterFamily("fam", "disk", 8)
}

func TestHistogramFamily(t *testing.T) {
	r := NewRegistry()
	f := r.HistogramFamily("hfam", "disk", 2)
	f.At(1).Observe(time.Millisecond)
	f.At(9).Observe(time.Millisecond) // out of range: no-op
	if f.Count() != 1 || f.Len() != 2 {
		t.Errorf("Count/Len = %d/%d", f.Count(), f.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("growing a histogram family did not panic")
		}
	}()
	r.HistogramFamily("hfam", "disk", 3)
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("counter handle not stable")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Error("gauge handle not stable")
	}
	if r.Histogram("a") != r.Histogram("a") {
		t.Error("histogram handle not stable")
	}
	if r.Counter("a") == r.Counter("b") {
		t.Error("distinct names share a counter")
	}
}

func TestDefaultLatencyBounds(t *testing.T) {
	bs := DefaultLatencyBounds()
	if len(bs) == 0 || bs[0] != time.Microsecond || bs[len(bs)-1] != 10*time.Second {
		t.Fatalf("bounds = %v", bs)
	}
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			t.Fatalf("bounds not ascending at %d: %v", i, bs)
		}
	}
}
