package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteTable dumps every metric in the registry as an aligned
// plain-text table: counters and gauges first, then histograms with
// their count/mean/p50/p95/p99/max, then per-disk families. Names are
// sorted, so two dumps of equally named registries have identical
// structure — the property the CLI golden test pins down.
func (r *Registry) WriteTable(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tw := &tableWriter{w: w}
	tw.printf("%-44s %s\n", "metric", "value")
	for _, name := range sortedKeys(r.cs) {
		tw.printf("%-44s %d\n", name, r.cs[name].Value())
	}
	for _, name := range sortedKeys(r.gs) {
		tw.printf("%-44s %d\n", name, r.gs[name].Value())
	}
	for _, name := range sortedKeys(r.hs) {
		h := r.hs[name]
		tw.printf("%-44s count=%d mean=%s p50=%s p95=%s p99=%s max=%s\n",
			name, h.Count(), fmtDur(h.Mean()),
			fmtDur(h.Percentile(50)), fmtDur(h.Percentile(95)),
			fmtDur(h.Percentile(99)), fmtDur(h.Max()))
	}
	for _, name := range sortedKeys(r.cfams) {
		f := r.cfams[name]
		parts := make([]string, len(f.cs))
		for i := range f.cs {
			parts[i] = fmt.Sprintf("%s%d=%d", f.label, i, f.cs[i].Value())
		}
		tw.printf("%-44s %s (sum=%d)\n", name, strings.Join(parts, " "), f.Sum())
	}
	for _, name := range sortedKeys(r.gfams) {
		f := r.gfams[name]
		parts := make([]string, len(f.gs))
		for i := range f.gs {
			parts[i] = fmt.Sprintf("%s%d=%d", f.label, i, f.gs[i].Value())
		}
		tw.printf("%-44s %s (sum=%d)\n", name, strings.Join(parts, " "), f.Sum())
	}
	for _, name := range sortedKeys(r.hfams) {
		f := r.hfams[name]
		for i, h := range f.hs {
			tw.printf("%-44s count=%d p50=%s p99=%s max=%s\n",
				fmt.Sprintf("%s{%s%d}", name, f.label, i),
				h.Count(), fmtDur(h.Percentile(50)), fmtDur(h.Percentile(99)), fmtDur(h.Max()))
		}
	}
	return tw.err
}

// WriteCSV dumps the registry as CSV with the fixed header
// kind,name,label,field,value — one row per scalar, one row per
// histogram summary field, one row per family member.
func (r *Registry) WriteCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tw := &tableWriter{w: w}
	tw.printf("kind,name,label,field,value\n")
	for _, name := range sortedKeys(r.cs) {
		tw.printf("counter,%s,,value,%d\n", name, r.cs[name].Value())
	}
	for _, name := range sortedKeys(r.gs) {
		tw.printf("gauge,%s,,value,%d\n", name, r.gs[name].Value())
	}
	for _, name := range sortedKeys(r.hs) {
		h := r.hs[name]
		tw.printf("histogram,%s,,count,%d\n", name, h.Count())
		tw.printf("histogram,%s,,sum_ns,%d\n", name, int64(h.Sum()))
		tw.printf("histogram,%s,,p50_ns,%d\n", name, int64(h.Percentile(50)))
		tw.printf("histogram,%s,,p95_ns,%d\n", name, int64(h.Percentile(95)))
		tw.printf("histogram,%s,,p99_ns,%d\n", name, int64(h.Percentile(99)))
		tw.printf("histogram,%s,,max_ns,%d\n", name, int64(h.Max()))
	}
	for _, name := range sortedKeys(r.cfams) {
		f := r.cfams[name]
		for i := range f.cs {
			tw.printf("counter_family,%s,%s%d,value,%d\n", name, f.label, i, f.cs[i].Value())
		}
	}
	for _, name := range sortedKeys(r.gfams) {
		f := r.gfams[name]
		for i := range f.gs {
			tw.printf("gauge_family,%s,%s%d,value,%d\n", name, f.label, i, f.gs[i].Value())
		}
	}
	for _, name := range sortedKeys(r.hfams) {
		f := r.hfams[name]
		for i, h := range f.hs {
			tw.printf("histogram_family,%s,%s%d,count,%d\n", name, f.label, i, h.Count())
			tw.printf("histogram_family,%s,%s%d,p99_ns,%d\n", name, f.label, i, int64(h.Percentile(99)))
		}
	}
	return tw.err
}

// RenderTree renders the trace's span tree with box-drawing branches,
// one span per line as "name duration [error]":
//
//	query <3,4>..<9,9> 12.40ms
//	├─ admit 0.21ms
//	└─ exec 12.11ms
//	   ├─ disk 0 11.80ms
//	   │  └─ read b17 attempt 1 11.70ms
//	   │     └─ hedge d4 1.35ms
//	   └─ disk 3 2.10ms
func (t *Trace) RenderTree(w io.Writer) error {
	if t == nil {
		return nil
	}
	tw := &tableWriter{w: w}
	snap := t.root.snap()
	renderSpan(tw, snap, "", "")
	return tw.err
}

func renderSpan(tw *tableWriter, s spanSnap, branch, indent string) {
	dur := s.end - s.start
	line := fmt.Sprintf("%s %s", s.name, fmtDur(dur))
	if !s.ended {
		line = s.name + " (unfinished)"
	}
	if s.errmsg != "" {
		line += " [" + s.errmsg + "]"
	}
	tw.printf("%s%s\n", branch, line)
	for i, c := range s.children {
		last := i == len(s.children)-1
		childBranch, childIndent := "├─ ", "│  "
		if last {
			childBranch, childIndent = "└─ ", "   "
		}
		renderSpan(tw, c, indent+childBranch, indent+childIndent)
	}
}

// fmtDur renders a duration as fixed-point milliseconds — the unit
// every experiment table in this repo speaks.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}

// tableWriter accumulates the first write error so dump loops stay
// linear.
type tableWriter struct {
	w   io.Writer
	err error
}

func (tw *tableWriter) printf(format string, args ...any) {
	if tw.err != nil {
		return
	}
	_, tw.err = fmt.Fprintf(tw.w, format, args...)
}
