// Package plot renders simple ASCII line charts — the terminal
// rendition of the paper's figures. Each chart plots one or more named
// series over a shared ordered x-axis; points are marked with the
// series' glyph and collisions show the later series.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line.
type Series struct {
	Name string
	Y    []float64
}

// glyphs mark series in order.
var glyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart holds the data and dimensions of one plot.
type Chart struct {
	title  string
	xlabel string
	labels []string // x tick labels, one per point
	series []Series
	width  int
	height int
}

// New creates a chart with default dimensions (60×16 plot area).
func New(title, xlabel string, labels []string) *Chart {
	return &Chart{title: title, xlabel: xlabel, labels: labels, width: 60, height: 16}
}

// SetSize overrides the plot area dimensions (min 16×4).
func (c *Chart) SetSize(width, height int) {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	c.width = width
	c.height = height
}

// Add appends a series; its length must match the x labels.
func (c *Chart) Add(s Series) error {
	if len(s.Y) != len(c.labels) {
		return fmt.Errorf("plot: series %q has %d points; x-axis has %d", s.Name, len(s.Y), len(c.labels))
	}
	for _, v := range s.Y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("plot: series %q contains a non-finite value", s.Name)
		}
	}
	c.series = append(c.series, s)
	return nil
}

// String renders the chart.
func (c *Chart) String() string {
	var b strings.Builder
	if c.title != "" {
		b.WriteString(c.title)
		b.WriteByte('\n')
	}
	if len(c.series) == 0 || len(c.labels) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}

	lo, hi := c.series[0].Y[0], c.series[0].Y[0]
	for _, s := range c.series {
		for _, v := range s.Y {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi == lo {
		hi = lo + 1 // flat lines still render
	}

	// canvas[row][col]; row 0 is the top.
	canvas := make([][]byte, c.height)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", c.width))
	}
	n := len(c.labels)
	colOf := func(i int) int {
		if n == 1 {
			return 0
		}
		return i * (c.width - 1) / (n - 1)
	}
	rowOf := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := int(math.Round((1 - frac) * float64(c.height-1)))
		if r < 0 {
			r = 0
		}
		if r >= c.height {
			r = c.height - 1
		}
		return r
	}
	for si, s := range c.series {
		glyph := glyphs[si%len(glyphs)]
		for i, v := range s.Y {
			canvas[rowOf(v)][colOf(i)] = glyph
		}
	}

	// y-axis labels on the left, 9 characters wide.
	for r := 0; r < c.height; r++ {
		var yval float64
		if c.height == 1 {
			yval = hi
		} else {
			yval = hi - (hi-lo)*float64(r)/float64(c.height-1)
		}
		fmt.Fprintf(&b, "%8.2f |%s\n", yval, string(canvas[r]))
	}
	b.WriteString(strings.Repeat(" ", 9) + "+" + strings.Repeat("-", c.width) + "\n")

	// x tick labels: first, middle, last.
	ticks := make([]byte, c.width+10)
	for i := range ticks {
		ticks[i] = ' '
	}
	place := func(i int) {
		label := c.labels[i]
		col := 10 + colOf(i)
		start := col - len(label)/2
		if start < 10 {
			start = 10
		}
		if start+len(label) > len(ticks) {
			start = len(ticks) - len(label)
		}
		copy(ticks[start:], label)
	}
	place(0)
	if n > 2 {
		place(n / 2)
	}
	if n > 1 {
		place(n - 1)
	}
	b.Write(ticks)
	b.WriteByte('\n')
	if c.xlabel != "" {
		fmt.Fprintf(&b, "%*s%s\n", 10+c.width/2-len(c.xlabel)/2, "", c.xlabel)
	}

	// Legend.
	b.WriteString("legend: ")
	for si, s := range c.series {
		if si > 0 {
			b.WriteString("   ")
		}
		fmt.Fprintf(&b, "%c %s", glyphs[si%len(glyphs)], s.Name)
	}
	b.WriteByte('\n')
	return b.String()
}
