package plot

import (
	"math"
	"strings"
	"testing"
)

func TestEmptyChart(t *testing.T) {
	c := New("t", "x", nil)
	if !strings.Contains(c.String(), "(no data)") {
		t.Error("empty chart rendering wrong")
	}
}

func TestAddValidation(t *testing.T) {
	c := New("t", "x", []string{"a", "b"})
	if err := c.Add(Series{Name: "s", Y: []float64{1}}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := c.Add(Series{Name: "s", Y: []float64{1, math.NaN()}}); err == nil {
		t.Error("NaN accepted")
	}
	if err := c.Add(Series{Name: "s", Y: []float64{1, math.Inf(1)}}); err == nil {
		t.Error("Inf accepted")
	}
	if err := c.Add(Series{Name: "s", Y: []float64{1, 2}}); err != nil {
		t.Errorf("valid series rejected: %v", err)
	}
}

func TestRenderBasics(t *testing.T) {
	c := New("Title", "queries", []string{"1", "2", "3", "4"})
	if err := c.Add(Series{Name: "up", Y: []float64{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(Series{Name: "down", Y: []float64{4, 3, 2, 1}}); err != nil {
		t.Fatal(err)
	}
	out := c.String()
	for _, want := range []string{"Title", "legend:", "* up", "o down", "queries", "4.00", "1.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// The increasing series' first point is at the bottom row, its last
	// at the top: '*' appears on both extreme value rows.
	lines := strings.Split(out, "\n")
	var topRow, bottomRow string
	for _, line := range lines {
		if strings.Contains(line, "|") {
			if topRow == "" {
				topRow = line
			}
			bottomRow = line
		}
	}
	if !strings.Contains(topRow, "*") {
		t.Errorf("max of increasing series not on top row: %q", topRow)
	}
	if !strings.Contains(bottomRow, "*") {
		t.Errorf("min of increasing series not on bottom row: %q", bottomRow)
	}
}

func TestFlatSeries(t *testing.T) {
	c := New("", "", []string{"a", "b"})
	if err := c.Add(Series{Name: "flat", Y: []float64{5, 5}}); err != nil {
		t.Fatal(err)
	}
	out := c.String()
	if !strings.Contains(out, "*") {
		t.Errorf("flat series not rendered:\n%s", out)
	}
}

func TestSinglePoint(t *testing.T) {
	c := New("", "", []string{"only"})
	if err := c.Add(Series{Name: "s", Y: []float64{3}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.String(), "*") {
		t.Error("single point not rendered")
	}
}

func TestSetSizeClamps(t *testing.T) {
	c := New("", "", []string{"a", "b"})
	c.SetSize(1, 1)
	if c.width != 16 || c.height != 4 {
		t.Errorf("SetSize did not clamp: %d×%d", c.width, c.height)
	}
	c.SetSize(100, 30)
	if c.width != 100 || c.height != 30 {
		t.Error("SetSize ignored valid values")
	}
	if err := c.Add(Series{Name: "s", Y: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, l := range strings.Split(c.String(), "\n") {
		if strings.Contains(l, "|") {
			lines++
		}
	}
	if lines != 30 {
		t.Errorf("rendered %d plot rows, want 30", lines)
	}
}

func TestManySeriesGlyphsCycle(t *testing.T) {
	labels := []string{"a", "b"}
	c := New("", "", labels)
	for i := 0; i < 10; i++ {
		if err := c.Add(Series{Name: "s", Y: []float64{float64(i), float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Ten series over eight glyphs: rendering must not panic and the
	// legend must carry all ten entries.
	if n := strings.Count(c.String(), " s"); n < 10 {
		t.Errorf("legend shows %d series, want 10", n)
	}
}
