// Package domain maps typed attribute values — integers, floats,
// timestamps, ordered categories, free strings — onto the normalized
// [0, 1) axes the grid file partitions. It is the adapter between real
// relations and the declustering machinery: a Schema binds one scaler
// per attribute, builds records from typed tuples, and translates typed
// range predicates into normalized bounds.
package domain

import (
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"decluster/internal/datagen"
)

// Scaler maps one attribute's typed values into [0, 1).
type Scaler interface {
	// Name describes the scaler.
	Name() string
	// Scale converts a value. The concrete value type each scaler
	// accepts is documented on the implementation; a mismatch is an
	// error, not a panic.
	Scale(v interface{}) (float64, error)
	// Ordered reports whether the scaler preserves ordering — required
	// for meaningful range predicates on the attribute. Hash scalers
	// are unordered: only point/partial-match predicates make sense.
	Ordered() bool
}

// Ints scales int64 values from the inclusive range [Min, Max].
type Ints struct {
	Min, Max int64
}

// Name implements Scaler.
func (s Ints) Name() string { return fmt.Sprintf("ints[%d..%d]", s.Min, s.Max) }

// Ordered implements Scaler.
func (s Ints) Ordered() bool { return true }

// Scale implements Scaler; it accepts int, int32 and int64.
func (s Ints) Scale(v interface{}) (float64, error) {
	var x int64
	switch t := v.(type) {
	case int:
		x = int64(t)
	case int32:
		x = int64(t)
	case int64:
		x = t
	default:
		return 0, fmt.Errorf("domain: %s: unsupported type %T", s.Name(), v)
	}
	if s.Max <= s.Min {
		return 0, fmt.Errorf("domain: %s: empty range", s.Name())
	}
	if x < s.Min || x > s.Max {
		return 0, fmt.Errorf("domain: %s: value %d out of range", s.Name(), x)
	}
	return float64(x-s.Min) / float64(s.Max-s.Min+1), nil
}

// Floats scales float64 values from the half-open range [Min, Max).
type Floats struct {
	Min, Max float64
}

// Name implements Scaler.
func (s Floats) Name() string { return fmt.Sprintf("floats[%g..%g)", s.Min, s.Max) }

// Ordered implements Scaler.
func (s Floats) Ordered() bool { return true }

// Scale implements Scaler; it accepts float32 and float64.
func (s Floats) Scale(v interface{}) (float64, error) {
	var x float64
	switch t := v.(type) {
	case float32:
		x = float64(t)
	case float64:
		x = t
	default:
		return 0, fmt.Errorf("domain: %s: unsupported type %T", s.Name(), v)
	}
	if !(s.Max > s.Min) {
		return 0, fmt.Errorf("domain: %s: empty range", s.Name())
	}
	if x < s.Min || x >= s.Max || math.IsNaN(x) {
		return 0, fmt.Errorf("domain: %s: value %v out of range", s.Name(), x)
	}
	return (x - s.Min) / (s.Max - s.Min), nil
}

// Times scales time.Time values from the half-open interval
// [Start, End).
type Times struct {
	Start, End time.Time
}

// Name implements Scaler.
func (s Times) Name() string {
	return fmt.Sprintf("times[%s..%s)", s.Start.Format(time.RFC3339), s.End.Format(time.RFC3339))
}

// Ordered implements Scaler.
func (s Times) Ordered() bool { return true }

// Scale implements Scaler; it accepts time.Time.
func (s Times) Scale(v interface{}) (float64, error) {
	t, ok := v.(time.Time)
	if !ok {
		return 0, fmt.Errorf("domain: %s: unsupported type %T", s.Name(), v)
	}
	if !s.End.After(s.Start) {
		return 0, fmt.Errorf("domain: %s: empty interval", s.Name())
	}
	if t.Before(s.Start) || !t.Before(s.End) {
		return 0, fmt.Errorf("domain: %s: time %v out of interval", s.Name(), t)
	}
	span := float64(s.End.Sub(s.Start))
	return float64(t.Sub(s.Start)) / span, nil
}

// Enum scales an ordered categorical attribute: values map to equal
// slots in declaration order.
type Enum struct {
	Values []string
	index  map[string]int
}

// NewEnum builds an enum scaler, rejecting duplicates.
func NewEnum(values ...string) (*Enum, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("domain: enum needs at least one value")
	}
	idx := make(map[string]int, len(values))
	for i, v := range values {
		if _, dup := idx[v]; dup {
			return nil, fmt.Errorf("domain: enum value %q repeated", v)
		}
		idx[v] = i
	}
	return &Enum{Values: values, index: idx}, nil
}

// Name implements Scaler.
func (s *Enum) Name() string { return fmt.Sprintf("enum(%d values)", len(s.Values)) }

// Ordered implements Scaler.
func (s *Enum) Ordered() bool { return true }

// Scale implements Scaler; it accepts string.
func (s *Enum) Scale(v interface{}) (float64, error) {
	str, ok := v.(string)
	if !ok {
		return 0, fmt.Errorf("domain: %s: unsupported type %T", s.Name(), v)
	}
	i, ok := s.index[str]
	if !ok {
		return 0, fmt.Errorf("domain: %s: unknown value %q", s.Name(), str)
	}
	return float64(i) / float64(len(s.Values)), nil
}

// Hash scales arbitrary strings by FNV-1a hashing — uniform but
// order-destroying: suitable for point and partial-match predicates
// only.
type Hash struct{}

// Name implements Scaler.
func (Hash) Name() string { return "hash" }

// Ordered implements Scaler.
func (Hash) Ordered() bool { return false }

// Scale implements Scaler; it accepts string.
func (Hash) Scale(v interface{}) (float64, error) {
	str, ok := v.(string)
	if !ok {
		return 0, fmt.Errorf("domain: hash: unsupported type %T", v)
	}
	h := fnv.New64a()
	h.Write([]byte(str))
	// Use the top 53 bits for a uniform float in [0, 1).
	return float64(h.Sum64()>>11) / float64(1<<53), nil
}

// Schema binds one scaler per attribute of a relation.
type Schema struct {
	scalers []Scaler
}

// NewSchema builds a schema; at least one attribute is required.
func NewSchema(scalers ...Scaler) (*Schema, error) {
	if len(scalers) == 0 {
		return nil, fmt.Errorf("domain: schema needs at least one attribute")
	}
	for i, s := range scalers {
		if s == nil {
			return nil, fmt.Errorf("domain: attribute %d has nil scaler", i)
		}
	}
	return &Schema{scalers: scalers}, nil
}

// K returns the number of attributes.
func (s *Schema) K() int { return len(s.scalers) }

// Scaler returns the scaler of attribute i.
func (s *Schema) Scaler(i int) Scaler { return s.scalers[i] }

// Record builds a normalized record from a typed tuple.
func (s *Schema) Record(id int, values ...interface{}) (datagen.Record, error) {
	if len(values) != len(s.scalers) {
		return datagen.Record{}, fmt.Errorf("domain: tuple has %d values; schema has %d attributes",
			len(values), len(s.scalers))
	}
	rec := datagen.Record{ID: id, Values: make([]float64, len(values))}
	for i, v := range values {
		f, err := s.scalers[i].Scale(v)
		if err != nil {
			return datagen.Record{}, fmt.Errorf("domain: attribute %d: %w", i, err)
		}
		rec.Values[i] = f
	}
	return rec, nil
}

// Range translates a typed inclusive range predicate on attribute i
// into normalized bounds usable with GridFile.RangeSearch. It rejects
// unordered scalers, whose normalized images are meaningless as
// intervals.
func (s *Schema) Range(i int, lo, hi interface{}) (nlo, nhi float64, err error) {
	if i < 0 || i >= len(s.scalers) {
		return 0, 0, fmt.Errorf("domain: attribute %d out of range", i)
	}
	sc := s.scalers[i]
	if !sc.Ordered() {
		return 0, 0, fmt.Errorf("domain: attribute %d (%s) is unordered; range predicates unsupported", i, sc.Name())
	}
	nlo, err = sc.Scale(lo)
	if err != nil {
		return 0, 0, err
	}
	nhi, err = sc.Scale(hi)
	if err != nil {
		return 0, 0, err
	}
	if nlo > nhi {
		return 0, 0, fmt.Errorf("domain: attribute %d: inverted range", i)
	}
	return nlo, nhi, nil
}
