package domain

import (
	"strings"
	"testing"
	"time"
)

func TestIntsScale(t *testing.T) {
	s := Ints{Min: 10, Max: 19}
	cases := []struct {
		v    interface{}
		want float64
	}{
		{int64(10), 0.0},
		{int(15), 0.5},
		{int32(19), 0.9},
	}
	for _, tc := range cases {
		got, err := s.Scale(tc.v)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("Scale(%v) = %v, want %v", tc.v, got, tc.want)
		}
		if got < 0 || got >= 1 {
			t.Errorf("Scale(%v) = %v outside [0,1)", tc.v, got)
		}
	}
	if _, err := s.Scale(int64(9)); err == nil {
		t.Error("below-range value accepted")
	}
	if _, err := s.Scale(int64(20)); err == nil {
		t.Error("above-range value accepted")
	}
	if _, err := s.Scale("x"); err == nil {
		t.Error("wrong type accepted")
	}
	if _, err := (Ints{Min: 5, Max: 5}).Scale(int64(5)); err == nil {
		t.Error("empty range accepted")
	}
	if !s.Ordered() {
		t.Error("Ints not ordered")
	}
}

func TestFloatsScale(t *testing.T) {
	s := Floats{Min: -10, Max: 10}
	got, err := s.Scale(0.0)
	if err != nil || got != 0.5 {
		t.Errorf("Scale(0) = %v, %v", got, err)
	}
	if _, err := s.Scale(float32(-5)); err != nil {
		t.Errorf("float32 rejected: %v", err)
	}
	if _, err := s.Scale(10.0); err == nil {
		t.Error("upper bound accepted (half-open)")
	}
	if _, err := s.Scale("x"); err == nil {
		t.Error("wrong type accepted")
	}
	if _, err := (Floats{Min: 1, Max: 1}).Scale(1.0); err == nil {
		t.Error("empty range accepted")
	}
}

func TestTimesScale(t *testing.T) {
	start := time.Date(1994, 1, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(1995, 1, 1, 0, 0, 0, 0, time.UTC)
	s := Times{Start: start, End: end}
	mid := start.Add(end.Sub(start) / 2)
	got, err := s.Scale(mid)
	if err != nil || got != 0.5 {
		t.Errorf("Scale(mid) = %v, %v", got, err)
	}
	if _, err := s.Scale(end); err == nil {
		t.Error("end accepted (half-open)")
	}
	if _, err := s.Scale(start.Add(-time.Hour)); err == nil {
		t.Error("before-start accepted")
	}
	if _, err := s.Scale(42); err == nil {
		t.Error("wrong type accepted")
	}
	if !s.Ordered() {
		t.Error("Times not ordered")
	}
}

func TestEnumScale(t *testing.T) {
	s, err := NewEnum("bronze", "silver", "gold")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []string{"bronze", "silver", "gold"} {
		got, err := s.Scale(v)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(i) / 3
		if got != want {
			t.Errorf("Scale(%s) = %v, want %v", v, got, want)
		}
	}
	if _, err := s.Scale("platinum"); err == nil {
		t.Error("unknown value accepted")
	}
	if _, err := s.Scale(1); err == nil {
		t.Error("wrong type accepted")
	}
	if _, err := NewEnum(); err == nil {
		t.Error("empty enum accepted")
	}
	if _, err := NewEnum("a", "a"); err == nil {
		t.Error("duplicate enum accepted")
	}
}

func TestHashScale(t *testing.T) {
	var s Hash
	a, err := s.Scale("hello")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Scale("hello")
	c, _ := s.Scale("world")
	if a != b {
		t.Error("hash not deterministic")
	}
	if a == c {
		t.Error("distinct strings collide (astronomically unlikely)")
	}
	if a < 0 || a >= 1 {
		t.Errorf("hash value %v outside [0,1)", a)
	}
	if s.Ordered() {
		t.Error("Hash claims ordering")
	}
	if _, err := s.Scale(5); err == nil {
		t.Error("wrong type accepted")
	}
}

func TestSchemaRecord(t *testing.T) {
	enum, _ := NewEnum("a", "b")
	schema, err := NewSchema(Ints{Min: 0, Max: 99}, enum)
	if err != nil {
		t.Fatal(err)
	}
	if schema.K() != 2 {
		t.Error("K wrong")
	}
	rec, err := schema.Record(7, int64(50), "b")
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID != 7 || rec.Values[0] != 0.5 || rec.Values[1] != 0.5 {
		t.Errorf("Record = %+v", rec)
	}
	if _, err := schema.Record(0, int64(50)); err == nil {
		t.Error("short tuple accepted")
	}
	if _, err := schema.Record(0, int64(200), "a"); err == nil {
		t.Error("out-of-range attribute accepted")
	}
	if schema.Scaler(1) != Scaler(enum) {
		t.Error("Scaler accessor wrong")
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema(nil); err == nil {
		t.Error("nil scaler accepted")
	}
}

func TestSchemaRange(t *testing.T) {
	schema, _ := NewSchema(Ints{Min: 0, Max: 99}, Hash{})
	lo, hi, err := schema.Range(0, int64(25), int64(74))
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0.25 || hi != 0.74 {
		t.Errorf("Range = [%v, %v]", lo, hi)
	}
	if _, _, err := schema.Range(1, "a", "b"); err == nil {
		t.Error("range on unordered attribute accepted")
	}
	if _, _, err := schema.Range(0, int64(74), int64(25)); err == nil {
		t.Error("inverted range accepted")
	}
	if _, _, err := schema.Range(5, int64(1), int64(2)); err == nil {
		t.Error("attribute index out of range accepted")
	}
	if _, _, err := schema.Range(0, "x", int64(2)); err == nil {
		t.Error("mistyped bound accepted")
	}
}

func TestScalerNames(t *testing.T) {
	enum, _ := NewEnum("x")
	for _, s := range []Scaler{Ints{0, 1}, Floats{0, 1}, Times{time.Unix(0, 0), time.Unix(1, 0)}, enum, Hash{}} {
		if strings.TrimSpace(s.Name()) == "" {
			t.Errorf("%T has empty name", s)
		}
	}
}
