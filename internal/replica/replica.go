// Package replica implements replicated declustering — the extension
// the reproduced paper flags as open ("while assigning a data block to
// multiple disks … has been considered at the disk block level, for
// reliability purposes, no corresponding data replication approaches
// have been proposed for data declustering"). Every bucket is stored on
// a primary and a backup disk (chained declustering, Hsiao & DeWitt
// 1990: backup = primary + 1 mod M, or a configurable offset), and a
// query may read each bucket from either replica. The response time is
// then a scheduling problem — assign each bucket to one of its two
// disks minimizing the busiest disk — which this package solves
// *exactly* by binary-searching the makespan and checking feasibility
// with a max-flow (bipartite b-matching) argument.
package replica

import (
	"fmt"
	"sort"

	"decluster/internal/alloc"
	"decluster/internal/cost"
	"decluster/internal/fault"
	"decluster/internal/grid"
)

// job is one bucket read with its two admissible disks.
type job struct{ a, b int }

// Replicated is a two-copy declustering: per bucket, a primary and a
// backup disk.
type Replicated struct {
	base    alloc.Method
	g       *grid.Grid
	m       int
	offset  int
	primary []int
	backup  []int
}

// NewChained builds the chained replication of a base method: backup =
// (primary + 1) mod M. It requires at least two disks.
func NewChained(base alloc.Method) (*Replicated, error) {
	return NewOffset(base, 1)
}

// NewOffset builds a replication with backup = (primary + offset) mod
// M. The offset must not be ≡ 0 (mod M), or the two copies would share
// a disk.
func NewOffset(base alloc.Method, offset int) (*Replicated, error) {
	if base == nil {
		return nil, fmt.Errorf("replica: nil base method")
	}
	m := base.Disks()
	if m < 2 {
		return nil, fmt.Errorf("replica: need ≥ 2 disks, got %d", m)
	}
	off := ((offset % m) + m) % m
	if off == 0 {
		return nil, fmt.Errorf("replica: offset %d ≡ 0 (mod %d); replicas would share a disk", offset, m)
	}
	g := base.Grid()
	primary := alloc.Table(base)
	backup := make([]int, len(primary))
	for b, d := range primary {
		backup[b] = (d + off) % m
	}
	return &Replicated{base: base, g: g, m: m, offset: off, primary: primary, backup: backup}, nil
}

// Name identifies the replicated scheme.
func (r *Replicated) Name() string { return r.base.Name() + "+chain" }

// Grid returns the underlying grid.
func (r *Replicated) Grid() *grid.Grid { return r.g }

// Disks returns the disk count.
func (r *Replicated) Disks() int { return r.m }

// Offset returns the backup offset.
func (r *Replicated) Offset() int { return r.offset }

// Replicas returns the primary and backup disk of the bucket at c.
func (r *Replicated) Replicas(c grid.Coord) (primary, backup int) {
	b := r.g.Linearize(c)
	return r.primary[b], r.backup[b]
}

// PrimaryOf returns the primary disk of the row-major bucket b.
func (r *Replicated) PrimaryOf(b int) int { return r.primary[b] }

// BackupOf returns the backup disk of the row-major bucket b.
func (r *Replicated) BackupOf(b int) int { return r.backup[b] }

// StorageOverhead returns the replication factor (2.0 — every bucket
// stored twice). Provided for symmetry with cost reporting.
func (r *Replicated) StorageOverhead() float64 { return 2.0 }

// ResponseTime returns the exact optimal response time of the query
// under free replica choice: the minimum over all bucket→replica
// assignments of the busiest disk's bucket count.
func (r *Replicated) ResponseTime(rect grid.Rect) int {
	rt, _ := r.responseTime(rect, nil)
	return rt
}

// ResponseTimeDegraded returns the exact optimal response time with one
// disk failed: buckets whose surviving replica is unique are pinned to
// it, the rest scheduled freely. It returns an error when failed is not
// a valid disk.
func (r *Replicated) ResponseTimeDegraded(rect grid.Rect, failed int) (int, error) {
	return r.ResponseTimeDegradedSet(rect, []int{failed})
}

// ResponseTimeDegradedSet returns the exact optimal response time with
// a set of disks failed simultaneously. It returns a
// *fault.UnavailableError when some bucket of the query lost both of
// its replicas, and a plain error when the failed set itself is
// invalid (out-of-range disk, or every disk failed).
func (r *Replicated) ResponseTimeDegradedSet(rect grid.Rect, failed []int) (int, error) {
	fs, err := r.failedSet(failed)
	if err != nil {
		return 0, err
	}
	return r.responseTime(rect, fs)
}

// DegradedAssignment solves the min-makespan replica assignment of the
// query's buckets with the given disks failed and returns the chosen
// disk per row-major bucket number. Every bucket whose primary disk
// failed resolves to its backup (and vice versa); buckets with both
// replicas alive are placed to minimize the busiest disk. No bucket is
// ever assigned to a failed disk. Errors are those of
// ResponseTimeDegradedSet; a nil or empty failed set yields the
// healthy optimal assignment.
func (r *Replicated) DegradedAssignment(rect grid.Rect, failed []int) (map[int]int, error) {
	fs, err := r.failedSet(failed)
	if err != nil {
		return nil, err
	}
	jobs, ids, err := r.gather(rect, fs)
	if err != nil {
		return nil, err
	}
	out := make(map[int]int, len(jobs))
	if len(jobs) == 0 {
		return out, nil
	}
	q, err := r.makespan(jobs, len(fs))
	if err != nil {
		return nil, err
	}
	byDisk, ok := r.assign(jobs, q)
	if !ok {
		// makespan returned a feasible quota by construction.
		panic(fmt.Sprintf("replica: optimal makespan %d infeasible", q))
	}
	for d, occupants := range byDisk {
		for _, j := range occupants {
			out[ids[j]] = d
		}
	}
	return out, nil
}

// DegradedAssignmentBuckets is DegradedAssignment for an explicit
// bucket-number set rather than a rectangle — the shape a batch
// engine's deduped read plan has after shared buckets are folded
// across queries. Buckets may arrive in any order and may repeat;
// the returned map has one entry per distinct bucket.
func (r *Replicated) DegradedAssignmentBuckets(buckets []int, failed []int) (map[int]int, error) {
	fs, err := r.failedSet(failed)
	if err != nil {
		return nil, err
	}
	jobs, ids, err := r.gatherBuckets(buckets, fs)
	if err != nil {
		return nil, err
	}
	out := make(map[int]int, len(jobs))
	if len(jobs) == 0 {
		return out, nil
	}
	q, err := r.makespan(jobs, len(fs))
	if err != nil {
		return nil, err
	}
	byDisk, ok := r.assign(jobs, q)
	if !ok {
		// makespan returned a feasible quota by construction.
		panic(fmt.Sprintf("replica: optimal makespan %d infeasible", q))
	}
	for d, occupants := range byDisk {
		for _, j := range occupants {
			out[ids[j]] = d
		}
	}
	return out, nil
}

// gatherBuckets collects each listed bucket's admissible disks under
// the failed set, mirroring gather for explicit bucket numbers.
// Repeated buckets contribute one job each (the physical read happens
// once). Buckets that lost both replicas make the set unavailable.
func (r *Replicated) gatherBuckets(buckets []int, failed map[int]bool) ([]job, []int, error) {
	var jobs []job
	var ids []int
	var lost []int
	seen := make(map[int]bool, len(buckets))
	for _, idx := range buckets {
		if idx < 0 || idx >= len(r.primary) {
			return nil, nil, fmt.Errorf("replica: bucket %d outside [0,%d)", idx, len(r.primary))
		}
		if seen[idx] {
			continue
		}
		seen[idx] = true
		a, b := r.primary[idx], r.backup[idx]
		aOK, bOK := !failed[a], !failed[b]
		switch {
		case !aOK && !bOK:
			lost = append(lost, idx)
			continue
		case !aOK:
			a = b
		case !bOK:
			b = a
		}
		jobs = append(jobs, job{a, b})
		ids = append(ids, idx)
	}
	if len(lost) > 0 {
		sort.Ints(lost)
		fd := make([]int, 0, len(failed))
		for d := range failed {
			fd = append(fd, d)
		}
		sort.Ints(fd)
		return nil, nil, &fault.UnavailableError{Buckets: lost, FailedDisks: fd}
	}
	return jobs, ids, nil
}

// failedSet validates and dedups a failed-disk list.
func (r *Replicated) failedSet(failed []int) (map[int]bool, error) {
	fs := make(map[int]bool, len(failed))
	for _, d := range failed {
		if d < 0 || d >= r.m {
			return nil, fmt.Errorf("replica: failed disk %d outside [0,%d)", d, r.m)
		}
		fs[d] = true
	}
	if len(fs) >= r.m {
		return nil, fmt.Errorf("replica: all %d disks failed", r.m)
	}
	return fs, nil
}

// gather collects each query bucket's admissible disks under the failed
// set, plus the bucket ids in visit order. Buckets that lost both
// replicas make the query unavailable.
func (r *Replicated) gather(rect grid.Rect, failed map[int]bool) ([]job, []int, error) {
	var jobs []job
	var ids []int
	var lost []int
	grid.EachRect(rect, func(c grid.Coord) bool {
		idx := r.g.Linearize(c)
		a, b := r.primary[idx], r.backup[idx]
		aOK, bOK := !failed[a], !failed[b]
		switch {
		case !aOK && !bOK:
			lost = append(lost, idx)
			return true
		case !aOK:
			a = b
		case !bOK:
			b = a
		}
		jobs = append(jobs, job{a, b})
		ids = append(ids, idx)
		return true
	})
	if len(lost) > 0 {
		sort.Ints(lost)
		fd := make([]int, 0, len(failed))
		for d := range failed {
			fd = append(fd, d)
		}
		sort.Ints(fd)
		return nil, nil, &fault.UnavailableError{Buckets: lost, FailedDisks: fd}
	}
	return jobs, ids, nil
}

// responseTime solves the min-makespan replica assignment for the
// query's buckets, excluding the failed disks (nil = none).
func (r *Replicated) responseTime(rect grid.Rect, failed map[int]bool) (int, error) {
	jobs, _, err := r.gather(rect, failed)
	if err != nil {
		return 0, err
	}
	if len(jobs) == 0 {
		return 0, nil
	}
	return r.makespan(jobs, len(failed))
}

// makespan binary-searches the optimal busiest-disk quota for the jobs,
// with numFailed disks out of service. Feasibility by max-flow: source
// → job (cap 1) → its disks → sink (cap L). With unit job capacities
// this is bipartite b-matching; a simple augmenting-path matcher with
// per-disk quotas suffices.
func (r *Replicated) makespan(jobs []job, numFailed int) (int, error) {
	n := len(jobs)
	live := r.m - numFailed
	if live < 1 {
		return 0, fmt.Errorf("replica: no live disks")
	}
	lo, hi := cost.OptimalRT(n, live), n
	for lo < hi {
		mid := (lo + hi) / 2
		if _, ok := r.assign(jobs, mid); ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// assign attempts to place every job on one of its two disks with no
// disk exceeding quota q, returning the per-disk occupant lists and
// whether the placement succeeded. Augmenting-path b-matching: jobs are
// matched one at a time; a job may displace another job from a full
// disk if that job can move to its alternative disk (chains of
// displacement are explored depth-first).
func (r *Replicated) assign(jobs []job, q int) ([][]int, bool) {
	loads := make([]int, r.m)
	// byDisk tracks which jobs sit on each disk for displacement.
	byDisk := make([][]int, r.m)
	var place func(j int, visited []bool) bool
	place = func(j int, visited []bool) bool {
		for _, d := range []int{jobs[j].a, jobs[j].b} {
			if visited[d] {
				continue
			}
			if loads[d] < q {
				loads[d]++
				byDisk[d] = append(byDisk[d], j)
				return true
			}
		}
		// Both disks full: try displacing an occupant to its other disk.
		for _, d := range []int{jobs[j].a, jobs[j].b} {
			if visited[d] {
				continue
			}
			visited[d] = true
			// Iterate a snapshot: a failed attempt below swap-removes and
			// re-appends inside byDisk[d], which would skip the swapped-in
			// occupant and retry the removed one if ranged over live.
			occs := append([]int(nil), byDisk[d]...)
			for _, occ := range occs {
				other := jobs[occ].a
				if other == d {
					other = jobs[occ].b
				}
				if other == d {
					continue // occupant has no alternative
				}
				// Temporarily remove the occupant — at its current index,
				// which earlier failed attempts may have shifted — and try
				// to re-place it.
				i := indexOf(byDisk[d], occ)
				byDisk[d][i] = byDisk[d][len(byDisk[d])-1]
				byDisk[d] = byDisk[d][:len(byDisk[d])-1]
				loads[d]--
				if place(occ, visited) {
					loads[d]++
					byDisk[d] = append(byDisk[d], j)
					return true
				}
				// Restore.
				loads[d]++
				byDisk[d] = append(byDisk[d], occ)
			}
		}
		return false
	}
	for j := range jobs {
		visited := make([]bool, r.m)
		if !place(j, visited) {
			return nil, false
		}
	}
	return byDisk, true
}

// indexOf returns the position of x in xs; xs must contain x.
func indexOf(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	panic("replica: occupant vanished from its disk list")
}

// Evaluate measures the replicated scheme over a workload with the
// paper's aggregates, reusing cost.Result semantics (replica choice
// folded into RT).
func (r *Replicated) Evaluate(name string, queries []grid.Rect) cost.Result {
	res := cost.Result{Method: r.Name(), Workload: name, Queries: len(queries)}
	if len(queries) == 0 {
		res.Ratio = 1
		return res
	}
	sumRT, sumOpt, optCount := 0, 0, 0
	for _, q := range queries {
		rt := r.ResponseTime(q)
		opt := cost.OptimalRT(q.Volume(), r.m)
		sumRT += rt
		sumOpt += opt
		if rt == opt {
			optCount++
		}
		if rt > res.WorstRT {
			res.WorstRT = rt
		}
	}
	n := float64(len(queries))
	res.MeanRT = float64(sumRT) / n
	res.MeanOpt = float64(sumOpt) / n
	if res.MeanOpt > 0 {
		res.Ratio = res.MeanRT / res.MeanOpt
	} else {
		res.Ratio = 1
	}
	res.FracOptimal = float64(optCount) / n
	return res
}
