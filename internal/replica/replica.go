// Package replica implements replicated declustering — the extension
// the reproduced paper flags as open ("while assigning a data block to
// multiple disks … has been considered at the disk block level, for
// reliability purposes, no corresponding data replication approaches
// have been proposed for data declustering"). Every bucket is stored on
// a primary and a backup disk (chained declustering, Hsiao & DeWitt
// 1990: backup = primary + 1 mod M, or a configurable offset), and a
// query may read each bucket from either replica. The response time is
// then a scheduling problem — assign each bucket to one of its two
// disks minimizing the busiest disk — which this package solves
// *exactly* by binary-searching the makespan and checking feasibility
// with a max-flow (bipartite b-matching) argument.
package replica

import (
	"fmt"

	"decluster/internal/alloc"
	"decluster/internal/cost"
	"decluster/internal/grid"
)

// job is one bucket read with its two admissible disks.
type job struct{ a, b int }

// Replicated is a two-copy declustering: per bucket, a primary and a
// backup disk.
type Replicated struct {
	base    alloc.Method
	g       *grid.Grid
	m       int
	offset  int
	primary []int
	backup  []int
}

// NewChained builds the chained replication of a base method: backup =
// (primary + 1) mod M. It requires at least two disks.
func NewChained(base alloc.Method) (*Replicated, error) {
	return NewOffset(base, 1)
}

// NewOffset builds a replication with backup = (primary + offset) mod
// M. The offset must not be ≡ 0 (mod M), or the two copies would share
// a disk.
func NewOffset(base alloc.Method, offset int) (*Replicated, error) {
	if base == nil {
		return nil, fmt.Errorf("replica: nil base method")
	}
	m := base.Disks()
	if m < 2 {
		return nil, fmt.Errorf("replica: need ≥ 2 disks, got %d", m)
	}
	off := ((offset % m) + m) % m
	if off == 0 {
		return nil, fmt.Errorf("replica: offset %d ≡ 0 (mod %d); replicas would share a disk", offset, m)
	}
	g := base.Grid()
	primary := alloc.Table(base)
	backup := make([]int, len(primary))
	for b, d := range primary {
		backup[b] = (d + off) % m
	}
	return &Replicated{base: base, g: g, m: m, offset: off, primary: primary, backup: backup}, nil
}

// Name identifies the replicated scheme.
func (r *Replicated) Name() string { return r.base.Name() + "+chain" }

// Grid returns the underlying grid.
func (r *Replicated) Grid() *grid.Grid { return r.g }

// Disks returns the disk count.
func (r *Replicated) Disks() int { return r.m }

// Offset returns the backup offset.
func (r *Replicated) Offset() int { return r.offset }

// Replicas returns the primary and backup disk of the bucket at c.
func (r *Replicated) Replicas(c grid.Coord) (primary, backup int) {
	b := r.g.Linearize(c)
	return r.primary[b], r.backup[b]
}

// StorageOverhead returns the replication factor (2.0 — every bucket
// stored twice). Provided for symmetry with cost reporting.
func (r *Replicated) StorageOverhead() float64 { return 2.0 }

// ResponseTime returns the exact optimal response time of the query
// under free replica choice: the minimum over all bucket→replica
// assignments of the busiest disk's bucket count. -1 disables no disk.
func (r *Replicated) ResponseTime(rect grid.Rect) int {
	return r.responseTime(rect, -1)
}

// ResponseTimeDegraded returns the exact optimal response time with one
// disk failed: buckets whose surviving replica is unique are pinned to
// it, the rest scheduled freely. It returns an error when failed is not
// a valid disk.
func (r *Replicated) ResponseTimeDegraded(rect grid.Rect, failed int) (int, error) {
	if failed < 0 || failed >= r.m {
		return 0, fmt.Errorf("replica: failed disk %d outside [0,%d)", failed, r.m)
	}
	return r.responseTime(rect, failed), nil
}

// responseTime solves the min-makespan replica assignment for the
// query's buckets, optionally excluding a failed disk.
func (r *Replicated) responseTime(rect grid.Rect, failed int) int {
	// Gather each bucket's allowed disks.
	var jobs []job
	grid.EachRect(rect, func(c grid.Coord) bool {
		idx := r.g.Linearize(c)
		a, b := r.primary[idx], r.backup[idx]
		if a == failed {
			a = b
		}
		if b == failed {
			b = a
		}
		jobs = append(jobs, job{a, b})
		return true
	})
	n := len(jobs)
	if n == 0 {
		return 0
	}
	// Binary search the makespan L; feasibility by max-flow: source →
	// job (cap 1) → its disks → sink (cap L). With unit job capacities
	// this is bipartite b-matching; a simple augmenting-path matcher
	// with per-disk quotas suffices.
	lo, hi := cost.OptimalRT(n, r.m), n
	for lo < hi {
		mid := (lo + hi) / 2
		if r.feasible(jobs, mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// feasible reports whether every job can be assigned to one of its two
// disks with no disk exceeding quota q. Augmenting-path b-matching:
// jobs are matched one at a time; a job may displace another job from a
// full disk if that job can move to its alternative disk (chains of
// displacement are explored depth-first).
func (r *Replicated) feasible(jobs []job, q int) bool {
	loads := make([]int, r.m)
	// byDisk tracks which jobs sit on each disk for displacement.
	byDisk := make([][]int, r.m)
	var place func(j int, visited []bool) bool
	place = func(j int, visited []bool) bool {
		for _, d := range []int{jobs[j].a, jobs[j].b} {
			if visited[d] {
				continue
			}
			if loads[d] < q {
				loads[d]++
				byDisk[d] = append(byDisk[d], j)
				return true
			}
		}
		// Both disks full: try displacing an occupant to its other disk.
		for _, d := range []int{jobs[j].a, jobs[j].b} {
			if visited[d] {
				continue
			}
			visited[d] = true
			for i, occ := range byDisk[d] {
				other := jobs[occ].a
				if other == d {
					other = jobs[occ].b
				}
				if other == d {
					continue // occupant has no alternative
				}
				// Temporarily remove the occupant and try to re-place it.
				byDisk[d][i] = byDisk[d][len(byDisk[d])-1]
				byDisk[d] = byDisk[d][:len(byDisk[d])-1]
				loads[d]--
				if place(occ, visited) {
					loads[d]++
					byDisk[d] = append(byDisk[d], j)
					return true
				}
				// Restore.
				loads[d]++
				byDisk[d] = append(byDisk[d], occ)
			}
		}
		return false
	}
	for j := range jobs {
		visited := make([]bool, r.m)
		if !place(j, visited) {
			return false
		}
	}
	return true
}

// Evaluate measures the replicated scheme over a workload with the
// paper's aggregates, reusing cost.Result semantics (replica choice
// folded into RT).
func (r *Replicated) Evaluate(name string, queries []grid.Rect) cost.Result {
	res := cost.Result{Method: r.Name(), Workload: name, Queries: len(queries)}
	if len(queries) == 0 {
		res.Ratio = 1
		return res
	}
	sumRT, sumOpt, optCount := 0, 0, 0
	for _, q := range queries {
		rt := r.ResponseTime(q)
		opt := cost.OptimalRT(q.Volume(), r.m)
		sumRT += rt
		sumOpt += opt
		if rt == opt {
			optCount++
		}
		if rt > res.WorstRT {
			res.WorstRT = rt
		}
	}
	n := float64(len(queries))
	res.MeanRT = float64(sumRT) / n
	res.MeanOpt = float64(sumOpt) / n
	if res.MeanOpt > 0 {
		res.Ratio = res.MeanRT / res.MeanOpt
	} else {
		res.Ratio = 1
	}
	res.FracOptimal = float64(optCount) / n
	return res
}
