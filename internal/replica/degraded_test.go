package replica

import (
	"errors"
	"testing"

	"decluster/internal/alloc"
	"decluster/internal/fault"
	"decluster/internal/grid"
)

// Satellite coverage: with disk d failed, every bucket whose primary is
// d must resolve to its backup, and the min-makespan schedule must
// never place a read on a failed disk.
func TestDegradedAssignmentAvoidsFailedDisk(t *testing.T) {
	g := grid.MustNew(12, 12)
	for _, base := range []string{"DM", "FX", "HCAM"} {
		m, err := alloc.Build(base, g, 6)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewChained(m)
		if err != nil {
			t.Fatal(err)
		}
		q := g.MustRect(grid.Coord{1, 2}, grid.Coord{8, 9})
		for failed := 0; failed < 6; failed++ {
			assign, err := r.DegradedAssignment(q, []int{failed})
			if err != nil {
				t.Fatalf("%s failed=%d: %v", base, failed, err)
			}
			if len(assign) != q.Volume() {
				t.Fatalf("%s failed=%d: assigned %d of %d buckets", base, failed, len(assign), q.Volume())
			}
			grid.EachRect(q, func(c grid.Coord) bool {
				b := g.Linearize(c)
				d, ok := assign[b]
				if !ok {
					t.Fatalf("%s failed=%d: bucket %d unassigned", base, failed, b)
				}
				if d == failed {
					t.Fatalf("%s: bucket %d scheduled on failed disk %d", base, b, failed)
				}
				if d != r.PrimaryOf(b) && d != r.BackupOf(b) {
					t.Fatalf("%s: bucket %d on disk %d, which holds no replica", base, b, d)
				}
				if r.PrimaryOf(b) == failed && d != r.BackupOf(b) {
					t.Fatalf("%s: bucket %d primary on failed disk %d not rerouted to backup %d",
						base, b, failed, r.BackupOf(b))
				}
				if r.BackupOf(b) == failed && d != r.PrimaryOf(b) {
					t.Fatalf("%s: bucket %d backup on failed disk %d not pinned to primary %d",
						base, b, failed, r.PrimaryOf(b))
				}
				return true
			})
		}
	}
}

// The assignment's busiest disk must equal the exact degraded response
// time — the schedule realizes the makespan the scheduler reports.
func TestDegradedAssignmentRealizesMakespan(t *testing.T) {
	g := grid.MustNew(10, 10)
	m, _ := alloc.Build("HCAM", g, 5)
	r, _ := NewChained(m)
	q := g.MustRect(grid.Coord{0, 0}, grid.Coord{6, 7})
	for failed := 0; failed < 5; failed++ {
		assign, err := r.DegradedAssignment(q, []int{failed})
		if err != nil {
			t.Fatal(err)
		}
		loads := make([]int, 5)
		for _, d := range assign {
			loads[d]++
		}
		busiest := 0
		for _, l := range loads {
			if l > busiest {
				busiest = l
			}
		}
		want, err := r.ResponseTimeDegraded(q, failed)
		if err != nil {
			t.Fatal(err)
		}
		if busiest != want {
			t.Fatalf("failed=%d: assignment busiest %d, scheduler %d", failed, busiest, want)
		}
	}
}

func TestDegradedMultiFailure(t *testing.T) {
	g := grid.MustNew(8, 8)
	m, _ := alloc.Build("DM", g, 8)
	r, _ := NewChained(m) // backup = primary+1 mod 8
	q := g.FullRect()

	// Non-adjacent failures survive under chaining.
	rt, err := r.ResponseTimeDegradedSet(q, []int{0, 4})
	if err != nil {
		t.Fatalf("non-adjacent double failure: %v", err)
	}
	healthy := r.ResponseTime(q)
	if rt < healthy {
		t.Fatalf("degraded RT %d below healthy %d", rt, healthy)
	}

	// Adjacent failures 0,1 lose every bucket with primary 0 (backup 1):
	// typed unavailability, not wrong results.
	_, err = r.ResponseTimeDegradedSet(q, []int{0, 1})
	if !errors.Is(err, fault.ErrUnavailable) {
		t.Fatalf("adjacent double failure: got %v, want ErrUnavailable", err)
	}
	var ue *fault.UnavailableError
	if !errors.As(err, &ue) || len(ue.Buckets) == 0 {
		t.Fatal("UnavailableError carries no bucket list")
	}
	for _, b := range ue.Buckets {
		if r.PrimaryOf(b) != 0 || r.BackupOf(b) != 1 {
			t.Fatalf("bucket %d reported lost but has replicas on %d/%d",
				b, r.PrimaryOf(b), r.BackupOf(b))
		}
	}
	if _, err := r.DegradedAssignment(q, []int{0, 1}); !errors.Is(err, fault.ErrUnavailable) {
		t.Fatal("DegradedAssignment did not surface unavailability")
	}
}

func TestDegradedValidation(t *testing.T) {
	g := grid.MustNew(6, 6)
	m, _ := alloc.Build("DM", g, 4)
	r, _ := NewChained(m)
	q := g.FullRect()
	if _, err := r.ResponseTimeDegradedSet(q, []int{4}); err == nil {
		t.Error("out-of-range disk accepted")
	}
	if _, err := r.ResponseTimeDegradedSet(q, []int{-1}); err == nil {
		t.Error("negative disk accepted")
	}
	if _, err := r.ResponseTimeDegradedSet(q, []int{0, 1, 2, 3}); err == nil {
		t.Error("all-disks-failed accepted")
	}
	// Duplicates collapse; a duplicated single failure is fine.
	rt, err := r.ResponseTimeDegradedSet(q, []int{2, 2})
	if err != nil {
		t.Fatalf("duplicate failed disk rejected: %v", err)
	}
	want, _ := r.ResponseTimeDegraded(q, 2)
	if rt != want {
		t.Fatalf("deduped RT %d != single-failure RT %d", rt, want)
	}
	// Empty failed set = healthy optimum.
	rt, err = r.ResponseTimeDegradedSet(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rt != r.ResponseTime(q) {
		t.Fatalf("empty failed set RT %d != healthy %d", rt, r.ResponseTime(q))
	}
}

// Multi-failure scheduling still matches brute force on small queries.
func TestDegradedSetMatchesBruteForce(t *testing.T) {
	g := grid.MustNew(6, 6)
	m, _ := alloc.Build("HCAM", g, 5)
	r, _ := NewChained(m)
	q := g.MustRect(grid.Coord{1, 1}, grid.Coord{3, 4})
	for f1 := 0; f1 < 5; f1++ {
		for f2 := f1 + 1; f2 < 5; f2++ {
			got, err := r.ResponseTimeDegradedSet(q, []int{f1, f2})
			want := bruteForceSet(r, q, map[int]bool{f1: true, f2: true})
			if want < 0 {
				if !errors.Is(err, fault.ErrUnavailable) {
					t.Fatalf("failed={%d,%d}: brute force unavailable, scheduler %v", f1, f2, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("failed={%d,%d}: %v", f1, f2, err)
			}
			if got != want {
				t.Fatalf("failed={%d,%d}: scheduler %d, brute force %d", f1, f2, got, want)
			}
		}
	}
}

// bruteForceSet enumerates all replica assignments, returning -1 when
// some bucket lost both replicas.
func bruteForceSet(r *Replicated, rect grid.Rect, failed map[int]bool) int {
	var buckets []grid.Coord
	grid.EachRect(rect, func(c grid.Coord) bool {
		buckets = append(buckets, c.Clone())
		return true
	})
	n := len(buckets)
	best := -1
	for mask := 0; mask < 1<<uint(n); mask++ {
		loads := make([]int, r.Disks())
		ok := true
		for i, c := range buckets {
			p, b := r.Replicas(c)
			d := p
			if mask>>uint(i)&1 == 1 {
				d = b
			}
			if failed[d] {
				ok = false
				break
			}
			loads[d]++
		}
		if !ok {
			continue
		}
		max := 0
		for _, l := range loads {
			if l > max {
				max = l
			}
		}
		if best == -1 || max < best {
			best = max
		}
	}
	return best
}
