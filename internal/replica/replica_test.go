package replica

import (
	"errors"
	"math/rand"
	"testing"

	"decluster/internal/alloc"
	"decluster/internal/cost"
	"decluster/internal/fault"
	"decluster/internal/grid"
	"decluster/internal/query"
)

func TestNewValidation(t *testing.T) {
	if _, err := NewChained(nil); err == nil {
		t.Error("nil base accepted")
	}
	g := grid.MustNew(8, 8)
	one, _ := alloc.NewDM(g, 1)
	if _, err := NewChained(one); err == nil {
		t.Error("single disk accepted")
	}
	dm, _ := alloc.NewDM(g, 4)
	if _, err := NewOffset(dm, 0); err == nil {
		t.Error("zero offset accepted")
	}
	if _, err := NewOffset(dm, 4); err == nil {
		t.Error("offset ≡ 0 (mod M) accepted")
	}
	r, err := NewOffset(dm, -1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Offset() != 3 {
		t.Errorf("offset -1 reduced to %d, want 3", r.Offset())
	}
}

func TestReplicasDistinct(t *testing.T) {
	g := grid.MustNew(8, 8)
	dm, _ := alloc.NewDM(g, 4)
	r, _ := NewChained(dm)
	if r.Name() != "DM+chain" || r.Disks() != 4 || r.Grid() != g {
		t.Error("accessors wrong")
	}
	if r.StorageOverhead() != 2.0 {
		t.Error("overhead wrong")
	}
	g.Each(func(c grid.Coord) bool {
		p, b := r.Replicas(c)
		if p == b {
			t.Fatalf("bucket %v replicas share disk %d", c, p)
		}
		if b != (p+1)%4 {
			t.Fatalf("bucket %v backup %d, want %d", c, b, (p+1)%4)
		}
		return true
	})
}

// bruteForce enumerates all replica assignments of a small query with
// the given disks failed (nil = none), returning the optimal makespan
// (len(buckets)+1 when no feasible assignment exists).
func bruteForce(r *Replicated, rect grid.Rect, failed []int) int {
	down := make(map[int]bool, len(failed))
	for _, d := range failed {
		down[d] = true
	}
	var buckets []grid.Coord
	grid.EachRect(rect, func(c grid.Coord) bool {
		buckets = append(buckets, c.Clone())
		return true
	})
	n := len(buckets)
	best := n + 1
	for mask := 0; mask < 1<<uint(n); mask++ {
		loads := make([]int, r.Disks())
		ok := true
		for i, c := range buckets {
			p, b := r.Replicas(c)
			d := p
			if mask>>uint(i)&1 == 1 {
				d = b
			}
			if down[d] {
				ok = false
				break
			}
			loads[d]++
		}
		if !ok {
			continue
		}
		max := 0
		for _, l := range loads {
			if l > max {
				max = l
			}
		}
		if max < best {
			best = max
		}
	}
	return best
}

// The exact scheduler must match brute force on every small query.
func TestResponseTimeMatchesBruteForce(t *testing.T) {
	g := grid.MustNew(6, 6)
	for _, base := range []string{"DM", "HCAM"} {
		m, err := alloc.Build(base, g, 4)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewChained(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, sides := range [][]int{{2, 2}, {3, 3}, {2, 5}, {1, 6}, {3, 4}} {
			_, err := g.Placements(sides, func(q grid.Rect) bool {
				got := r.ResponseTime(q)
				want := bruteForce(r, q, nil)
				if got != want {
					t.Fatalf("%s %v at %v: scheduler %d, brute force %d", base, sides, q, got, want)
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestDegradedMatchesBruteForce(t *testing.T) {
	g := grid.MustNew(6, 6)
	m, _ := alloc.Build("DM", g, 4)
	r, _ := NewChained(m)
	q := g.MustRect(grid.Coord{1, 1}, grid.Coord{3, 4})
	for failed := 0; failed < 4; failed++ {
		got, err := r.ResponseTimeDegraded(q, failed)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(r, q, []int{failed})
		if got != want {
			t.Fatalf("failed=%d: scheduler %d, brute force %d", failed, got, want)
		}
	}
	if _, err := r.ResponseTimeDegraded(q, 4); err == nil {
		t.Error("invalid failed disk accepted")
	}
	if _, err := r.ResponseTimeDegraded(q, -1); err == nil {
		t.Error("negative failed disk accepted")
	}
}

// Replication can only help: replicated RT ≤ base RT on every query.
func TestReplicationNeverHurts(t *testing.T) {
	g := grid.MustNew(16, 16)
	for _, name := range []string{"DM", "FX", "HCAM"} {
		m, err := alloc.Build(name, g, 8)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewChained(m)
		if err != nil {
			t.Fatal(err)
		}
		qs, err := query.Placements(g, []int{3, 3}, 100, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range qs {
			baseRT := cost.ResponseTime(m, q)
			repRT := r.ResponseTime(q)
			if repRT > baseRT {
				t.Fatalf("%s on %v: replicated %d > base %d", name, q, repRT, baseRT)
			}
			if repRT < cost.OptimalRT(q.Volume(), 8) {
				t.Fatalf("%s on %v: replicated %d below the information bound", name, q, repRT)
			}
		}
	}
}

// Replication rescues DM's square-query weakness: on 2×2 squares over
// 4 disks, chained DM is exactly optimal although plain DM never is.
func TestChainedDMOptimalOnSquares(t *testing.T) {
	g := grid.MustNew(12, 12)
	dm, _ := alloc.NewDM(g, 4)
	r, _ := NewChained(dm)
	qs, err := query.Placements(g, []int{2, 2}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Evaluate("2×2", qs)
	if res.Ratio != 1 {
		t.Fatalf("chained DM ratio %.3f on 2×2 squares, want 1", res.Ratio)
	}
	plain := cost.Evaluate(dm, query.Workload{Name: "2×2", Queries: qs})
	if plain.Ratio != 2 {
		t.Fatalf("plain DM ratio %.3f, want 2 (sanity)", plain.Ratio)
	}
}

func TestEvaluateEmptyWorkload(t *testing.T) {
	g := grid.MustNew(8, 8)
	dm, _ := alloc.NewDM(g, 4)
	r, _ := NewChained(dm)
	res := r.Evaluate("empty", nil)
	if res.Queries != 0 || res.Ratio != 1 {
		t.Fatalf("empty workload result %+v", res)
	}
}

// The matcher's displacement chains (an occupant evicted to make room,
// which evicts another in turn) only arise on particular load patterns a
// fixed grid rarely produces, so fuzz the exact scheduler against
// exhaustive brute force over random bases, offsets, disk counts,
// failure sets, and query rectangles — and cross-check that
// DegradedAssignment realizes the reported makespan on admissible disks.
func TestSchedulerMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := grid.MustNew(8, 8)
	trials := 500
	if testing.Short() {
		trials = 60
	}
	names := []string{"DM", "FX", "HCAM"}
	for trial := 0; trial < trials; trial++ {
		m := 2 + rng.Intn(4)
		base, err := alloc.Build(names[rng.Intn(len(names))], g, m)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewOffset(base, 1+rng.Intn(m-1))
		if err != nil {
			t.Fatal(err)
		}
		// Query of at most 12 buckets: brute force enumerates 2^n masks.
		s1, s2 := 1+rng.Intn(6), 1+rng.Intn(6)
		for s1*s2 > 12 {
			s1, s2 = 1+rng.Intn(6), 1+rng.Intn(6)
		}
		lo := grid.Coord{rng.Intn(9 - s1), rng.Intn(9 - s2)}
		q := g.MustRect(lo, grid.Coord{lo[0] + s1 - 1, lo[1] + s2 - 1})
		failed := rng.Perm(m)[:rng.Intn(m-1)]
		want := bruteForce(r, q, failed)

		got, err := r.ResponseTimeDegradedSet(q, failed)
		if err != nil {
			if !errors.Is(err, fault.ErrUnavailable) {
				t.Fatal(err)
			}
			if want <= q.Volume() {
				t.Fatalf("trial %d (%s, M=%d, off=%d, q=%v, failed=%v): scheduler unavailable, brute force %d",
					trial, base.Name(), m, r.Offset(), q, failed, want)
			}
			continue
		}
		if got != want {
			t.Fatalf("trial %d (%s, M=%d, off=%d, q=%v, failed=%v): scheduler %d, brute force %d",
				trial, base.Name(), m, r.Offset(), q, failed, got, want)
		}

		assign, err := r.DegradedAssignment(q, failed)
		if err != nil {
			t.Fatal(err)
		}
		down := make(map[int]bool, len(failed))
		for _, d := range failed {
			down[d] = true
		}
		loads := make([]int, m)
		grid.EachRect(q, func(c grid.Coord) bool {
			b := g.Linearize(c)
			d, ok := assign[b]
			if !ok {
				t.Fatalf("trial %d: bucket %d unassigned", trial, b)
			}
			if d != r.PrimaryOf(b) && d != r.BackupOf(b) {
				t.Fatalf("trial %d: bucket %d assigned to non-replica disk %d", trial, b, d)
			}
			if down[d] {
				t.Fatalf("trial %d: bucket %d assigned to failed disk %d", trial, b, d)
			}
			loads[d]++
			return true
		})
		busiest := 0
		for _, l := range loads {
			if l > busiest {
				busiest = l
			}
		}
		if busiest != want {
			t.Fatalf("trial %d: assignment makespan %d, optimum %d", trial, busiest, want)
		}
	}
}

// Degraded-mode RT is bounded: losing one of M disks costs at most ~2×
// (the failed disk's load moves to its chain neighbour).
func TestDegradedBound(t *testing.T) {
	g := grid.MustNew(16, 16)
	hcam, _ := alloc.NewHCAM(g, 8)
	r, _ := NewChained(hcam)
	q := g.MustRect(grid.Coord{2, 2}, grid.Coord{9, 9})
	healthy := r.ResponseTime(q)
	for failed := 0; failed < 8; failed++ {
		deg, err := r.ResponseTimeDegraded(q, failed)
		if err != nil {
			t.Fatal(err)
		}
		if deg < healthy {
			t.Fatalf("degraded RT %d below healthy %d", deg, healthy)
		}
		if deg > 2*healthy+1 {
			t.Fatalf("degraded RT %d exceeds twice healthy %d", deg, healthy)
		}
	}
}
