// Package optimality implements the theoretical side of the
// declustering study: strict-optimality checking of allocations against
// all range queries, and an exhaustive (complete) backtracking search
// that either constructs a strictly optimal allocation for a grid/disk
// configuration or proves that none exists. The paper's theoretical
// contribution — that no declustering method is strictly optimal for
// range queries when the number of disks exceeds 5 — is verified
// constructively by running the search to exhaustion on witness grids.
//
// An allocation is *strictly optimal* when every range query Q on the
// grid meets the lower bound: RT(Q) = ⌈|Q|/M⌉. For queries no larger
// than M this requires all buckets of Q on pairwise distinct disks.
package optimality

import (
	"fmt"

	"decluster/internal/alloc"
	"decluster/internal/cost"
	"decluster/internal/grid"
)

// Violation records a range query on which an allocation misses the
// optimal response time.
type Violation struct {
	Rect    grid.Rect
	RT      int
	Optimal int
}

// String renders the violation.
func (v *Violation) String() string {
	return fmt.Sprintf("query %v: RT %d > optimal %d", v.Rect, v.RT, v.Optimal)
}

// Check tests m against every range query on its grid (every shape at
// every placement) and returns the first violation found, or nil when m
// is strictly optimal. Cost grows quickly with grid size — quadratic in
// the bucket count times the mean query volume — so it is intended for
// the small witness grids of the theorem and for tests.
func Check(m alloc.Method) *Violation {
	g := m.Grid()
	var violation *Violation
	eachShape(g, func(sides []int) bool {
		_, err := g.Placements(sides, func(r grid.Rect) bool {
			rt := cost.ResponseTime(m, r)
			opt := cost.OptimalRT(r.Volume(), m.Disks())
			if rt > opt {
				violation = &Violation{
					Rect:    grid.Rect{Lo: r.Lo.Clone(), Hi: r.Hi.Clone()},
					RT:      rt,
					Optimal: opt,
				}
				return false
			}
			return true
		})
		if err != nil {
			panic(err) // shapes generated from the grid always fit
		}
		return violation == nil
	})
	return violation
}

// CheckWorkload tests m against an explicit query set, returning the
// first violation or nil.
func CheckWorkload(m alloc.Method, queries []grid.Rect) *Violation {
	for _, r := range queries {
		rt := cost.ResponseTime(m, r)
		opt := cost.OptimalRT(r.Volume(), m.Disks())
		if rt > opt {
			return &Violation{Rect: r, RT: rt, Optimal: opt}
		}
	}
	return nil
}

// eachShape enumerates every side-length vector that fits g (sides from
// 1 to d_i per axis), stopping early when fn returns false.
func eachShape(g *grid.Grid, fn func(sides []int) bool) {
	sides := make([]int, g.K())
	for i := range sides {
		sides[i] = 1
	}
	for {
		if !fn(sides) {
			return
		}
		i := g.K() - 1
		for ; i >= 0; i-- {
			sides[i]++
			if sides[i] <= g.Dim(i) {
				break
			}
			sides[i] = 1
		}
		if i < 0 {
			return
		}
	}
}

// Outcome is the tri-state result of the exhaustive search.
type Outcome int

const (
	// Found: a strictly optimal allocation exists and was constructed.
	Found Outcome = iota
	// Impossible: the search ran to exhaustion; no strictly optimal
	// allocation of this grid onto this many disks exists.
	Impossible
	// Undecided: the node budget ran out before the search completed.
	Undecided
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Found:
		return "found"
	case Impossible:
		return "impossible"
	case Undecided:
		return "undecided"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// SearchResult reports the outcome of SearchStrictlyOptimal.
type SearchResult struct {
	Outcome Outcome
	// Table is the strictly optimal allocation (row-major bucket →
	// disk) when Outcome == Found, nil otherwise.
	Table []int
	// Nodes counts the assignments attempted — the size of the explored
	// search tree.
	Nodes int64
}

// SearchStrictlyOptimal performs a complete backtracking search for a
// strictly optimal allocation of g onto m disks. Buckets are assigned
// in row-major order; after each assignment every range query whose
// row-major-maximal corner is the assigned bucket is checked (those
// queries are exactly the ones that became fully assigned), so any
// completed assignment satisfies all range queries. Disk labels are
// canonicalized — a bucket may only use a disk already in use or the
// next fresh one — which quotients out the M! label symmetry.
//
// budget bounds the number of assignments attempted (0 = unlimited);
// when exceeded the result is Undecided. The search is exact: Found
// results carry a verified allocation, and Impossible results are
// proofs by exhaustion.
func SearchStrictlyOptimal(g *grid.Grid, m int, budget int64) SearchResult {
	if m >= g.Buckets() {
		// Every bucket on its own disk is trivially strictly optimal.
		table := make([]int, g.Buckets())
		for i := range table {
			table[i] = i % m
		}
		return SearchResult{Outcome: Found, Table: table, Nodes: int64(g.Buckets())}
	}
	s := &searcher{
		g:      g,
		m:      m,
		budget: budget,
		assign: make([]int, g.Buckets()),
		coords: make([]grid.Coord, g.Buckets()),
	}
	for i := range s.assign {
		s.assign[i] = -1
		s.coords[i] = g.Delinearize(i, nil)
	}
	outcome := s.place(0, 0)
	res := SearchResult{Outcome: outcome, Nodes: s.nodes}
	if outcome == Found {
		res.Table = make([]int, len(s.assign))
		copy(res.Table, s.assign)
	}
	return res
}

type searcher struct {
	g      *grid.Grid
	m      int
	budget int64
	nodes  int64
	assign []int // row-major bucket → disk, -1 unassigned
	coords []grid.Coord
	// allowed restricts the checked query shapes (nil = all shapes).
	allowed map[string]bool
}

// place tries every canonical disk for bucket idx. maxUsed is the
// number of distinct disks used by buckets < idx.
func (s *searcher) place(idx, maxUsed int) Outcome {
	if idx == len(s.assign) {
		return Found
	}
	limit := maxUsed + 1
	if limit > s.m {
		limit = s.m
	}
	for d := 0; d < limit; d++ {
		s.nodes++
		if s.budget > 0 && s.nodes > s.budget {
			s.assign[idx] = -1
			return Undecided
		}
		s.assign[idx] = d
		if s.consistent(idx) {
			nextUsed := maxUsed
			if d == maxUsed {
				nextUsed++
			}
			switch s.place(idx+1, nextUsed) {
			case Found:
				return Found
			case Undecided:
				s.assign[idx] = -1
				return Undecided
			}
		}
	}
	s.assign[idx] = -1
	return Impossible
}

// consistent checks every range query whose maximal corner is bucket
// idx — all of whose buckets are assigned — against the strict bound.
func (s *searcher) consistent(idx int) bool {
	hi := s.coords[idx]
	lo := make(grid.Coord, len(hi))
	counts := make([]int, s.m)
	return s.checkRects(hi, lo, 0, counts)
}

// checkRects recurses over all low corners lo ≤ hi axis by axis; at the
// leaves it counts disk loads over the rectangle and compares with the
// ceiling bound.
func (s *searcher) checkRects(hi, lo grid.Coord, axis int, counts []int) bool {
	if axis == len(hi) {
		return s.checkOne(grid.Rect{Lo: lo, Hi: hi}, counts)
	}
	for v := hi[axis]; v >= 0; v-- {
		lo[axis] = v
		if !s.checkRects(hi, lo, axis+1, counts) {
			return false
		}
	}
	return true
}

// checkOne verifies one fully-assigned rectangle against the ceiling
// bound, reusing the counts scratch slice. Shapes outside the allowed
// set (when one is configured) are unconstrained.
func (s *searcher) checkOne(r grid.Rect, counts []int) bool {
	if s.allowed != nil && !s.allowed[shapeKey(r.Sides())] {
		return true
	}
	for i := range counts {
		counts[i] = 0
	}
	bound := cost.OptimalRT(r.Volume(), s.m)
	ok := true
	grid.EachRect(r, func(c grid.Coord) bool {
		d := s.assign[s.g.Linearize(c)]
		counts[d]++
		if counts[d] > bound {
			ok = false
			return false
		}
		return true
	})
	return ok
}
