package optimality

import (
	"testing"

	"decluster/internal/grid"
)

func TestSearchWithShapesValidation(t *testing.T) {
	g := grid.MustNew(4, 4)
	if _, err := SearchWithShapes(g, 4, [][]int{{1}}, 0); err == nil {
		t.Error("wrong-arity shape accepted")
	}
	if _, err := SearchWithShapes(g, 4, [][]int{{5, 1}}, 0); err == nil {
		t.Error("oversized shape accepted")
	}
}

func TestSearchWithShapesFullSetMatchesUnrestricted(t *testing.T) {
	g := grid.MustNew(4, 4)
	var shapes [][]int
	for a := 1; a <= 4; a++ {
		for b := 1; b <= 4; b++ {
			shapes = append(shapes, []int{a, b})
		}
	}
	restricted, err := SearchWithShapes(g, 4, shapes, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	full := SearchStrictlyOptimal(g, 4, 1_000_000)
	if restricted.Outcome != full.Outcome {
		t.Fatalf("full shape set outcome %v != unrestricted %v", restricted.Outcome, full.Outcome)
	}
}

func TestSearchWithShapesRelaxationCanBecomeFeasible(t *testing.T) {
	// Constraining only 1×j row shapes is satisfiable even at M=6
	// (DM-style striping works) although the full problem is not.
	g := grid.MustNew(6, 6)
	rows := [][]int{{1, 2}, {1, 3}, {1, 6}}
	res, err := SearchWithShapes(g, 6, rows, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Found {
		t.Fatalf("row-only constraints outcome %v, want found", res.Outcome)
	}
}

func TestSearchWithShapesTrivialManyDisks(t *testing.T) {
	g := grid.MustNew(3, 3)
	res, err := SearchWithShapes(g, 9, [][]int{{2, 2}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Found {
		t.Fatalf("outcome %v", res.Outcome)
	}
}

func TestMinimalWitnessM4(t *testing.T) {
	g := grid.MustNew(4, 4)
	core, err := MinimalWitness(g, 4, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(core) == 0 {
		t.Fatal("empty core")
	}
	// The core itself must still prove impossibility…
	res, err := SearchWithShapes(g, 4, core, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Impossible {
		t.Fatalf("core %v does not prove impossibility", core)
	}
	// …and be inclusion-minimal: dropping any shape makes it feasible.
	for i := range core {
		trial := make([][]int, 0, len(core)-1)
		trial = append(trial, core[:i]...)
		trial = append(trial, core[i+1:]...)
		res, err := SearchWithShapes(g, 4, trial, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != Found {
			t.Fatalf("core not minimal: dropping %v still impossible", core[i])
		}
	}
	// All core shapes are small — the theorem lives on small queries.
	for _, s := range core {
		if volume(s) > 6 {
			t.Errorf("core shape %v unexpectedly large", s)
		}
	}
}

func TestMinimalWitnessM6Rectangular(t *testing.T) {
	// 3×6 is the cheap M=6 witness grid.
	g := grid.MustNew(3, 6)
	core, err := MinimalWitness(g, 6, 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SearchWithShapes(g, 6, core, 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Impossible {
		t.Fatalf("core %v does not prove the M=6 case", core)
	}
}

func TestMinimalWitnessFeasibleConfigErrors(t *testing.T) {
	g := grid.MustNew(5, 5)
	if _, err := MinimalWitness(g, 5, 10_000_000); err == nil {
		t.Fatal("feasible configuration produced a witness")
	}
}

func TestMinimalWitnessBudgetErrors(t *testing.T) {
	g := grid.MustNew(6, 6)
	if _, err := MinimalWitness(g, 6, 10); err == nil {
		t.Fatal("tiny budget did not error")
	}
}
