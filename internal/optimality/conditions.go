package optimality

import (
	"fmt"

	"decluster/internal/alloc"
	"decluster/internal/gf2"
	"decluster/internal/grid"
	"decluster/internal/query"
)

// ConditionReport is one row of the paper's Table 1: a declustering
// method, a published optimality condition for partial match queries,
// whether the condition's structural preconditions apply to the tested
// configuration, and whether optimality empirically held over every
// partial match query in the condition's scope.
type ConditionReport struct {
	Method    string
	Condition string
	// Applies reports whether the configuration satisfies the
	// condition's preconditions; when false, Holds is not meaningful
	// and remains false.
	Applies bool
	// Holds reports whether the method met the optimal response time on
	// every partial match query in scope.
	Holds bool
	// Violation carries the first counterexample when Applies && !Holds.
	Violation *Violation
}

// String renders the report row.
func (r ConditionReport) String() string {
	status := "n/a"
	if r.Applies {
		if r.Holds {
			status = "holds"
		} else {
			status = "VIOLATED: " + r.Violation.String()
		}
	}
	return fmt.Sprintf("%-5s %-55s %s", r.Method, r.Condition, status)
}

// pmPatterns enumerates all 2^k − 1 partial-match patterns with at
// least one unspecified attribute; pattern bit i set = attribute i
// unspecified.
func pmPatterns(k int) [][]bool {
	var out [][]bool
	for mask := 1; mask < 1<<uint(k); mask++ {
		p := make([]bool, k)
		for i := 0; i < k; i++ {
			p[i] = mask>>uint(i)&1 == 1
		}
		out = append(out, p)
	}
	return out
}

// checkPM verifies a method against every partial match query whose
// unspecified-pattern satisfies want; it returns the first violation.
func checkPM(m alloc.Method, want func(pattern []bool) bool) *Violation {
	g := m.Grid()
	for _, pattern := range pmPatterns(g.K()) {
		if !want(pattern) {
			continue
		}
		w, err := query.PartialMatchWorkload(g, pattern, 0, 1)
		if err != nil {
			panic(err) // patterns are generated with the right arity
		}
		if v := CheckWorkload(m, w.Queries); v != nil {
			return v
		}
	}
	return nil
}

// countUnspecified counts set entries of a pattern.
func countUnspecified(pattern []bool) int {
	n := 0
	for _, u := range pattern {
		if u {
			n++
		}
	}
	return n
}

// DMOneUnspecified checks the classic Du & Sobolewski theorem: DM is
// strictly optimal for every partial match query with exactly one
// unspecified attribute. Returns nil when the theorem holds on g/M.
func DMOneUnspecified(g *grid.Grid, m int) *Violation {
	dm, err := alloc.NewDM(g, m)
	if err != nil {
		panic(err)
	}
	return checkPM(dm, func(p []bool) bool { return countUnspecified(p) == 1 })
}

// DMDivisibleDomain checks: DM is strictly optimal for every partial
// match query having at least one unspecified attribute whose domain
// satisfies d_i mod M = 0.
func DMDivisibleDomain(g *grid.Grid, m int) *Violation {
	dm, err := alloc.NewDM(g, m)
	if err != nil {
		panic(err)
	}
	return checkPM(dm, func(p []bool) bool {
		for i, u := range p {
			if u && g.Dim(i)%m == 0 {
				return true
			}
		}
		return false
	})
}

// FXOneUnspecified checks Kim & Pramanik's condition: FX is strictly
// optimal for partial match queries with exactly one unspecified
// attribute when domains and disks are powers of two and the
// unspecified domain has d_i ≥ M.
func FXOneUnspecified(g *grid.Grid, m int) *Violation {
	fx, err := alloc.NewFX(g, m)
	if err != nil {
		panic(err)
	}
	return checkPM(fx, func(p []bool) bool {
		if countUnspecified(p) != 1 {
			return false
		}
		for i, u := range p {
			if u {
				return g.Dim(i) >= m
			}
		}
		return false
	})
}

// ECCPatternOptimal decides, from the code's parity-check matrix alone,
// whether the ECC allocation is strictly optimal on every placement of
// the given partial-match pattern. A pattern with unspecified attribute
// set U frees exactly the word bits of those attributes, say f of them;
// the queried buckets form an affine subspace of dimension f. Under the
// linear syndrome map:
//
//   - when 2^f ≥ M, strict optimality (each disk exactly 2^f/M buckets)
//     holds iff the free-column submatrix of H has full row rank r;
//   - when 2^f < M, strict optimality (all buckets distinct disks)
//     holds iff the submatrix has trivial kernel, i.e. rank f.
//
// This is the exact form of the Faloutsos & Metaxas partial-match
// optimality condition for an arbitrary parity-check matrix.
func ECCPatternOptimal(e *alloc.ECC, pattern []bool) (bool, error) {
	g := e.Grid()
	if len(pattern) != g.K() {
		return false, fmt.Errorf("optimality: pattern arity %d for %d-attribute grid", len(pattern), g.K())
	}
	var free []int
	for axis, u := range pattern {
		if u {
			free = append(free, e.BitPositions(axis)...)
		}
	}
	h := e.Code().ParityCheck()
	sub, err := gf2.NewMatrix(h.NumRows(), len(free))
	if err != nil {
		return false, err
	}
	for j, pos := range free {
		sub.SetColumn(j, h.Column(pos))
	}
	rank := sub.Rank()
	f := len(free)
	r := e.Code().ParityBits()
	if f >= r { // 2^f ≥ M = 2^r
		return rank == r, nil
	}
	return rank == f, nil
}

// ECCPartialMatch checks the Faloutsos & Metaxas guarantee empirically:
// ECC must meet the optimal response time on every placement of every
// partial-match pattern that ECCPatternOptimal predicts is optimal.
func ECCPartialMatch(g *grid.Grid, m int) *Violation {
	e, err := alloc.NewECC(g, m)
	if err != nil {
		panic(err)
	}
	return checkPM(e, func(p []bool) bool {
		ok, err := ECCPatternOptimal(e, p)
		if err != nil {
			panic(err)
		}
		return ok
	})
}

// isPow2 reports whether n is a positive power of two.
func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Table1 reproduces the paper's Table 1 on a concrete configuration:
// for each method's published partial-match optimality condition it
// reports whether the preconditions apply to g/M and, if so, whether
// the condition empirically held over every partial match query in
// scope. HCAM appears with no published condition, as in the paper.
func Table1(g *grid.Grid, m int) []ConditionReport {
	pow2Grid := g.IsPowerOfTwo()
	pow2M := isPow2(m)
	anyDivisible := false
	anyWide := false
	for i := 0; i < g.K(); i++ {
		if g.Dim(i)%m == 0 {
			anyDivisible = true
		}
		if g.Dim(i) >= m {
			anyWide = true
		}
	}

	reports := []ConditionReport{
		{
			Method:    "DM",
			Condition: "PM, exactly one attribute unspecified",
			Applies:   true,
		},
		{
			Method:    "DM",
			Condition: "PM, ≥1 unspecified attribute with d_i mod M = 0",
			Applies:   anyDivisible,
		},
		{
			Method:    "FX",
			Condition: "PM, one unspecified attribute with d_i ≥ M (powers of 2)",
			Applies:   pow2Grid && pow2M && anyWide,
		},
		{
			Method:    "ECC",
			Condition: "PM patterns whose free bits span/embed in GF(2)^r (powers of 2)",
			Applies:   pow2Grid && pow2M,
		},
		{
			Method:    "HCAM",
			Condition: "no published optimality condition",
			Applies:   false,
		},
	}

	if reports[0].Applies {
		reports[0].Violation = DMOneUnspecified(g, m)
		reports[0].Holds = reports[0].Violation == nil
	}
	if reports[1].Applies {
		reports[1].Violation = DMDivisibleDomain(g, m)
		reports[1].Holds = reports[1].Violation == nil
	}
	if reports[2].Applies {
		reports[2].Violation = FXOneUnspecified(g, m)
		reports[2].Holds = reports[2].Violation == nil
	}
	if reports[3].Applies {
		reports[3].Violation = ECCPartialMatch(g, m)
		reports[3].Holds = reports[3].Violation == nil
	}
	return reports
}
