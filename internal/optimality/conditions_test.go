package optimality

import (
	"strings"
	"testing"

	"decluster/internal/alloc"
	"decluster/internal/grid"
	"decluster/internal/query"
)

func TestPMPatterns(t *testing.T) {
	ps := pmPatterns(3)
	if len(ps) != 7 {
		t.Fatalf("got %d patterns, want 7", len(ps))
	}
	seen := make(map[string]bool)
	for _, p := range ps {
		key := ""
		any := false
		for _, u := range p {
			if u {
				key += "1"
				any = true
			} else {
				key += "0"
			}
		}
		if !any {
			t.Fatalf("pattern %v has no unspecified attribute", p)
		}
		if seen[key] {
			t.Fatalf("duplicate pattern %v", p)
		}
		seen[key] = true
	}
}

func TestDMOneUnspecifiedHolds(t *testing.T) {
	for _, tc := range []struct {
		dims []int
		m    int
	}{
		{[]int{16, 16}, 4},
		{[]int{12, 12}, 6},
		{[]int{8, 8, 8}, 4},
		{[]int{10, 15}, 5},
	} {
		g := grid.MustNew(tc.dims...)
		if v := DMOneUnspecified(g, tc.m); v != nil {
			t.Errorf("grid %v M=%d: %v", g, tc.m, v)
		}
	}
}

func TestDMDivisibleDomainHolds(t *testing.T) {
	for _, tc := range []struct {
		dims []int
		m    int
	}{
		{[]int{16, 16}, 4},
		{[]int{12, 7}, 6}, // only axis 0 divisible
		{[]int{8, 8, 8}, 8},
	} {
		g := grid.MustNew(tc.dims...)
		if v := DMDivisibleDomain(g, tc.m); v != nil {
			t.Errorf("grid %v M=%d: %v", g, tc.m, v)
		}
	}
}

func TestFXOneUnspecifiedHolds(t *testing.T) {
	for _, tc := range []struct {
		dims []int
		m    int
	}{
		{[]int{16, 16}, 4},
		{[]int{16, 16}, 8},
		{[]int{8, 16}, 8},
		{[]int{8, 8, 8}, 4},
	} {
		g := grid.MustNew(tc.dims...)
		if v := FXOneUnspecified(g, tc.m); v != nil {
			t.Errorf("grid %v M=%d: %v", g, tc.m, v)
		}
	}
}

func TestECCPartialMatchHolds(t *testing.T) {
	for _, tc := range []struct {
		dims []int
		m    int
	}{
		{[]int{16, 16}, 4},
		{[]int{16, 16}, 8},
		{[]int{8, 8, 8}, 4},
		{[]int{32, 32}, 16},
	} {
		g := grid.MustNew(tc.dims...)
		if v := ECCPartialMatch(g, tc.m); v != nil {
			t.Errorf("grid %v M=%d: %v", g, tc.m, v)
		}
	}
}

// The rank-based prediction must match empirical reality in BOTH
// directions for every pattern: predicted-optimal patterns have no
// violation; predicted-suboptimal patterns have one.
func TestECCPatternOptimalExact(t *testing.T) {
	for _, tc := range []struct {
		dims []int
		m    int
	}{
		{[]int{8, 8}, 8},
		{[]int{16, 8}, 8},
		{[]int{4, 4, 4}, 4},
		{[]int{8, 4, 2}, 4},
	} {
		g := grid.MustNew(tc.dims...)
		e, err := alloc.NewECC(g, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		for _, pattern := range pmPatterns(g.K()) {
			predicted, err := ECCPatternOptimal(e, pattern)
			if err != nil {
				t.Fatal(err)
			}
			w, err := query.PartialMatchWorkload(g, pattern, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			v := CheckWorkload(e, w.Queries)
			actual := v == nil
			if predicted != actual {
				t.Errorf("grid %v M=%d pattern %v: predicted optimal=%v, actual=%v (violation %v)",
					g, tc.m, pattern, predicted, actual, v)
			}
		}
	}
}

func TestECCPatternOptimalArity(t *testing.T) {
	e, _ := alloc.NewECC(grid.MustNew(8, 8), 4)
	if _, err := ECCPatternOptimal(e, []bool{true}); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestTable1AllHoldOnPow2Config(t *testing.T) {
	g := grid.MustNew(16, 16)
	reports := Table1(g, 8)
	if len(reports) != 5 {
		t.Fatalf("got %d rows, want 5", len(reports))
	}
	for _, r := range reports[:4] {
		if !r.Applies {
			t.Errorf("%s condition does not apply on 16×16/8", r.Method)
			continue
		}
		if !r.Holds {
			t.Errorf("%s condition violated: %v", r.Method, r.Violation)
		}
	}
	// HCAM row: no condition.
	if reports[4].Method != "HCAM" || reports[4].Applies {
		t.Error("HCAM row wrong")
	}
}

func TestTable1NonPow2SkipsFXECC(t *testing.T) {
	g := grid.MustNew(12, 12)
	reports := Table1(g, 6)
	for _, r := range reports {
		switch r.Method {
		case "FX", "ECC":
			if r.Applies {
				t.Errorf("%s condition applies on non-power-of-two config", r.Method)
			}
		case "DM":
			if !r.Applies {
				t.Errorf("DM row %q should apply", r.Condition)
			} else if !r.Holds {
				t.Errorf("DM condition violated: %v", r.Violation)
			}
		}
	}
}

func TestConditionReportString(t *testing.T) {
	r := ConditionReport{Method: "DM", Condition: "c", Applies: true, Holds: true}
	if !strings.Contains(r.String(), "holds") {
		t.Errorf("String() = %q", r.String())
	}
	r2 := ConditionReport{Method: "DM", Condition: "c"}
	if !strings.Contains(r2.String(), "n/a") {
		t.Errorf("String() = %q", r2.String())
	}
	r3 := ConditionReport{
		Method: "DM", Condition: "c", Applies: true,
		Violation: &Violation{Rect: grid.MustNew(2, 2).FullRect(), RT: 3, Optimal: 1},
	}
	if !strings.Contains(r3.String(), "VIOLATED") {
		t.Errorf("String() = %q", r3.String())
	}
}
