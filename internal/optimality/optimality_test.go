package optimality

import (
	"testing"

	"decluster/internal/alloc"
	"decluster/internal/cost"
	"decluster/internal/grid"
	"decluster/internal/query"
)

func TestOutcomeString(t *testing.T) {
	if Found.String() != "found" || Impossible.String() != "impossible" || Undecided.String() != "undecided" {
		t.Error("outcome names wrong")
	}
	if Outcome(7).String() != "Outcome(7)" {
		t.Error("unknown outcome rendering wrong")
	}
}

// GDM with coefficients (1, 2) mod 5 is the classic strictly optimal
// allocation for 2-D grids on 5 disks.
func TestCheckGDM5StrictlyOptimal(t *testing.T) {
	g := grid.MustNew(10, 10)
	m, err := alloc.NewGDM(g, 5, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if v := Check(m); v != nil {
		t.Fatalf("GDM(1,2) mod 5 violated: %v", v)
	}
}

func TestCheckDMNotStrictlyOptimal(t *testing.T) {
	// DM on 4 disks: a 2×2 square at the origin has sums {0,1,1,2} →
	// disk 1 holds two buckets, optimal is 1.
	g := grid.MustNew(8, 8)
	m, _ := alloc.NewDM(g, 4)
	v := Check(m)
	if v == nil {
		t.Fatal("DM mod 4 reported strictly optimal")
	}
	if v.RT <= v.Optimal {
		t.Fatalf("violation not a violation: %v", v)
	}
}

func TestCheckSingleDiskTrivial(t *testing.T) {
	// One disk: every allocation is strictly optimal (RT = |Q| = ⌈|Q|/1⌉).
	g := grid.MustNew(5, 5)
	m, _ := alloc.NewDM(g, 1)
	if v := Check(m); v != nil {
		t.Fatalf("single-disk allocation violated: %v", v)
	}
}

func TestCheckWorkload(t *testing.T) {
	g := grid.MustNew(8, 8)
	m, _ := alloc.NewDM(g, 4)
	// Row queries: DM is optimal.
	rows, _ := query.Placements(g, []int{1, 4}, 0, 1)
	if v := CheckWorkload(m, rows); v != nil {
		t.Fatalf("DM violated on row queries: %v", v)
	}
	// 2×2 squares: DM is not.
	squares, _ := query.Placements(g, []int{2, 2}, 0, 1)
	if v := CheckWorkload(m, squares); v == nil {
		t.Fatal("DM reported optimal on 2×2 squares over 4 disks")
	}
}

// Search results verified against the known characterization: on
// square grids of side ≥ max(3, M), strictly optimal allocations exist
// exactly for M ∈ {1, 2, 3, 5}. M = 4 fails (consistent with the later
// Abdel-Ghaffar & El Abbadi characterization), and every M ≥ 6 fails —
// the paper's theorem.
func TestSearchFeasibleCases(t *testing.T) {
	cases := []struct{ side, m int }{
		{4, 2}, {6, 3}, {5, 5}, {7, 5},
	}
	for _, tc := range cases {
		g := grid.MustNew(tc.side, tc.side)
		res := SearchStrictlyOptimal(g, tc.m, 10_000_000)
		if res.Outcome != Found {
			t.Fatalf("side=%d M=%d: outcome %v, want found", tc.side, tc.m, res.Outcome)
		}
		// The allocation returned must actually be strictly optimal.
		ta, err := alloc.NewTable("search", g, tc.m, res.Table)
		if err != nil {
			t.Fatal(err)
		}
		if v := Check(ta); v != nil {
			t.Fatalf("side=%d M=%d: returned allocation violates %v", tc.side, tc.m, v)
		}
	}
}

func TestSearchImpossibleCases(t *testing.T) {
	cases := []struct{ side, m int }{
		{4, 4},
		{6, 6}, // the paper's theorem, smallest square witness
		{7, 7},
		{8, 8},
	}
	for _, tc := range cases {
		g := grid.MustNew(tc.side, tc.side)
		res := SearchStrictlyOptimal(g, tc.m, 10_000_000)
		if res.Outcome != Impossible {
			t.Fatalf("side=%d M=%d: outcome %v, want impossible", tc.side, tc.m, res.Outcome)
		}
		if res.Table != nil {
			t.Fatal("impossible outcome carries a table")
		}
	}
}

func TestSearchTheoremBand(t *testing.T) {
	// The paper's statement verified across the band M = 6..9 on the
	// smallest square witness grids.
	for m := 6; m <= 9; m++ {
		g := grid.MustNew(m, m)
		res := SearchStrictlyOptimal(g, m, 50_000_000)
		if res.Outcome != Impossible {
			t.Fatalf("M=%d: outcome %v, want impossible (theorem)", m, res.Outcome)
		}
	}
}

func TestSearchDegenerate2xN(t *testing.T) {
	// Degenerate 2×2M grids do admit strictly optimal allocations even
	// for M ≥ 6 — the theorem needs grids with enough room in both
	// axes; this documents the boundary.
	g := grid.MustNew(2, 12)
	res := SearchStrictlyOptimal(g, 6, 10_000_000)
	if res.Outcome != Found {
		t.Fatalf("2×12 M=6: outcome %v, want found", res.Outcome)
	}
	ta, _ := alloc.NewTable("deg", g, 6, res.Table)
	if v := Check(ta); v != nil {
		t.Fatalf("degenerate allocation violates %v", v)
	}
}

func TestSearch3DWitness(t *testing.T) {
	res := SearchStrictlyOptimal(grid.MustNew(4, 4, 4), 6, 10_000_000)
	if res.Outcome != Impossible {
		t.Fatalf("4×4×4 M=6: outcome %v, want impossible", res.Outcome)
	}
}

func TestSearchTrivialManyDisks(t *testing.T) {
	// M ≥ buckets: each bucket gets its own disk.
	g := grid.MustNew(3, 3)
	res := SearchStrictlyOptimal(g, 9, 0)
	if res.Outcome != Found {
		t.Fatalf("outcome %v, want found", res.Outcome)
	}
	ta, err := alloc.NewTable("trivial", g, 9, res.Table)
	if err != nil {
		t.Fatal(err)
	}
	if v := Check(ta); v != nil {
		t.Fatalf("trivial allocation violates %v", v)
	}
}

func TestSearchBudgetExhaustion(t *testing.T) {
	g := grid.MustNew(8, 8)
	res := SearchStrictlyOptimal(g, 7, 10)
	if res.Outcome != Undecided {
		t.Fatalf("outcome %v with budget 10, want undecided", res.Outcome)
	}
	if res.Nodes > 11 {
		t.Fatalf("explored %d nodes past budget", res.Nodes)
	}
}

func TestSearchUnlimitedBudget(t *testing.T) {
	res := SearchStrictlyOptimal(grid.MustNew(5, 5), 5, 0)
	if res.Outcome != Found {
		t.Fatalf("outcome %v, want found", res.Outcome)
	}
}

// The searched M=5 allocation must agree with the GDM(1,2) witness in
// quality: both strictly optimal, possibly different tables.
func TestSearchedAllocationMatchesGDMQuality(t *testing.T) {
	g := grid.MustNew(6, 6)
	res := SearchStrictlyOptimal(g, 5, 10_000_000)
	if res.Outcome != Found {
		t.Fatal("search failed on feasible case")
	}
	ta, _ := alloc.NewTable("search", g, 5, res.Table)
	gdm, _ := alloc.NewGDM(g, 5, []int{1, 2})
	ws, _ := query.SizeSweep(g, []int{2, 4, 6, 9}, 0, 1)
	for _, w := range ws {
		rs := cost.Evaluate(ta, w)
		rg := cost.Evaluate(gdm, w)
		if rs.Ratio != 1 || rg.Ratio != 1 {
			t.Fatalf("workload %s: searched ratio %v, GDM ratio %v; want both 1", w.Name, rs.Ratio, rg.Ratio)
		}
	}
}

// Every prefix-assignment the search validates satisfies all completed
// queries, so the violation-free property of Found results must also
// hold under independent re-checking with a fresh method wrapper.
func TestSearchResultIndependentlyVerified(t *testing.T) {
	g := grid.MustNew(8, 8)
	res := SearchStrictlyOptimal(g, 3, 10_000_000)
	if res.Outcome != Found {
		t.Fatalf("8×8 M=3: outcome %v", res.Outcome)
	}
	ta, _ := alloc.NewTable("verify", g, 3, res.Table)
	shapes := [][]int{{1, 3}, {3, 1}, {2, 2}, {3, 3}, {2, 5}, {8, 8}}
	for _, s := range shapes {
		qs, err := query.Placements(g, s, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if v := CheckWorkload(ta, qs); v != nil {
			t.Fatalf("shape %v: %v", s, v)
		}
	}
}
