package optimality

import (
	"fmt"
	"sort"

	"decluster/internal/grid"
)

// SearchWithShapes runs the strict-optimality search constrained to
// range queries of the given shapes only (side vectors; every placement
// of each shape). Queries of other shapes are unconstrained. With the
// full shape set this coincides with SearchStrictlyOptimal; with a
// subset, Impossible results identify *which* query shapes alone
// already rule out strict optimality.
func SearchWithShapes(g *grid.Grid, m int, shapes [][]int, budget int64) (SearchResult, error) {
	allowed := make(map[string]bool, len(shapes))
	for _, s := range shapes {
		if len(s) != g.K() {
			return SearchResult{}, fmt.Errorf("optimality: shape %v has %d sides; grid has %d axes", s, len(s), g.K())
		}
		for i, v := range s {
			if v < 1 || v > g.Dim(i) {
				return SearchResult{}, fmt.Errorf("optimality: shape %v does not fit grid %v", s, g)
			}
		}
		allowed[shapeKey(s)] = true
	}
	if m >= g.Buckets() {
		table := make([]int, g.Buckets())
		for i := range table {
			table[i] = i % m
		}
		return SearchResult{Outcome: Found, Table: table, Nodes: int64(g.Buckets())}, nil
	}
	s := &searcher{
		g:       g,
		m:       m,
		budget:  budget,
		assign:  make([]int, g.Buckets()),
		coords:  make([]grid.Coord, g.Buckets()),
		allowed: allowed,
	}
	for i := range s.assign {
		s.assign[i] = -1
		s.coords[i] = g.Delinearize(i, nil)
	}
	outcome := s.place(0, 0)
	res := SearchResult{Outcome: outcome, Nodes: s.nodes}
	if outcome == Found {
		res.Table = make([]int, len(s.assign))
		copy(res.Table, s.assign)
	}
	return res, nil
}

// shapeKey canonicalizes a side vector for set membership.
func shapeKey(sides []int) string {
	key := ""
	for i, v := range sides {
		if i > 0 {
			key += "×"
		}
		key += fmt.Sprint(v)
	}
	return key
}

// MinimalWitness returns an inclusion-minimal set of query shapes whose
// placements alone prove that no strictly optimal allocation of g onto
// m disks exists: greedy deletion from the full fitting shape set,
// preferring to drop large shapes so the surviving core is made of the
// small queries the theorem's intuition lives on. It returns an error
// when even the full constraint set admits an allocation (the
// configuration is feasible) or the budget is exhausted.
func MinimalWitness(g *grid.Grid, m int, budget int64) ([][]int, error) {
	// Full shape set, largest volume first (deletion order).
	var shapes [][]int
	eachShape(g, func(sides []int) bool {
		cp := make([]int, len(sides))
		copy(cp, sides)
		shapes = append(shapes, cp)
		return true
	})
	sort.SliceStable(shapes, func(i, j int) bool {
		return volume(shapes[i]) > volume(shapes[j])
	})

	res, err := SearchWithShapes(g, m, shapes, budget)
	if err != nil {
		return nil, err
	}
	switch res.Outcome {
	case Found:
		return nil, fmt.Errorf("optimality: %v onto %d disks is feasible; no witness exists", g, m)
	case Undecided:
		return nil, fmt.Errorf("optimality: budget %d exhausted on the full shape set", budget)
	}

	for i := 0; i < len(shapes); {
		trial := make([][]int, 0, len(shapes)-1)
		trial = append(trial, shapes[:i]...)
		trial = append(trial, shapes[i+1:]...)
		res, err := SearchWithShapes(g, m, trial, budget)
		if err != nil {
			return nil, err
		}
		switch res.Outcome {
		case Impossible:
			shapes = trial // shape i is redundant
		case Found:
			i++ // shape i is load-bearing
		default:
			return nil, fmt.Errorf("optimality: budget %d exhausted during reduction", budget)
		}
	}
	// Present the core smallest-first.
	sort.SliceStable(shapes, func(i, j int) bool {
		return volume(shapes[i]) < volume(shapes[j])
	})
	return shapes, nil
}

func volume(sides []int) int {
	v := 1
	for _, s := range sides {
		v *= s
	}
	return v
}
