package gdmopt

import (
	"testing"

	"decluster/internal/alloc"
	"decluster/internal/cost"
	"decluster/internal/grid"
	"decluster/internal/query"
)

func squaresWorkload(t *testing.T, g *grid.Grid, side int) query.Workload {
	t.Helper()
	qs, err := query.Placements(g, []int{side, side}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return query.Workload{Name: "squares", Queries: qs}
}

func TestSearchValidation(t *testing.T) {
	g := grid.MustNew(8, 8)
	w := squaresWorkload(t, g, 2)
	if _, err := Search(nil, 4, w, 0); err == nil {
		t.Error("nil grid accepted")
	}
	if _, err := Search(g, 0, w, 0); err == nil {
		t.Error("zero disks accepted")
	}
	if _, err := Search(g, 4, query.Workload{}, 0); err == nil {
		t.Error("empty workload accepted")
	}
}

// The search must rediscover the strictly optimal diagonal (1,2) (or an
// equivalent) for 2×2 squares over 5 disks.
func TestSearchRediscoversDiagonalMod5(t *testing.T) {
	g := grid.MustNew(10, 10)
	w := squaresWorkload(t, g, 2)
	res, err := Search(g, 5, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhaustive {
		t.Fatal("unlimited budget reported non-exhaustive")
	}
	if res.Eval.Ratio != 1 {
		t.Fatalf("best GDM ratio %.3f, want 1 (diagonal exists); coeffs %v",
			res.Eval.Ratio, res.Coefficients)
	}
	// Verify independently.
	gdm, err := alloc.NewGDM(g, 5, res.Coefficients)
	if err != nil {
		t.Fatal(err)
	}
	if r := cost.Evaluate(gdm, w); r.Ratio != 1 {
		t.Fatalf("reported coefficients %v re-evaluate to %.3f", res.Coefficients, r.Ratio)
	}
}

// The optimum can never be worse than plain DM (all-ones is in the
// search space).
func TestSearchNeverWorseThanDM(t *testing.T) {
	g := grid.MustNew(16, 16)
	for _, m := range []int{4, 7, 8} {
		w := squaresWorkload(t, g, 3)
		res, err := Search(g, m, w, 0)
		if err != nil {
			t.Fatal(err)
		}
		dm, _ := alloc.NewDM(g, m)
		dmEval := cost.Evaluate(dm, w)
		if res.Eval.MeanRT > dmEval.MeanRT {
			t.Errorf("M=%d: best GDM %.3f worse than DM %.3f", m, res.Eval.MeanRT, dmEval.MeanRT)
		}
	}
}

func TestSearchBudget(t *testing.T) {
	g := grid.MustNew(8, 8)
	w := squaresWorkload(t, g, 2)
	res, err := Search(g, 8, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhaustive {
		t.Error("tiny budget reported exhaustive")
	}
	if res.Evaluated != 3 {
		t.Errorf("evaluated %d vectors with budget 3", res.Evaluated)
	}
	if len(res.Coefficients) != 2 {
		t.Error("no best-so-far returned")
	}
}

func TestSearchCanonicalizationSkipsUnits(t *testing.T) {
	// M=5: units are 1..4; leads 2,3,4 are skipped, so the space is
	// (1 unit lead + 1 zero lead) × 5 = 10 vectors.
	g := grid.MustNew(5, 5)
	w := squaresWorkload(t, g, 2)
	res, err := Search(g, 5, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 10 {
		t.Errorf("evaluated %d vectors, want 10 (canonicalized)", res.Evaluated)
	}
}

func TestSearch3D(t *testing.T) {
	g := grid.MustNew(6, 6, 6)
	qs, err := query.Placements(g, []int{2, 2, 2}, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := query.Workload{Name: "cubes", Queries: qs}
	res, err := Search(g, 4, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Coefficients) != 3 {
		t.Fatalf("coefficients %v, want 3 entries", res.Coefficients)
	}
	if res.Eval.Ratio < 1 {
		t.Fatal("impossible ratio")
	}
}
