// Package gdmopt searches the generalized-disk-modulo coefficient space
// for the vector that best declusters a given workload. GDM subsumes DM
// (all-ones coefficients) and the diagonal schemes — e.g. the search
// rediscovers the (1, 2) mod 5 allocation that is strictly optimal on
// 2-D grids — so tuning its coefficients is the modulo family's answer
// to the paper's conclusion that declustering should follow the
// workload.
package gdmopt

import (
	"fmt"

	"decluster/internal/alloc"
	"decluster/internal/cost"
	"decluster/internal/grid"
	"decluster/internal/query"
)

// Result reports the best coefficient vector found.
type Result struct {
	// Coefficients is the winning vector (one per attribute, in
	// [0, M)).
	Coefficients []int
	// Eval is the winning vector's workload evaluation.
	Eval cost.Result
	// Evaluated counts coefficient vectors tried.
	Evaluated int
	// Exhaustive reports whether the whole (canonical) space was
	// searched, or the budget cut it short.
	Exhaustive bool
}

// Search enumerates coefficient vectors in canonical order and returns
// the one minimizing mean response time on the workload (ties to the
// earliest). Vectors whose first coefficient is a unit mod M are
// canonicalized to lead with 1 (scaling all coefficients by a unit
// permutes disk labels without changing response times), which shrinks
// the space by ~φ(M). budget bounds vectors evaluated (0 = unlimited);
// when the budget cuts enumeration short the best-so-far is returned
// with Exhaustive=false.
func Search(g *grid.Grid, m int, w query.Workload, budget int) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("gdmopt: nil grid")
	}
	if m < 1 {
		return nil, fmt.Errorf("gdmopt: need at least one disk, got %d", m)
	}
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("gdmopt: empty workload")
	}
	res := &Result{Exhaustive: true}
	coeffs := make([]int, g.K())
	var best *cost.Result

	var sweep func(axis int) bool // false = budget exhausted
	sweep = func(axis int) bool {
		if axis == g.K() {
			if budget > 0 && res.Evaluated >= budget {
				return false
			}
			res.Evaluated++
			gdm, err := alloc.NewGDM(g, m, coeffs)
			if err != nil {
				// Construction only fails on arity/disk errors, which
				// were validated above.
				panic(err)
			}
			eval := cost.Evaluate(gdm, w)
			if best == nil || eval.MeanRT < best.MeanRT {
				e := eval
				best = &e
				res.Coefficients = append(res.Coefficients[:0], coeffs...)
			}
			return true
		}
		for a := 0; a < m; a++ {
			if axis == 0 && a != canonicalLead(a, m) {
				continue
			}
			coeffs[axis] = a
			if !sweep(axis + 1) {
				return false
			}
		}
		return true
	}
	if !sweep(0) {
		res.Exhaustive = false
	}
	if best == nil {
		return nil, fmt.Errorf("gdmopt: budget %d too small to evaluate any vector", budget)
	}
	res.Eval = *best
	return res, nil
}

// canonicalLead returns the canonical representative of a's
// unit-scaling class as a leading coefficient: units collapse to 1,
// non-units stay themselves.
func canonicalLead(a, m int) int {
	if a != 0 && gcd(a, m) == 1 {
		return 1
	}
	return a
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
