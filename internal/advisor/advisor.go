// Package advisor turns the paper's conclusion into a tool. The study
// ends: "information about common queries on a relation ought to be
// used in deciding the declustering for it … since there is no clear
// winner, parallel database systems must support a number of
// declustering methods." Given a description of the expected query
// workload, the advisor evaluates every applicable declustering method
// on it and recommends the best, with the full ranking for inspection.
package advisor

import (
	"fmt"
	"sort"

	"decluster/internal/alloc"
	"decluster/internal/cost"
	"decluster/internal/grid"
	"decluster/internal/query"
)

// WorkloadClass is one component of an expected workload: a query
// workload with a relative weight (how often queries of this class
// run).
type WorkloadClass struct {
	Workload query.Workload
	Weight   float64
}

// Scored is one method's evaluation across the workload mix.
type Scored struct {
	// Method is the method name.
	Method string
	// Score is the weighted mean response time in bucket accesses
	// (lower is better).
	Score float64
	// Ratio is the weighted mean deviation from optimal.
	Ratio float64
	// PerClass holds the per-workload results, in input order.
	PerClass []cost.Result
}

// Recommendation ranks the candidate methods on a workload mix.
type Recommendation struct {
	// Ranking is sorted best (lowest weighted mean RT) first.
	Ranking []Scored
}

// Best returns the winning method name.
func (r *Recommendation) Best() string {
	return r.Ranking[0].Method
}

// DefaultCandidates is the method set the advisor tries when the caller
// does not supply one: the paper's four schemes plus the GDM diagonal
// variant.
var DefaultCandidates = []string{"DM", "GDM", "FX*", "ECC", "HCAM"}

// Recommend evaluates candidate methods (by registry name; nil selects
// DefaultCandidates) over the weighted workload mix on grid g with m
// disks. Methods whose structural preconditions fail (e.g. ECC on a
// non-power-of-two grid) are skipped silently; an error is returned
// only when no candidate applies, the mix is empty, or a weight is not
// positive.
func Recommend(g *grid.Grid, m int, mix []WorkloadClass, candidates []string) (*Recommendation, error) {
	if len(mix) == 0 {
		return nil, fmt.Errorf("advisor: empty workload mix")
	}
	totalWeight := 0.0
	totalQueries := 0
	for i, c := range mix {
		if c.Weight <= 0 {
			return nil, fmt.Errorf("advisor: workload %d (%s) has non-positive weight %v", i, c.Workload.Name, c.Weight)
		}
		totalWeight += c.Weight
		totalQueries += len(c.Workload.Queries)
	}
	if totalQueries == 0 {
		return nil, fmt.Errorf("advisor: workload mix contains no queries")
	}
	if candidates == nil {
		candidates = DefaultCandidates
	}

	var ranking []Scored
	for _, name := range candidates {
		method, err := alloc.Build(name, g, m)
		if err != nil {
			continue // candidate does not apply to this configuration
		}
		s := Scored{Method: name}
		for _, c := range mix {
			res := cost.Evaluate(method, c.Workload)
			s.PerClass = append(s.PerClass, res)
			w := c.Weight / totalWeight
			s.Score += w * res.MeanRT
			s.Ratio += w * res.Ratio
		}
		ranking = append(ranking, s)
	}
	if len(ranking) == 0 {
		return nil, fmt.Errorf("advisor: no candidate method applies to grid %v with %d disks", g, m)
	}
	sort.SliceStable(ranking, func(i, j int) bool { return ranking[i].Score < ranking[j].Score })
	return &Recommendation{Ranking: ranking}, nil
}

// Describe renders the recommendation as prose-plus-ranking suitable
// for CLI output.
func (r *Recommendation) Describe() string {
	out := fmt.Sprintf("recommended method: %s\n", r.Best())
	for i, s := range r.Ranking {
		out += fmt.Sprintf("  %d. %-6s weighted mean RT %.3f buckets (%.3f× optimal)\n",
			i+1, s.Method, s.Score, s.Ratio)
	}
	return out
}
