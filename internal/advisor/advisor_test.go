package advisor

import (
	"strings"
	"testing"

	"decluster/internal/grid"
	"decluster/internal/query"
)

func mixOf(t *testing.T, g *grid.Grid, sides []int, weight float64) WorkloadClass {
	t.Helper()
	qs, err := query.Placements(g, sides, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	return WorkloadClass{
		Workload: query.Workload{Name: "test", Queries: qs},
		Weight:   weight,
	}
}

func TestRecommendValidation(t *testing.T) {
	g := grid.MustNew(16, 16)
	if _, err := Recommend(g, 4, nil, nil); err == nil {
		t.Error("empty mix accepted")
	}
	bad := []WorkloadClass{{Workload: query.Workload{Name: "w"}, Weight: 0}}
	if _, err := Recommend(g, 4, bad, nil); err == nil {
		t.Error("zero weight accepted")
	}
	empty := []WorkloadClass{{Workload: query.Workload{Name: "w"}, Weight: 1}}
	if _, err := Recommend(g, 4, empty, nil); err == nil {
		t.Error("query-less mix accepted")
	}
}

func TestRecommendRanksAllCandidates(t *testing.T) {
	g := grid.MustNew(16, 16)
	mix := []WorkloadClass{mixOf(t, g, []int{2, 2}, 1)}
	rec, err := Recommend(g, 8, mix, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Ranking) != len(DefaultCandidates) {
		t.Fatalf("ranked %d methods, want %d", len(rec.Ranking), len(DefaultCandidates))
	}
	for i := 1; i < len(rec.Ranking); i++ {
		if rec.Ranking[i-1].Score > rec.Ranking[i].Score {
			t.Fatal("ranking not sorted by score")
		}
	}
	if rec.Best() != rec.Ranking[0].Method {
		t.Error("Best() disagrees with ranking head")
	}
}

// Row-query-dominated workloads must elect a modulo-family method (DM
// or GDM) — they are exactly optimal there.
func TestRecommendRowWorkloadElectsModulo(t *testing.T) {
	g := grid.MustNew(16, 16)
	mix := []WorkloadClass{mixOf(t, g, []int{1, 8}, 1)}
	rec, err := Recommend(g, 8, mix, nil)
	if err != nil {
		t.Fatal(err)
	}
	best := rec.Best()
	bestScore := rec.Ranking[0].Score
	// DM must be at (or tied with) the top: score 1.0 = exactly optimal.
	for _, s := range rec.Ranking {
		if s.Method == "DM" && s.Score > bestScore+1e-9 {
			t.Errorf("DM score %.3f not tied-best (%s at %.3f) on row queries", s.Score, best, bestScore)
		}
	}
}

// Small-square-dominated workloads must not elect DM (the paper's
// small-query finding).
func TestRecommendSquareWorkloadRejectsDM(t *testing.T) {
	g := grid.MustNew(64, 64)
	mix := []WorkloadClass{mixOf(t, g, []int{4, 4}, 1)}
	rec, err := Recommend(g, 16, mix, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best() == "DM" {
		t.Error("DM recommended for small squares; contradicts the paper's finding")
	}
}

// Weights matter: a mix dominated by rows flips the recommendation
// toward DM relative to a mix dominated by squares.
func TestRecommendWeightsShiftOutcome(t *testing.T) {
	g := grid.MustNew(64, 64)
	rows := mixOf(t, g, []int{1, 16}, 1)
	squares := mixOf(t, g, []int{4, 4}, 1)

	rowHeavy := []WorkloadClass{
		{Workload: rows.Workload, Weight: 100},
		{Workload: squares.Workload, Weight: 1},
	}
	squareHeavy := []WorkloadClass{
		{Workload: rows.Workload, Weight: 1},
		{Workload: squares.Workload, Weight: 100},
	}
	r1, err := Recommend(g, 16, rowHeavy, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Recommend(g, 16, squareHeavy, nil)
	if err != nil {
		t.Fatal(err)
	}
	var dmRow, dmSquare float64
	for _, s := range r1.Ranking {
		if s.Method == "DM" {
			dmRow = s.Ratio
		}
	}
	for _, s := range r2.Ranking {
		if s.Method == "DM" {
			dmSquare = s.Ratio
		}
	}
	if dmRow >= dmSquare {
		t.Errorf("DM weighted ratio %0.3f (row-heavy) should beat %0.3f (square-heavy)", dmRow, dmSquare)
	}
}

func TestRecommendSkipsInapplicableCandidates(t *testing.T) {
	// Non-power-of-two grid: ECC inapplicable but others rank.
	g := grid.MustNew(12, 12)
	mix := []WorkloadClass{mixOf(t, g, []int{2, 2}, 1)}
	rec, err := Recommend(g, 4, mix, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rec.Ranking {
		if s.Method == "ECC" {
			t.Error("ECC ranked on a non-power-of-two grid")
		}
	}
	if len(rec.Ranking) == 0 {
		t.Fatal("no methods ranked")
	}
}

func TestRecommendNoCandidateApplies(t *testing.T) {
	g := grid.MustNew(12, 12)
	mix := []WorkloadClass{mixOf(t, g, []int{2, 2}, 1)}
	if _, err := Recommend(g, 4, mix, []string{"ECC"}); err == nil {
		t.Error("impossible candidate set accepted")
	}
	if _, err := Recommend(g, 4, mix, []string{"nonsense"}); err == nil {
		t.Error("unknown candidate set accepted")
	}
}

func TestDescribe(t *testing.T) {
	g := grid.MustNew(16, 16)
	mix := []WorkloadClass{mixOf(t, g, []int{2, 2}, 1)}
	rec, err := Recommend(g, 8, mix, []string{"DM", "HCAM"})
	if err != nil {
		t.Fatal(err)
	}
	out := rec.Describe()
	if !strings.Contains(out, "recommended method:") ||
		!strings.Contains(out, "1.") || !strings.Contains(out, "2.") {
		t.Errorf("Describe output malformed:\n%s", out)
	}
}
