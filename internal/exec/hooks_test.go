package exec

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"decluster/internal/datagen"
	"decluster/internal/fault"
	"decluster/internal/replica"
)

// Satellite of the serving PR: WithAvoid must steer a query away from a
// named disk when the failover scheme can route around it — without
// marking the result degraded, since nothing actually failed.
func TestWithAvoidRoutesAroundDisk(t *testing.T) {
	f := newLoadedFile(t, 4, 2000)
	rep, err := replica.NewChained(f.Method())
	if err != nil {
		t.Fatal(err)
	}
	const sick = 1
	e, err := New(f, WithFailover(rep), WithAvoid(func() []int { return []int{sick} }))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := f.Grid().FullRect()
	want, err := plain.RangeSearch(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.RangeSearch(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if got.BucketsPerDisk[sick] != 0 {
		t.Errorf("avoided disk %d still served %d buckets", sick, got.BucketsPerDisk[sick])
	}
	if got.Rerouted == 0 {
		t.Error("no buckets reported rerouted off the avoided disk")
	}
	if got.Degraded {
		t.Error("avoid-only routing reported Degraded")
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("avoided run returned %d records, want %d", len(got.Records), len(want.Records))
	}
	for i := range got.Records {
		if got.Records[i].ID != want.Records[i].ID {
			t.Fatalf("record %d differs under avoidance", i)
		}
	}
}

// Avoidance is advisory: when routing around the avoid set is
// infeasible (here: every disk avoided), the query must fall back to
// reading the avoided disks instead of failing.
func TestWithAvoidFallsBackWhenInfeasible(t *testing.T) {
	f := newLoadedFile(t, 4, 1000)
	rep, err := replica.NewChained(f.Method())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(f, WithFailover(rep), WithAvoid(func() []int { return []int{0, 1, 2, 3} }))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RangeSearch(context.Background(), f.Grid().FullRect())
	if err != nil {
		t.Fatalf("all-disks avoid set failed the query: %v", err)
	}
	if res.Degraded {
		t.Error("fallback run reported Degraded")
	}
	// With true failures present the fallback keeps routing around them
	// even when the extra avoided disks are infeasible to avoid.
	inj, err := fault.New(fault.Config{FailDisks: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(f, WithFailover(rep), WithFaults(inj),
		WithAvoid(func() []int { return []int{0, 1, 3} }))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e2.RangeSearch(context.Background(), f.Grid().FullRect())
	if err != nil {
		t.Fatalf("fallback with real failure errored: %v", err)
	}
	if res2.BucketsPerDisk[2] != 0 {
		t.Errorf("fail-stop disk 2 served %d buckets via fallback", res2.BucketsPerDisk[2])
	}
	if !res2.Degraded {
		t.Error("real failure not reported Degraded")
	}
}

// countingWrapper records every read outcome it observes.
type countingWrapper struct {
	inner   BucketReader
	reads   *atomic.Int64
	errs    *atomic.Int64
	wrapped *atomic.Int64 // wrapper instances created (one per query)
}

func (w *countingWrapper) ReadBucket(ctx context.Context, disk, bucket int) ([]datagen.Record, error) {
	recs, err := w.inner.ReadBucket(ctx, disk, bucket)
	w.reads.Add(1)
	if err != nil {
		w.errs.Add(1)
	}
	return recs, err
}

// WithReadWrapper must sit outside the fault-injection layer — the
// wrapper has to observe injected transient errors, not just the reads
// that survive them — and must be instantiated once per query.
func TestWithReadWrapperObservesInjectedFaults(t *testing.T) {
	f := newLoadedFile(t, 4, 2000)
	inj, err := fault.New(fault.Config{Seed: 11, TransientProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	var reads, errs, wrapped atomic.Int64
	e, err := New(f,
		WithFaults(inj),
		WithRetry(RetryPolicy{MaxAttempts: 12}),
		WithReadWrapper(func(inner BucketReader) BucketReader {
			wrapped.Add(1)
			return &countingWrapper{inner: inner, reads: &reads, errs: &errs, wrapped: &wrapped}
		}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const queries = 3
	var wg sync.WaitGroup
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := e.RangeSearch(ctx, f.Grid().FullRect())
			if err != nil {
				t.Errorf("wrapped query failed: %v", err)
				return
			}
			if res.Retries == 0 {
				t.Error("p=0.3 over 256 buckets produced no retries")
			}
		}()
	}
	wg.Wait()
	if got := wrapped.Load(); got != queries {
		t.Errorf("wrapper instantiated %d times, want once per query (%d)", got, queries)
	}
	if errs.Load() == 0 {
		t.Error("wrapper observed no injected errors — it is not outermost")
	}
	if reads.Load() <= errs.Load() {
		t.Error("wrapper observed no successful reads")
	}
}
