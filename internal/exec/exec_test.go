package exec

import (
	"context"
	"testing"

	"decluster/internal/alloc"
	"decluster/internal/datagen"
	"decluster/internal/grid"
	"decluster/internal/gridfile"
)

func newLoadedFile(t *testing.T, disks, records int) *gridfile.File {
	t.Helper()
	g := grid.MustNew(16, 16)
	m, err := alloc.NewHCAM(g, disks)
	if err != nil {
		t.Fatal(err)
	}
	f, err := gridfile.New(gridfile.Config{Method: m})
	if err != nil {
		t.Fatal(err)
	}
	recs := datagen.Uniform{K: 2, Seed: 5}.Generate(records)
	if err := f.InsertAll(recs); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil file accepted")
	}
	f := newLoadedFile(t, 4, 100)
	if _, err := New(f, WithMaxParallel(-1)); err == nil {
		t.Error("negative parallelism accepted")
	}
}

func TestRangeSearchMatchesSequential(t *testing.T) {
	f := newLoadedFile(t, 4, 2000)
	e, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	g := f.Grid()
	r := g.MustRect(grid.Coord{2, 3}, grid.Coord{9, 12})

	par, err := e.RangeSearch(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := f.CellRangeSearch(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Records) != len(seq.Records) {
		t.Fatalf("parallel %d records, sequential %d", len(par.Records), len(seq.Records))
	}
	// Both orders are (bucket, insertion): must match element-wise.
	for i := range par.Records {
		if par.Records[i].ID != seq.Records[i].ID {
			t.Fatalf("record %d: parallel ID %d, sequential ID %d", i, par.Records[i].ID, seq.Records[i].ID)
		}
	}
}

func TestRangeSearchDeterministicAcrossRuns(t *testing.T) {
	f := newLoadedFile(t, 8, 3000)
	e, _ := New(f)
	r := f.Grid().FullRect()
	first, err := e.RangeSearch(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		again, err := e.RangeSearch(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Records) != len(first.Records) {
			t.Fatal("nondeterministic record count")
		}
		for i := range again.Records {
			if again.Records[i].ID != first.Records[i].ID {
				t.Fatalf("run %d: order diverged at %d", run, i)
			}
		}
	}
}

func TestBucketsPerDiskAccounting(t *testing.T) {
	f := newLoadedFile(t, 4, 2000)
	e, _ := New(f)
	r := f.Grid().FullRect()
	res, err := e.RangeSearch(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := f.CellRangeSearch(r)
	total := 0
	for _, n := range res.BucketsPerDisk {
		total += n
	}
	if total != seq.Trace.BucketsTouched() {
		t.Fatalf("parallel read %d buckets, sequential %d", total, seq.Trace.BucketsTouched())
	}
}

func TestRangeSearchInvalidRect(t *testing.T) {
	f := newLoadedFile(t, 4, 10)
	e, _ := New(f)
	bad := grid.Rect{Lo: grid.Coord{0, 0}, Hi: grid.Coord{16, 16}}
	if _, err := e.RangeSearch(context.Background(), bad); err == nil {
		t.Error("invalid rect accepted")
	}
}

func TestCancellation(t *testing.T) {
	f := newLoadedFile(t, 8, 5000)
	e, _ := New(f)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before start
	if _, err := e.RangeSearch(ctx, f.Grid().FullRect()); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

func TestMaxParallelRespected(t *testing.T) {
	f := newLoadedFile(t, 8, 1000)
	e, err := New(f, WithMaxParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RangeSearch(context.Background(), f.Grid().FullRect())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1000 {
		t.Fatalf("got %d records, want 1000", len(res.Records))
	}
}

func TestRangeSearchValuesFilters(t *testing.T) {
	f := newLoadedFile(t, 4, 3000)
	e, _ := New(f)
	res, err := e.RangeSearchValues(context.Background(), []float64{0.25, 0.25}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no records in a quarter-space query over 3000 uniform records")
	}
	for _, rec := range res.Records {
		for i, v := range rec.Values {
			if v < 0.25 || v > 0.5 {
				t.Fatalf("record %d attr %d = %v outside bounds", rec.ID, i, v)
			}
		}
	}
	// Agrees with the sequential value search.
	seq, err := f.RangeSearch([]float64{0.25, 0.25}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(seq.Records) {
		t.Fatalf("parallel %d records, sequential %d", len(res.Records), len(seq.Records))
	}
}

func TestRangeSearchValuesValidation(t *testing.T) {
	f := newLoadedFile(t, 4, 10)
	e, _ := New(f)
	ctx := context.Background()
	if _, err := e.RangeSearchValues(ctx, []float64{0.5}, []float64{0.9}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := e.RangeSearchValues(ctx, []float64{0.9, 0}, []float64{0.1, 0.5}); err == nil {
		t.Error("inverted bounds accepted")
	}
}
