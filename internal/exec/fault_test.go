package exec

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"decluster/internal/alloc"
	"decluster/internal/datagen"
	"decluster/internal/fault"
	"decluster/internal/grid"
	"decluster/internal/replica"
)

// Satellite: inverted rectangles must be rejected with a descriptive
// error instead of silently iterating a wrong bucket set.
func TestRectOrientationValidated(t *testing.T) {
	f := newLoadedFile(t, 4, 100)
	e, _ := New(f)
	bad := grid.Rect{Lo: grid.Coord{5, 5}, Hi: grid.Coord{2, 8}}
	_, err := e.RangeSearch(context.Background(), bad)
	if err == nil {
		t.Fatal("inverted rect accepted")
	}
	if !strings.Contains(err.Error(), "inverted") || !strings.Contains(err.Error(), "axis 0") {
		t.Errorf("error not descriptive: %v", err)
	}
	// Mismatched corner arities are caught before orientation.
	if _, err := e.RangeSearch(context.Background(), grid.Rect{Lo: grid.Coord{1}, Hi: grid.Coord{2, 3}}); err == nil {
		t.Error("mismatched corner arity accepted")
	}
}

// blockingReader blocks every read until the context is cancelled,
// signalling the first read so the test can cancel mid-scan.
type blockingReader struct {
	started chan struct{}
	once    atomic.Bool
	reads   atomic.Int64
}

func (r *blockingReader) ReadBucket(ctx context.Context, disk, bucket int) ([]datagen.Record, error) {
	r.reads.Add(1)
	if r.once.CompareAndSwap(false, true) {
		close(r.started)
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

// Satellite: cancelling mid-scan must return ctx.Err() and terminate
// all workers promptly — siblings must not scan to completion.
func TestCancellationPropagatesPromptly(t *testing.T) {
	f := newLoadedFile(t, 8, 5000) // 256 buckets, all occupied w.h.p.
	br := &blockingReader{started: make(chan struct{})}
	e, err := New(f, WithBucketReader(br))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan error, 1)
	go func() {
		_, err := e.RangeSearch(ctx, f.Grid().FullRect())
		done <- err
	}()
	<-br.started
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RangeSearch did not terminate promptly after cancellation")
	}
	// Each of the 8 workers was at most one read deep when cancelled;
	// nothing may keep scanning the remaining ~256 buckets.
	if n := br.reads.Load(); n > 8 {
		t.Errorf("%d reads issued after cancellation; workers did not stop promptly", n)
	}
}

// A worker hitting a terminal error must cancel its siblings instead of
// letting them scan to completion.
type failOnceReader struct {
	inner BucketReader
	reads atomic.Int64
}

func (r *failOnceReader) ReadBucket(ctx context.Context, disk, bucket int) ([]datagen.Record, error) {
	if r.reads.Add(1) == 1 {
		return nil, errors.New("media error") // permanent: not transient
	}
	// Subsequent reads take long enough that a full no-cancel scan of
	// hundreds of buckets would trip the test's budget.
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(2 * time.Millisecond):
	}
	return r.inner.ReadBucket(ctx, disk, bucket)
}

func TestWorkerErrorCancelsSiblings(t *testing.T) {
	f := newLoadedFile(t, 8, 5000)
	fr := &failOnceReader{inner: fileReader{f: f}}
	e, _ := New(f, WithBucketReader(fr))
	start := time.Now()
	_, err := e.RangeSearch(context.Background(), f.Grid().FullRect())
	if err == nil || !strings.Contains(err.Error(), "media error") {
		t.Fatalf("got %v, want the media error", err)
	}
	// 256 buckets × 2ms serially would be ~0.5s; prompt cancellation
	// finishes in a few milliseconds.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("query ran %v after a terminal error; siblings were not cancelled", elapsed)
	}
}

// Without replication, a fail-stop disk makes affected queries return a
// typed unavailability error — never wrong partial results.
func TestFailStopUnreplicatedReturnsUnavailable(t *testing.T) {
	f := newLoadedFile(t, 4, 2000)
	inj, err := fault.New(fault.Config{Seed: 1, FailDisks: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(f, WithFaults(inj))
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.RangeSearch(context.Background(), f.Grid().FullRect())
	if !errors.Is(err, fault.ErrUnavailable) {
		t.Fatalf("got %v, want ErrUnavailable", err)
	}
	var ue *fault.UnavailableError
	if !errors.As(err, &ue) {
		t.Fatal("error is not a *fault.UnavailableError")
	}
	if len(ue.Buckets) == 0 || len(ue.FailedDisks) != 1 || ue.FailedDisks[0] != 2 {
		t.Fatalf("unavailability details wrong: %+v", ue)
	}
	g := f.Grid()
	method := f.Method()
	for _, b := range ue.Buckets {
		if d := method.DiskOf(g.Delinearize(b, nil)); d != 2 {
			t.Fatalf("bucket %d reported unreachable but lives on healthy disk %d", b, d)
		}
	}
	// A query that avoids the failed disk's buckets still succeeds.
	inj2, _ := fault.New(fault.Config{FailDisks: []int{3}})
	e2, _ := New(f, WithFaults(inj2))
	g2 := f.Grid()
	var safe *grid.Rect
	grid.EachRect(g2.FullRect(), func(c grid.Coord) bool {
		if method.DiskOf(c) != 3 {
			r := g2.MustRect(c.Clone(), c.Clone())
			safe = &r
			return false
		}
		return true
	})
	if safe == nil {
		t.Fatal("no bucket off disk 3")
	}
	res, err := e2.RangeSearch(context.Background(), *safe)
	if err != nil {
		t.Fatalf("query avoiding the failed disk errored: %v", err)
	}
	if !res.Degraded {
		t.Error("result not marked degraded while a disk is down")
	}
}

// Acceptance: with one disk of M failed under chained replication, the
// query completes with exactly the fault-free results, reads nothing
// from the failed disk, and keeps the degraded busiest-disk load within
// 2× of the fault-free load.
func TestFailoverCompletesCorrectly(t *testing.T) {
	f := newLoadedFile(t, 8, 4000)
	rep, err := replica.NewChained(f.Method())
	if err != nil {
		t.Fatal(err)
	}
	q := f.Grid().MustRect(grid.Coord{1, 1}, grid.Coord{12, 13})

	healthyExec, _ := New(f)
	healthy, err := healthyExec.RangeSearch(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}

	const failedDisk = 3
	inj, _ := fault.New(fault.Config{Seed: 9, FailDisks: []int{failedDisk}})
	e, err := New(f, WithFaults(inj), WithFailover(rep))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RangeSearch(context.Background(), q)
	if err != nil {
		t.Fatalf("failover query errored: %v", err)
	}
	if !res.Degraded {
		t.Error("result not marked degraded")
	}
	if res.Rerouted == 0 {
		t.Error("no buckets rerouted although the failed disk held part of the query")
	}
	if res.BucketsPerDisk[failedDisk] != 0 {
		t.Fatalf("%d buckets read from the failed disk", res.BucketsPerDisk[failedDisk])
	}
	if len(res.Records) != len(healthy.Records) {
		t.Fatalf("degraded run returned %d records, fault-free %d", len(res.Records), len(healthy.Records))
	}
	for i := range res.Records {
		if res.Records[i].ID != healthy.Records[i].ID {
			t.Fatalf("degraded record order diverges at %d", i)
		}
	}
	maxLoad := func(loads []int) int {
		m := 0
		for _, l := range loads {
			if l > m {
				m = l
			}
		}
		return m
	}
	if deg, ok := maxLoad(res.BucketsPerDisk), maxLoad(healthy.BucketsPerDisk); deg > 2*ok {
		t.Errorf("degraded busiest-disk load %d exceeds 2× fault-free %d", deg, ok)
	}
}

// Both replicas of a bucket failed: failover must surface typed
// unavailability, not partial results.
func TestFailoverBothReplicasDown(t *testing.T) {
	f := newLoadedFile(t, 8, 1000)
	rep, _ := replica.NewChained(f.Method()) // backup = primary+1 mod 8
	inj, _ := fault.New(fault.Config{FailDisks: []int{0, 1}})
	e, _ := New(f, WithFaults(inj), WithFailover(rep))
	_, err := e.RangeSearch(context.Background(), f.Grid().FullRect())
	if !errors.Is(err, fault.ErrUnavailable) {
		t.Fatalf("got %v, want ErrUnavailable", err)
	}
}

// Acceptance: injected transient read errors are retried to success
// deterministically under a fixed seed.
func TestTransientRetriesDeterministic(t *testing.T) {
	f := newLoadedFile(t, 4, 2000)
	q := f.Grid().MustRect(grid.Coord{2, 2}, grid.Coord{11, 11})
	plain, _ := New(f)
	want, err := plain.RangeSearch(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}

	run := func() *Result {
		t.Helper()
		inj, err := fault.New(fault.Config{Seed: 77, TransientProb: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(f, WithFaults(inj), WithRetry(RetryPolicy{MaxAttempts: 10}))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RangeSearch(context.Background(), q)
		if err != nil {
			t.Fatalf("retried query errored: %v", err)
		}
		return res
	}
	first := run()
	if first.Retries == 0 {
		t.Fatal("no retries recorded at 40% transient probability")
	}
	if len(first.Records) != len(want.Records) {
		t.Fatalf("faulty run returned %d records, fault-free %d", len(first.Records), len(want.Records))
	}
	for i := range first.Records {
		if first.Records[i].ID != want.Records[i].ID {
			t.Fatalf("record order diverges at %d", i)
		}
	}
	second := run()
	if second.Retries != first.Retries {
		t.Fatalf("retry counts differ across identical seeded runs: %d vs %d", first.Retries, second.Retries)
	}
}

// Fault-injection attempt counters are scoped per query, so a query's
// injected fault sequence (and hence its retry count) is independent of
// whatever queries ran before it on the same Executor.
func TestTransientFaultsIndependentOfQueryHistory(t *testing.T) {
	f := newLoadedFile(t, 4, 2000)
	ctx := context.Background()
	qA := f.Grid().MustRect(grid.Coord{0, 0}, grid.Coord{7, 7})
	qB := f.Grid().MustRect(grid.Coord{4, 4}, grid.Coord{11, 11}) // overlaps qA's buckets
	newExec := func() *Executor {
		t.Helper()
		inj, err := fault.New(fault.Config{Seed: 77, TransientProb: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(f, WithFaults(inj), WithRetry(RetryPolicy{MaxAttempts: 10}))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	want, err := newExec().RangeSearch(ctx, qB)
	if err != nil {
		t.Fatal(err)
	}
	if want.Retries == 0 {
		t.Fatal("no retries recorded at 40% transient probability")
	}
	warmed := newExec()
	if _, err := warmed.RangeSearch(ctx, qA); err != nil {
		t.Fatal(err)
	}
	got, err := warmed.RangeSearch(ctx, qB)
	if err != nil {
		t.Fatal(err)
	}
	if got.Retries != want.Retries {
		t.Fatalf("query history changed the fault sequence: %d retries after a prior query, %d on a fresh executor",
			got.Retries, want.Retries)
	}
}

// Exhausted retries surface the transient error.
func TestTransientRetriesExhausted(t *testing.T) {
	f := newLoadedFile(t, 4, 2000)
	inj, _ := fault.New(fault.Config{Seed: 5, TransientProb: 0.9})
	e, _ := New(f, WithFaults(inj), WithRetry(RetryPolicy{MaxAttempts: 1}))
	_, err := e.RangeSearch(context.Background(), f.Grid().FullRect())
	if !errors.Is(err, fault.ErrTransient) {
		t.Fatalf("got %v, want a transient error after exhausted retries", err)
	}
}

// The per-query deadline bounds wall-clock time.
func TestQueryDeadline(t *testing.T) {
	f := newLoadedFile(t, 4, 1000)
	br := &blockingReader{started: make(chan struct{})}
	e, err := New(f, WithBucketReader(br), WithDeadline(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = e.RangeSearch(context.Background(), f.Grid().FullRect())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("deadline did not bound the query promptly")
	}
}

// Retry backoff must abort immediately when the context dies mid-wait.
func TestRetryBackoffHonoursCancellation(t *testing.T) {
	f := newLoadedFile(t, 4, 1000)
	inj, _ := fault.New(fault.Config{Seed: 5, TransientProb: 0.9})
	e, _ := New(f, WithFaults(inj),
		WithRetry(RetryPolicy{MaxAttempts: 1000, BaseBackoff: time.Hour, MaxBackoff: time.Hour}),
		WithDeadline(20*time.Millisecond))
	start := time.Now()
	_, err := e.RangeSearch(context.Background(), f.Grid().FullRect())
	if err == nil {
		t.Fatal("expected an error")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("hour-long backoff was not interrupted by the deadline")
	}
}

// Option validation.
func TestFaultOptionValidation(t *testing.T) {
	f := newLoadedFile(t, 4, 10)
	if _, err := New(f, WithRetry(RetryPolicy{MaxAttempts: -1})); err == nil {
		t.Error("negative retry attempts accepted")
	}
	if _, err := New(f, WithRetry(RetryPolicy{BaseBackoff: -time.Second})); err == nil {
		t.Error("negative backoff accepted")
	}
	if _, err := New(f, WithDeadline(-time.Second)); err == nil {
		t.Error("negative deadline accepted")
	}
	// A replica over a different configuration must be rejected.
	other := grid.MustNew(8, 8)
	om, _ := alloc.NewDM(other, 4)
	orep, _ := replica.NewChained(om)
	if _, err := New(f, WithFailover(orep)); err == nil {
		t.Error("mismatched failover replica accepted")
	}
	// Same grid shape and disk count but a different allocation method:
	// shape checks pass, so the per-bucket primary table must catch it.
	dm, _ := alloc.NewDM(f.Grid(), f.Disks()) // file uses HCAM
	dmrep, _ := replica.NewChained(dm)
	if _, err := New(f, WithFailover(dmrep)); err == nil {
		t.Error("failover replica over a different allocation method accepted")
	}
	// The matching replica stays accepted.
	rep, _ := replica.NewChained(f.Method())
	if _, err := New(f, WithFailover(rep)); err != nil {
		t.Errorf("matching failover replica rejected: %v", err)
	}
}

// DefaultRetry is sane.
func TestDefaultRetry(t *testing.T) {
	p := DefaultRetry()
	if p.MaxAttempts < 2 || p.BaseBackoff <= 0 || p.MaxBackoff < p.BaseBackoff {
		t.Errorf("DefaultRetry %+v malformed", p)
	}
}
