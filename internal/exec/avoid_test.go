package exec

import (
	"context"
	"sync"
	"testing"

	"decluster/internal/datagen"
	"decluster/internal/fault"
	"decluster/internal/replica"
)

// Satellite of the repair PR: the infeasible-fallback path of WithAvoid
// with a *partial* avoid set. Under chained replication on 4 disks a
// bucket whose primary is disk 1 has its backup on disk 2, so avoiding
// {1, 2} leaves that bucket with no un-avoided replica even though two
// healthy disks remain. The router must notice the infeasibility and
// fall back to mandatory-failures-only routing rather than failing the
// query.
func TestWithAvoidPartialSetInfeasible(t *testing.T) {
	f := newLoadedFile(t, 4, 2000)
	rep, err := replica.NewChained(f.Method())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := f.Grid().FullRect()
	plain, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.RangeSearch(ctx, q)
	if err != nil {
		t.Fatal(err)
	}

	// No real failures: the fallback abandons avoidance entirely and
	// routes every bucket to its primary.
	e, err := New(f, WithFailover(rep), WithAvoid(func() []int { return []int{1, 2} }))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RangeSearch(ctx, q)
	if err != nil {
		t.Fatalf("partial infeasible avoid set failed the query: %v", err)
	}
	if res.Degraded {
		t.Error("avoid-only fallback reported Degraded")
	}
	if res.Rerouted != 0 {
		t.Errorf("primary-routing fallback reported %d rerouted buckets", res.Rerouted)
	}
	for d := 1; d <= 2; d++ {
		if res.BucketsPerDisk[d] == 0 {
			t.Errorf("fallback did not read avoided disk %d (its buckets are unreachable elsewhere)", d)
		}
	}
	if len(res.Records) != len(want.Records) {
		t.Fatalf("fallback returned %d records, want %d", len(res.Records), len(want.Records))
	}
	for i := range res.Records {
		if res.Records[i].ID != want.Records[i].ID {
			t.Fatalf("record %d differs under infeasible partial avoidance", i)
		}
	}

	// With a real failure alongside the infeasible avoid set, the
	// fallback must still route around the failed disk — mandatory
	// failures survive the retry even when advisory avoidance cannot.
	inj, err := fault.New(fault.Config{FailDisks: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(f, WithFailover(rep), WithFaults(inj),
		WithAvoid(func() []int { return []int{1, 2} }))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e2.RangeSearch(ctx, q)
	if err != nil {
		t.Fatalf("fallback with real failure errored: %v", err)
	}
	if res2.BucketsPerDisk[3] != 0 {
		t.Errorf("fail-stop disk 3 served %d buckets", res2.BucketsPerDisk[3])
	}
	if !res2.Degraded {
		t.Error("real failure not reported Degraded")
	}
	if len(res2.Records) != len(want.Records) {
		t.Fatalf("degraded fallback returned %d records, want %d", len(res2.Records), len(want.Records))
	}
}

// taggingReader appends its tag to a shared order slice on each read,
// recording which wrapper layer ran first.
type taggingReader struct {
	inner BucketReader
	tag   string
	mu    *sync.Mutex
	order *[]string
}

func (r taggingReader) ReadBucket(ctx context.Context, disk, bucket int) ([]datagen.Record, error) {
	r.mu.Lock()
	*r.order = append(*r.order, r.tag)
	r.mu.Unlock()
	return r.inner.ReadBucket(ctx, disk, bucket)
}

// Multiple WithReadWrapper options compose, later options outermost: a
// read enters the last-added wrapper first.
func TestWithReadWrapperComposes(t *testing.T) {
	f := newLoadedFile(t, 4, 200)
	var mu sync.Mutex
	var order []string
	e, err := New(f, WithMaxParallel(1),
		WithReadWrapper(func(inner BucketReader) BucketReader {
			return taggingReader{inner: inner, tag: "inner", mu: &mu, order: &order}
		}),
		WithReadWrapper(func(inner BucketReader) BucketReader {
			return taggingReader{inner: inner, tag: "outer", mu: &mu, order: &order}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RangeSearch(context.Background(), f.Grid().FullRect()); err != nil {
		t.Fatal(err)
	}
	if len(order) < 2 || len(order)%2 != 0 {
		t.Fatalf("tag trace has %d entries, want an even number ≥ 2", len(order))
	}
	for i := 0; i < len(order); i += 2 {
		if order[i] != "outer" || order[i+1] != "inner" {
			t.Fatalf("wrapper order at read %d = [%s %s], want [outer inner]", i/2, order[i], order[i+1])
		}
	}
}
