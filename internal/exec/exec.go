// Package exec executes grid-file searches with real concurrency: one
// worker goroutine per disk, each reading the buckets its disk holds,
// exactly the fan-out a parallel I/O subsystem performs. The disksim
// package *models* time; this package actually parallelizes the work,
// so library users get a drop-in concurrent scan whose speedup follows
// the declustering quality the study measures.
//
// The executor is fault-aware: reads go through a pluggable
// BucketReader that may return errors, transient errors are retried
// with capped exponential backoff, a per-query deadline bounds total
// latency, and — when a replica scheme is attached — buckets on
// fail-stop disks are rerouted to their backups with the degraded load
// rebalanced by the exact min-makespan schedule. Without replication, a
// failed disk makes the affected queries return a typed
// *fault.UnavailableError instead of silently wrong results.
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"decluster/internal/alloc"
	"decluster/internal/datagen"
	"decluster/internal/fault"
	"decluster/internal/grid"
	"decluster/internal/gridfile"
	"decluster/internal/obs"
	"decluster/internal/replica"
)

// RetryPolicy bounds per-read retries of transient errors.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per bucket read,
	// including the first (minimum 1; 0 selects 1).
	MaxAttempts int
	// BaseBackoff is the wait before the first retry; each further
	// retry doubles it. Zero disables sleeping (retry immediately).
	BaseBackoff time.Duration
	// MaxBackoff caps the doubled backoff (0 = uncapped).
	MaxBackoff time.Duration
}

// DefaultRetry is a policy suited to the transient faults the injector
// models: up to 5 attempts with 1ms → 8ms exponential backoff.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond}
}

// Executor runs searches over a grid file with per-disk parallelism.
type Executor struct {
	file *gridfile.File
	// maxParallel bounds concurrently running disk workers; 0 means one
	// worker per disk.
	maxParallel int
	// reader serves bucket reads (default: the grid file itself).
	reader BucketReader
	// inj optionally injects faults into routing and reads.
	inj *fault.Injector
	// retry bounds transient-error retries.
	retry RetryPolicy
	// deadline bounds each query's wall-clock time (0 = none).
	deadline time.Duration
	// failover optionally reroutes buckets around failed disks.
	failover *replica.Replicated
	// avoid optionally names extra disks to route around (e.g. disks a
	// circuit breaker holds open); consulted once per query.
	avoid func() []int
	// wraps optionally wrap each query's reader, applied in option
	// order with later wrappers outermost — all after the fault layer,
	// so every wrapper observes injected errors.
	wraps []func(BucketReader) BucketReader
	// obs optionally receives metrics and traces; metrics is its
	// pre-resolved handle struct, nil when disabled, so the hot path
	// pays one pointer comparison per site.
	obs     *obs.Sink
	metrics *execMetrics
}

// execMetrics holds the executor's pre-resolved metric handles. Every
// counter the conservation test sums is registered here at
// construction — not lazily — so the metric name set is deterministic
// regardless of which events fire.
type execMetrics struct {
	queries, queriesOK, queriesErr *obs.Counter
	degraded, rerouted             *obs.Counter
	// Read accounting, exact by construction:
	//   attempts == attemptsOK + attemptsErr + retried
	//   calls    == callsOK + callsErr + cancelled
	calls, callsOK, callsErr, cancelled *obs.Counter
	attempts, attemptsOK, attemptsErr   *obs.Counter
	retried                             *obs.Counter
	diskAttempts                        *obs.CounterFamily
	diskLatency                         *obs.HistogramFamily
}

// newExecMetrics registers the executor's metric set for disks disks.
func newExecMetrics(r *obs.Registry, disks int) *execMetrics {
	if r == nil {
		return nil
	}
	return &execMetrics{
		queries:      r.Counter("exec.queries"),
		queriesOK:    r.Counter("exec.queries.ok"),
		queriesErr:   r.Counter("exec.queries.err"),
		degraded:     r.Counter("exec.queries.degraded"),
		rerouted:     r.Counter("exec.buckets.rerouted"),
		calls:        r.Counter("exec.read.calls"),
		callsOK:      r.Counter("exec.read.calls.ok"),
		callsErr:     r.Counter("exec.read.calls.err"),
		cancelled:    r.Counter("exec.read.calls.cancelled"),
		attempts:     r.Counter("exec.read.attempts"),
		attemptsOK:   r.Counter("exec.read.attempts.ok"),
		attemptsErr:  r.Counter("exec.read.attempts.err"),
		retried:      r.Counter("exec.read.attempts.retried"),
		diskAttempts: r.CounterFamily("exec.disk.read.attempts", "disk", disks),
		diskLatency:  r.HistogramFamily("exec.disk.read.latency", "disk", disks),
	}
}

// readTally accumulates one disk worker's hot-path counter deltas as
// plain integers so the read loop pays no contended atomics — sixteen
// workers hammering the same shared counters serialize on cache lines
// and cost ~20% of a range search. The worker flushes once when it
// finishes, before the query completes, so every post-query read of
// the registry still sees exact conservation; only a mid-query scrape
// can observe the deltas in flight (already true of any multi-counter
// update).
type readTally struct {
	calls, callsOK, callsErr, cancelled uint64
	attempts, attemptsOK, attemptsErr   uint64
	retried                             uint64
}

// flush folds one worker's tally into the shared counters: eight
// atomic adds per worker per query instead of five per bucket read.
func (m *execMetrics) flush(disk int, t *readTally) {
	if m == nil || t == nil {
		return
	}
	m.calls.Add(t.calls)
	m.callsOK.Add(t.callsOK)
	m.callsErr.Add(t.callsErr)
	m.cancelled.Add(t.cancelled)
	m.attempts.Add(t.attempts)
	m.attemptsOK.Add(t.attemptsOK)
	m.attemptsErr.Add(t.attemptsErr)
	m.retried.Add(t.retried)
	m.diskAttempts.At(disk).Add(t.attempts)
}

// Option configures an Executor.
type Option func(*Executor)

// WithMaxParallel bounds the number of disk workers running at once —
// useful when simulating fewer I/O channels than disks.
func WithMaxParallel(n int) Option {
	return func(e *Executor) { e.maxParallel = n }
}

// WithBucketReader replaces the default grid-file reader. The reader
// must be safe for concurrent use.
func WithBucketReader(r BucketReader) Option {
	return func(e *Executor) { e.reader = r }
}

// WithFaults attaches a fault injector: fail-stop disks affect routing
// (failover or unavailability) and every read may transiently error
// per the injector's probability.
func WithFaults(inj *fault.Injector) Option {
	return func(e *Executor) { e.inj = inj }
}

// WithRetry sets the transient-error retry policy (default: one
// attempt, no retries).
func WithRetry(p RetryPolicy) Option {
	return func(e *Executor) { e.retry = p }
}

// WithDeadline bounds each query's wall-clock time; an exceeded
// deadline returns context.DeadlineExceeded.
func WithDeadline(d time.Duration) Option {
	return func(e *Executor) { e.deadline = d }
}

// WithFailover attaches a replica scheme for degraded routing: buckets
// whose primary disk is fail-stop are served from their backup, with
// the whole query re-scheduled to minimize the busiest surviving disk.
func WithFailover(r *replica.Replicated) Option {
	return func(e *Executor) { e.failover = r }
}

// WithAvoid registers a callback naming extra disks the router should
// treat as out of service *when a failover replica scheme can route
// around them* — the hook a circuit breaker uses to steer queries away
// from a sick-but-alive disk. The callback is consulted once per query.
// Unlike fail-stop disks, avoided disks are advisory: if avoiding them
// would leave some bucket with no replica (or no failover scheme is
// attached), the query falls back to reading them anyway rather than
// failing.
func WithAvoid(fn func() []int) Option {
	return func(e *Executor) { e.avoid = fn }
}

// WithObserver attaches an observability sink: the executor registers
// per-disk read counters and latency histograms in its registry and —
// when the sink traces and the caller put a query span in the context —
// records per-disk and per-attempt read spans. A nil sink disables
// everything at the cost of one branch per instrumented site.
func WithObserver(s *obs.Sink) Option {
	return func(e *Executor) { e.obs = s }
}

// WithReadWrapper wraps each query's bucket reader with fn, applied
// outside the per-query fault-injection layer so it observes every read
// the query issues, including injected errors — which is what a health
// tracker, hedging layer, or read-repairer needs. The option composes:
// given several wrappers, each is applied in option order with later
// wrappers outermost (a health observer added after a read-repairer
// sees the repaired, error-free reads). fn is called once per query and
// must return a reader safe for concurrent use by that query's disk
// workers.
func WithReadWrapper(fn func(BucketReader) BucketReader) Option {
	return func(e *Executor) { e.wraps = append(e.wraps, fn) }
}

// New constructs an executor over the file.
func New(f *gridfile.File, opts ...Option) (*Executor, error) {
	if f == nil {
		return nil, fmt.Errorf("exec: nil grid file")
	}
	e := &Executor{file: f}
	for _, opt := range opts {
		opt(e)
	}
	if e.maxParallel < 0 {
		return nil, fmt.Errorf("exec: negative parallelism %d", e.maxParallel)
	}
	if e.retry.MaxAttempts < 0 {
		return nil, fmt.Errorf("exec: negative retry attempts %d", e.retry.MaxAttempts)
	}
	if e.retry.BaseBackoff < 0 || e.retry.MaxBackoff < 0 {
		return nil, fmt.Errorf("exec: negative retry backoff")
	}
	if e.deadline < 0 {
		return nil, fmt.Errorf("exec: negative deadline %v", e.deadline)
	}
	if e.failover != nil {
		fg, g := e.failover.Grid(), f.Grid()
		if e.failover.Disks() != f.Disks() || fg.Buckets() != g.Buckets() || fg.K() != g.K() {
			return nil, fmt.Errorf("exec: failover replica on %v/%d disks does not match file %v/%d disks",
				fg, e.failover.Disks(), g, f.Disks())
		}
		// Shape alone is not enough: a replica built over a different
		// allocation method routes buckets to the wrong disks, skewing
		// Rerouted counts and degraded-load accounting even when a
		// disk-agnostic reader happens to return correct records.
		for b, d := range alloc.Table(f.Method()) {
			if e.failover.PrimaryOf(b) != d {
				return nil, fmt.Errorf("exec: failover replica allocation differs from file method %s at bucket %d (primary %d, file disk %d)",
					f.Method().Name(), b, e.failover.PrimaryOf(b), d)
			}
		}
	}
	if e.reader == nil {
		e.reader = fileReader{f: f}
	}
	if e.obs != nil {
		e.metrics = newExecMetrics(e.obs.Registry(), f.Disks())
	}
	return e, nil
}

// queryReader returns the BucketReader one query should read through:
// the configured reader, wrapped — per query, so attempt counters start
// fresh and one query's injected faults are independent of every other
// query past or concurrent — in the fault injector when present, and
// finally in the WithReadWrapper hooks, in option order with later
// wrappers outermost, so observers and hedgers see injected faults too.
func (e *Executor) queryReader() BucketReader {
	r := e.reader
	if e.inj != nil {
		r = newFaultReader(r, e.inj)
	}
	for _, wrap := range e.wraps {
		r = wrap(r)
	}
	return r
}

// Result is the outcome of a parallel search.
type Result struct {
	// Records are the qualifying records, in deterministic (bucket,
	// insertion) order regardless of worker scheduling.
	Records []datagen.Record
	// BucketsPerDisk counts buckets each worker read.
	BucketsPerDisk []int
	// Retries counts transient read errors that were retried to
	// success.
	Retries int
	// Rerouted counts buckets served from a backup replica because
	// their primary disk was fail-stop.
	Rerouted int
	// Degraded reports whether any fail-stop disk affected routing.
	Degraded bool
}

// bucketRecs is one bucket's payload as collected by a disk worker.
type bucketRecs struct {
	bucket int
	recs   []datagen.Record
}

// RangeSearch reads every bucket of the cell rectangle r concurrently,
// one worker per disk, honouring ctx cancellation and the configured
// deadline. The first worker error cancels all siblings promptly.
// Results are merged into deterministic order.
func (e *Executor) RangeSearch(ctx context.Context, r grid.Rect) (*Result, error) {
	g := e.file.Grid()
	if len(r.Lo) != g.K() || len(r.Hi) != g.K() {
		return nil, fmt.Errorf("exec: rect %v has %d..%d axes for %d-attribute grid %v",
			r, len(r.Lo), len(r.Hi), g.K(), g)
	}
	for i := range r.Lo {
		if r.Lo[i] > r.Hi[i] {
			return nil, fmt.Errorf("exec: rect %v inverted on axis %d (Lo %d > Hi %d)", r, i, r.Lo[i], r.Hi[i])
		}
	}
	if !g.Contains(r.Lo) || !g.Contains(r.Hi) {
		return nil, fmt.Errorf("exec: rect %v outside grid %v", r, g)
	}
	return e.run(ctx, func() ([][]int, int, bool, error) { return e.route(r) })
}

// RangeSearchBuckets reads an explicit set of row-major bucket numbers
// with the same machinery as RangeSearch: per-disk workers, retries,
// deadline, breaker avoidance, and degraded failover routing. It is
// the physical entry point of the batch engine, whose deduped read
// plans are bucket sets rather than rectangles. Buckets must be
// distinct (a deduped plan never repeats one, and rejecting repeats
// keeps the merged record order deterministic); records come back in
// (bucket, insertion) order exactly as a rectangle covering the same
// buckets would return them.
func (e *Executor) RangeSearchBuckets(ctx context.Context, buckets []int) (*Result, error) {
	n := e.file.Grid().Buckets()
	seen := make(map[int]bool, len(buckets))
	for _, b := range buckets {
		if b < 0 || b >= n {
			return nil, fmt.Errorf("exec: bucket %d outside [0,%d)", b, n)
		}
		if seen[b] {
			return nil, fmt.Errorf("exec: duplicate bucket %d in read set", b)
		}
		seen[b] = true
	}
	return e.run(ctx, func() ([][]int, int, bool, error) { return e.routeBuckets(buckets) })
}

// run executes one already-validated query: route partitions the work
// into per-disk bucket lists, then one worker per disk reads its list
// honouring ctx and the configured deadline, and the results merge
// into deterministic (bucket, insertion) order.
func (e *Executor) run(ctx context.Context, route func() ([][]int, int, bool, error)) (*Result, error) {
	// Past validation every query ends in exactly one of queriesOK /
	// queriesErr, so exec.queries == exec.queries.ok + exec.queries.err.
	m := e.metrics
	if m != nil {
		m.queries.Inc()
	}
	var qsp *obs.Span
	if e.obs.Tracing() {
		qsp = obs.SpanFromContext(ctx)
	}

	if e.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.deadline)
		defer cancel()
	}
	// Derive a cancellable context so the first failing worker stops
	// every sibling promptly instead of letting them scan to completion.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	perDisk, rerouted, degraded, err := route()
	if err != nil {
		if m != nil {
			m.queriesErr.Inc()
		}
		return nil, err
	}

	limit := e.maxParallel
	if limit == 0 || limit > len(perDisk) {
		limit = len(perDisk)
	}
	if limit > runtime.NumCPU()*4 {
		limit = runtime.NumCPU() * 4
	}
	if limit < 1 {
		limit = 1
	}

	reader := e.queryReader()
	results := make([][]bucketRecs, e.file.Disks())
	retries := make([]int, e.file.Disks())
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel() // stop sibling workers promptly
		})
	}

	for d, buckets := range perDisk {
		if len(buckets) == 0 {
			continue
		}
		wg.Add(1)
		go func(d int, buckets []int) {
			defer wg.Done()
			var dsp *obs.Span
			if qsp != nil {
				dsp = qsp.Child(fmt.Sprintf("disk %d", d))
				defer dsp.Finish()
			}
			var tally *readTally
			if m != nil {
				tally = new(readTally)
				defer m.flush(d, tally)
			}
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				dsp.FinishErr(ctx.Err())
				fail(ctx.Err())
				return
			}
			var out []bucketRecs
			for _, b := range buckets {
				if err := ctx.Err(); err != nil {
					dsp.FinishErr(err)
					fail(err)
					return
				}
				if e.file.BucketLen(b) == 0 {
					continue // the grid directory knows the bucket is empty
				}
				recs, tries, err := e.readWithRetry(ctx, reader, dsp, tally, d, b)
				retries[d] += tries
				if err != nil {
					dsp.FinishErr(err)
					fail(err)
					return
				}
				out = append(out, bucketRecs{bucket: b, recs: recs})
			}
			results[d] = out
		}(d, buckets)
	}
	wg.Wait()
	if firstErr != nil {
		if m != nil {
			m.queriesErr.Inc()
		}
		return nil, firstErr
	}
	if m != nil {
		m.queriesOK.Inc()
		if degraded {
			m.degraded.Inc()
		}
		m.rerouted.Add(uint64(rerouted))
	}

	out := &Result{
		BucketsPerDisk: make([]int, e.file.Disks()),
		Rerouted:       rerouted,
		Degraded:       degraded,
	}
	var all []bucketRecs
	for d, brs := range results {
		out.BucketsPerDisk[d] = len(brs)
		out.Retries += retries[d]
		all = append(all, brs...)
	}
	// Deterministic merge: records ordered by (bucket of origin,
	// insertion order) regardless of worker scheduling.
	sort.Slice(all, func(i, j int) bool { return all[i].bucket < all[j].bucket })
	for _, br := range all {
		out.Records = append(out.Records, br.recs...)
	}
	return out, nil
}

// route partitions the query's buckets into per-disk work lists. With
// fail-stop disks present it either reroutes via the replica scheme's
// min-makespan degraded assignment or — without replication — reports
// the unreachable buckets as a typed *fault.UnavailableError. Disks
// named by the WithAvoid hook are additionally routed around when the
// failover scheme permits, falling back to reading them when it does
// not: avoidance is advisory, fail-stop is not.
func (e *Executor) route(r grid.Rect) (perDisk [][]int, rerouted int, degraded bool, err error) {
	g := e.file.Grid()
	perDisk = make([][]int, e.file.Disks())
	var failed map[int]bool
	if e.inj != nil {
		failed = e.inj.FailedSet()
	}

	// The avoid set extends the failed set for routing purposes; it only
	// matters when a failover scheme exists to route around its disks.
	avoid := failed
	if e.avoid != nil && e.failover != nil {
		if extra := e.avoid(); len(extra) > 0 {
			avoid = make(map[int]bool, len(failed)+len(extra))
			for d := range failed {
				avoid[d] = true
			}
			for _, d := range extra {
				if d >= 0 && d < e.file.Disks() {
					avoid[d] = true
				}
			}
		}
	}

	if len(avoid) == 0 {
		// Healthy path: primary routing straight off the method.
		method := e.file.Method()
		grid.EachRect(r, func(c grid.Coord) bool {
			d := method.DiskOf(c)
			perDisk[d] = append(perDisk[d], g.Linearize(c))
			return true
		})
		return perDisk, 0, false, nil
	}

	if e.failover == nil {
		// No replication: buckets on failed disks are unreachable, and
		// partial answers would be silently wrong.
		method := e.file.Method()
		var unreachable []int
		grid.EachRect(r, func(c grid.Coord) bool {
			d := method.DiskOf(c)
			b := g.Linearize(c)
			if failed[d] {
				unreachable = append(unreachable, b)
				return true
			}
			perDisk[d] = append(perDisk[d], b)
			return true
		})
		if len(unreachable) > 0 {
			fd := make([]int, 0, len(failed))
			for d := range failed {
				fd = append(fd, d)
			}
			sort.Ints(fd)
			return nil, 0, true, &fault.UnavailableError{Buckets: unreachable, FailedDisks: fd}
		}
		return perDisk, 0, true, nil
	}

	// Replica failover: schedule every bucket onto a live replica,
	// minimizing the busiest disk (the degraded load is rebalanced, not
	// just dumped on each chain neighbour). First try routing around the
	// whole avoid set; if that is infeasible (some bucket has both
	// replicas merely *avoided*, or every disk is avoided), retry with
	// just the truly failed disks — a breaker-open disk is still
	// readable, so avoidance must never turn an answerable query into an
	// unavailable one.
	degraded = len(failed) > 0
	assign, err := e.failover.DegradedAssignment(r, setToSlice(avoid))
	if err != nil && len(avoid) > len(failed) {
		avoid = failed
		if len(failed) == 0 {
			// Nothing actually failed: plain primary routing.
			method := e.file.Method()
			grid.EachRect(r, func(c grid.Coord) bool {
				d := method.DiskOf(c)
				perDisk[d] = append(perDisk[d], g.Linearize(c))
				return true
			})
			return perDisk, 0, false, nil
		}
		assign, err = e.failover.DegradedAssignment(r, setToSlice(failed))
	}
	if err != nil {
		return nil, 0, degraded, err
	}
	grid.EachRect(r, func(c grid.Coord) bool {
		b := g.Linearize(c)
		d := assign[b]
		perDisk[d] = append(perDisk[d], b)
		if avoid[e.failover.PrimaryOf(b)] {
			rerouted++
		}
		return true
	})
	return perDisk, rerouted, degraded, nil
}

// routeBuckets is route for an explicit bucket set: identical fail-stop,
// avoidance, and failover semantics, with the degraded min-makespan
// assignment solved over the listed buckets instead of a rectangle.
// Within each disk, buckets are read in the order given — the knob a
// batch scheduling policy turns.
func (e *Executor) routeBuckets(buckets []int) (perDisk [][]int, rerouted int, degraded bool, err error) {
	g := e.file.Grid()
	perDisk = make([][]int, e.file.Disks())
	var failed map[int]bool
	if e.inj != nil {
		failed = e.inj.FailedSet()
	}

	avoid := failed
	if e.avoid != nil && e.failover != nil {
		if extra := e.avoid(); len(extra) > 0 {
			avoid = make(map[int]bool, len(failed)+len(extra))
			for d := range failed {
				avoid[d] = true
			}
			for _, d := range extra {
				if d >= 0 && d < e.file.Disks() {
					avoid[d] = true
				}
			}
		}
	}

	// primaryRoute places every bucket on its method disk.
	primaryRoute := func() {
		method := e.file.Method()
		c := make(grid.Coord, g.K())
		for _, b := range buckets {
			g.Delinearize(b, c)
			perDisk[method.DiskOf(c)] = append(perDisk[method.DiskOf(c)], b)
		}
	}

	if len(avoid) == 0 {
		primaryRoute()
		return perDisk, 0, false, nil
	}

	if e.failover == nil {
		method := e.file.Method()
		c := make(grid.Coord, g.K())
		var unreachable []int
		for _, b := range buckets {
			g.Delinearize(b, c)
			d := method.DiskOf(c)
			if failed[d] {
				unreachable = append(unreachable, b)
				continue
			}
			perDisk[d] = append(perDisk[d], b)
		}
		if len(unreachable) > 0 {
			sort.Ints(unreachable)
			fd := setToSlice(failed)
			return nil, 0, true, &fault.UnavailableError{Buckets: unreachable, FailedDisks: fd}
		}
		return perDisk, 0, true, nil
	}

	degraded = len(failed) > 0
	assign, err := e.failover.DegradedAssignmentBuckets(buckets, setToSlice(avoid))
	if err != nil && len(avoid) > len(failed) {
		avoid = failed
		if len(failed) == 0 {
			primaryRoute()
			return perDisk, 0, false, nil
		}
		assign, err = e.failover.DegradedAssignmentBuckets(buckets, setToSlice(failed))
	}
	if err != nil {
		return nil, 0, degraded, err
	}
	for _, b := range buckets {
		d := assign[b]
		perDisk[d] = append(perDisk[d], b)
		if avoid[e.failover.PrimaryOf(b)] {
			rerouted++
		}
	}
	return perDisk, rerouted, degraded, nil
}

// setToSlice returns the set's members in ascending order.
func setToSlice(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// readWithRetry reads one bucket through the query's reader, retrying
// transient errors per the policy with capped exponential backoff. It
// returns the records, the number of retries performed, and the
// terminal error if any. dsp, when non-nil, is the disk span attempt
// spans hang off; the attempt span also rides the context so reader
// wrappers (hedging, read-repair) can attach their own children. t,
// when non-nil, receives the counter deltas as plain adds (the worker
// flushes it); only the per-disk latency histogram — private to this
// worker's disk — is touched per read.
func (e *Executor) readWithRetry(ctx context.Context, reader BucketReader, dsp *obs.Span, t *readTally, disk, bucket int) ([]datagen.Record, int, error) {
	max := e.retry.MaxAttempts
	if max < 1 {
		max = 1
	}
	var lat *obs.Histogram
	if t != nil {
		t.calls++
		lat = e.metrics.diskLatency.At(disk)
	}
	backoff := e.retry.BaseBackoff
	for attempt := 1; ; attempt++ {
		rctx := ctx
		var asp *obs.Span
		if dsp != nil {
			asp = dsp.Child(fmt.Sprintf("read b%d attempt %d", bucket, attempt))
			rctx = obs.ContextWithSpan(ctx, asp)
		}
		var start time.Time
		if t != nil {
			start = time.Now()
			t.attempts++
		}
		recs, err := reader.ReadBucket(rctx, disk, bucket)
		if t != nil {
			lat.Observe(time.Since(start))
		}
		if err == nil {
			asp.Finish()
			if t != nil {
				t.attemptsOK++
				t.callsOK++
			}
			return recs, attempt - 1, nil
		}
		asp.FinishErr(err)
		if attempt >= max || !errors.Is(err, fault.ErrTransient) {
			if t != nil {
				t.attemptsErr++
				t.callsErr++
			}
			return nil, attempt - 1, fmt.Errorf("exec: disk %d bucket %d: %w", disk, bucket, err)
		}
		if t != nil {
			t.retried++
		}
		if backoff > 0 {
			timer := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				timer.Stop()
				if t != nil {
					t.cancelled++
				}
				return nil, attempt - 1, ctx.Err()
			case <-timer.C:
			}
			backoff *= 2
			if e.retry.MaxBackoff > 0 && backoff > e.retry.MaxBackoff {
				backoff = e.retry.MaxBackoff
			}
		}
	}
}

// RangeSearchValues runs RangeSearch over the cell rectangle covering
// the inclusive value bounds and filters records to them, mirroring
// gridfile.RangeSearch but concurrent.
func (e *Executor) RangeSearchValues(ctx context.Context, lo, hi []float64) (*Result, error) {
	g := e.file.Grid()
	if len(lo) != g.K() || len(hi) != g.K() {
		return nil, fmt.Errorf("exec: bounds arity %d/%d for %d-attribute grid", len(lo), len(hi), g.K())
	}
	rl := make(grid.Coord, g.K())
	rh := make(grid.Coord, g.K())
	for i := range lo {
		if lo[i] > hi[i] || lo[i] < 0 || hi[i] >= 1 {
			return nil, fmt.Errorf("exec: invalid bounds [%v, %v] on attribute %d", lo[i], hi[i], i)
		}
		rl[i] = int(lo[i] * float64(g.Dim(i)))
		rh[i] = int(hi[i] * float64(g.Dim(i)))
		if rl[i] >= g.Dim(i) {
			rl[i] = g.Dim(i) - 1
		}
		if rh[i] >= g.Dim(i) {
			rh[i] = g.Dim(i) - 1
		}
	}
	res, err := e.RangeSearch(ctx, grid.Rect{Lo: rl, Hi: rh})
	if err != nil {
		return nil, err
	}
	filtered := res.Records[:0]
	for _, rec := range res.Records {
		ok := true
		for i := range rec.Values {
			if rec.Values[i] < lo[i] || rec.Values[i] > hi[i] {
				ok = false
				break
			}
		}
		if ok {
			filtered = append(filtered, rec)
		}
	}
	res.Records = filtered
	return res, nil
}
