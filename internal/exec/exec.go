// Package exec executes grid-file searches with real concurrency: one
// worker goroutine per disk, each reading the buckets its disk holds,
// exactly the fan-out a parallel I/O subsystem performs. The disksim
// package *models* time; this package actually parallelizes the work,
// so library users get a drop-in concurrent scan whose speedup follows
// the declustering quality the study measures.
package exec

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"decluster/internal/datagen"
	"decluster/internal/grid"
	"decluster/internal/gridfile"
)

// Executor runs searches over a grid file with per-disk parallelism.
type Executor struct {
	file *gridfile.File
	// maxParallel bounds concurrently running disk workers; 0 means one
	// worker per disk.
	maxParallel int
}

// Option configures an Executor.
type Option func(*Executor)

// WithMaxParallel bounds the number of disk workers running at once —
// useful when simulating fewer I/O channels than disks.
func WithMaxParallel(n int) Option {
	return func(e *Executor) { e.maxParallel = n }
}

// New constructs an executor over the file.
func New(f *gridfile.File, opts ...Option) (*Executor, error) {
	if f == nil {
		return nil, fmt.Errorf("exec: nil grid file")
	}
	e := &Executor{file: f}
	for _, opt := range opts {
		opt(e)
	}
	if e.maxParallel < 0 {
		return nil, fmt.Errorf("exec: negative parallelism %d", e.maxParallel)
	}
	return e, nil
}

// Result is the outcome of a parallel search.
type Result struct {
	// Records are the qualifying records, in deterministic (bucket,
	// insertion) order regardless of worker scheduling.
	Records []datagen.Record
	// BucketsPerDisk counts buckets each worker read.
	BucketsPerDisk []int
}

// RangeSearch reads every bucket of the cell rectangle r concurrently,
// one worker per disk, honouring ctx cancellation. Results are merged
// into deterministic order.
func (e *Executor) RangeSearch(ctx context.Context, r grid.Rect) (*Result, error) {
	g := e.file.Grid()
	if len(r.Lo) != g.K() || !g.Contains(r.Lo) || !g.Contains(r.Hi) {
		return nil, fmt.Errorf("exec: rect %v invalid for grid %v", r, g)
	}

	// Partition the query's buckets by disk — the work list each disk
	// worker scans.
	method := e.file.Method()
	perDisk := make([][]int, e.file.Disks())
	grid.EachRect(r, func(c grid.Coord) bool {
		d := method.DiskOf(c)
		perDisk[d] = append(perDisk[d], g.Linearize(c))
		return true
	})

	limit := e.maxParallel
	if limit == 0 || limit > len(perDisk) {
		limit = len(perDisk)
	}
	if limit > runtime.NumCPU()*4 {
		limit = runtime.NumCPU() * 4
	}
	if limit < 1 {
		limit = 1
	}

	type diskResult struct {
		disk    int
		records []datagen.Record
		buckets int
	}
	results := make([]diskResult, e.file.Disks())
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once

	for d, buckets := range perDisk {
		if len(buckets) == 0 {
			continue
		}
		wg.Add(1)
		go func(d int, buckets []int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				errOnce.Do(func() { firstErr = ctx.Err() })
				return
			}
			var recs []datagen.Record
			read := 0
			for _, b := range buckets {
				if ctx.Err() != nil {
					errOnce.Do(func() { firstErr = ctx.Err() })
					return
				}
				n := e.file.BucketLen(b)
				if n == 0 {
					continue
				}
				read++
				recs = append(recs, e.readBucket(b)...)
			}
			results[d] = diskResult{disk: d, records: recs, buckets: read}
		}(d, buckets)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	out := &Result{BucketsPerDisk: make([]int, e.file.Disks())}
	for _, dr := range results {
		out.BucketsPerDisk[dr.disk] = dr.buckets
	}
	// Deterministic merge: records sorted by (bucket of origin,
	// insertion order) — recover via stable sort on the origin bucket
	// recorded during collection.
	type tagged struct {
		bucket int
		rec    datagen.Record
	}
	var all []tagged
	for _, dr := range results {
		i := 0
		for _, b := range perDisk[dr.disk] {
			n := e.file.BucketLen(b)
			for j := 0; j < n; j++ {
				all = append(all, tagged{bucket: b, rec: dr.records[i]})
				i++
			}
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].bucket < all[j].bucket })
	out.Records = make([]datagen.Record, len(all))
	for i, t := range all {
		out.Records[i] = t.rec
	}
	return out, nil
}

// readBucket snapshots a bucket's records through the public trace API.
func (e *Executor) readBucket(b int) []datagen.Record {
	g := e.file.Grid()
	c := g.Delinearize(b, nil)
	rs, err := e.file.CellRangeSearch(grid.Rect{Lo: c, Hi: c})
	if err != nil {
		// A linearized in-range bucket always yields a valid rect.
		panic(fmt.Sprintf("exec: bucket %d: %v", b, err))
	}
	return rs.Records
}

// RangeSearchValues runs RangeSearch over the cell rectangle covering
// the inclusive value bounds and filters records to them, mirroring
// gridfile.RangeSearch but concurrent.
func (e *Executor) RangeSearchValues(ctx context.Context, lo, hi []float64) (*Result, error) {
	g := e.file.Grid()
	if len(lo) != g.K() || len(hi) != g.K() {
		return nil, fmt.Errorf("exec: bounds arity %d/%d for %d-attribute grid", len(lo), len(hi), g.K())
	}
	rl := make(grid.Coord, g.K())
	rh := make(grid.Coord, g.K())
	for i := range lo {
		if lo[i] > hi[i] || lo[i] < 0 || hi[i] >= 1 {
			return nil, fmt.Errorf("exec: invalid bounds [%v, %v] on attribute %d", lo[i], hi[i], i)
		}
		rl[i] = int(lo[i] * float64(g.Dim(i)))
		rh[i] = int(hi[i] * float64(g.Dim(i)))
		if rl[i] >= g.Dim(i) {
			rl[i] = g.Dim(i) - 1
		}
		if rh[i] >= g.Dim(i) {
			rh[i] = g.Dim(i) - 1
		}
	}
	res, err := e.RangeSearch(ctx, grid.Rect{Lo: rl, Hi: rh})
	if err != nil {
		return nil, err
	}
	filtered := res.Records[:0]
	for _, rec := range res.Records {
		ok := true
		for i := range rec.Values {
			if rec.Values[i] < lo[i] || rec.Values[i] > hi[i] {
				ok = false
				break
			}
		}
		if ok {
			filtered = append(filtered, rec)
		}
	}
	res.Records = filtered
	return res, nil
}
