// Package exec executes grid-file searches with real concurrency: one
// worker goroutine per disk, each reading the buckets its disk holds,
// exactly the fan-out a parallel I/O subsystem performs. The disksim
// package *models* time; this package actually parallelizes the work,
// so library users get a drop-in concurrent scan whose speedup follows
// the declustering quality the study measures.
//
// The executor is fault-aware: reads go through a pluggable
// BucketReader that may return errors, transient errors are retried
// with capped exponential backoff, a per-query deadline bounds total
// latency, and — when a replica scheme is attached — buckets on
// fail-stop disks are rerouted to their backups with the degraded load
// rebalanced by the exact min-makespan schedule. Without replication, a
// failed disk makes the affected queries return a typed
// *fault.UnavailableError instead of silently wrong results.
package exec

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
	"time"

	"decluster/internal/alloc"
	"decluster/internal/datagen"
	"decluster/internal/fault"
	"decluster/internal/grid"
	"decluster/internal/gridfile"
	"decluster/internal/obs"
	"decluster/internal/replica"
)

// RetryPolicy bounds per-read retries of transient errors.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per bucket read,
	// including the first (minimum 1; 0 selects 1).
	MaxAttempts int
	// BaseBackoff is the wait before the first retry; each further
	// retry doubles it. Zero disables sleeping (retry immediately).
	BaseBackoff time.Duration
	// MaxBackoff caps the doubled backoff (0 = uncapped).
	MaxBackoff time.Duration
}

// DefaultRetry is a policy suited to the transient faults the injector
// models: up to 5 attempts with 1ms → 8ms exponential backoff.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond}
}

// Executor runs searches over a grid file with per-disk parallelism.
type Executor struct {
	file *gridfile.File
	// maxParallel bounds concurrently running disk workers; 0 means one
	// worker per disk.
	maxParallel int
	// reader serves bucket reads (default: the grid file itself).
	reader BucketReader
	// inj optionally injects faults into routing and reads.
	inj *fault.Injector
	// retry bounds transient-error retries.
	retry RetryPolicy
	// deadline bounds each query's wall-clock time (0 = none).
	deadline time.Duration
	// failover optionally reroutes buckets around failed disks.
	failover *replica.Replicated
	// avoid optionally names extra disks to route around (e.g. disks a
	// circuit breaker holds open); consulted once per query.
	avoid func() []int
	// wraps optionally wrap each query's reader, applied in option
	// order with later wrappers outermost — all after the fault layer,
	// so every wrapper observes injected errors.
	wraps []func(BucketReader) BucketReader
	// obs optionally receives metrics and traces; metrics is its
	// pre-resolved handle struct, nil when disabled, so the hot path
	// pays one pointer comparison per site.
	obs     *obs.Sink
	metrics *execMetrics
	// states pools per-query scratch (routing tables, disk tasks, merge
	// buffers, a reusable cancellation context) so the steady-state
	// query path allocates nothing.
	states sync.Pool
}

// execMetrics holds the executor's pre-resolved metric handles. Every
// counter the conservation test sums is registered here at
// construction — not lazily — so the metric name set is deterministic
// regardless of which events fire.
type execMetrics struct {
	queries, queriesOK, queriesErr *obs.Counter
	degraded, rerouted             *obs.Counter
	// Read accounting, exact by construction:
	//   attempts == attemptsOK + attemptsErr + retried
	//   calls    == callsOK + callsErr + cancelled
	calls, callsOK, callsErr, cancelled *obs.Counter
	attempts, attemptsOK, attemptsErr   *obs.Counter
	retried                             *obs.Counter
	diskAttempts                        *obs.CounterFamily
	diskLatency                         *obs.HistogramFamily
}

// newExecMetrics registers the executor's metric set for disks disks.
func newExecMetrics(r *obs.Registry, disks int) *execMetrics {
	if r == nil {
		return nil
	}
	return &execMetrics{
		queries:      r.Counter("exec.queries"),
		queriesOK:    r.Counter("exec.queries.ok"),
		queriesErr:   r.Counter("exec.queries.err"),
		degraded:     r.Counter("exec.queries.degraded"),
		rerouted:     r.Counter("exec.buckets.rerouted"),
		calls:        r.Counter("exec.read.calls"),
		callsOK:      r.Counter("exec.read.calls.ok"),
		callsErr:     r.Counter("exec.read.calls.err"),
		cancelled:    r.Counter("exec.read.calls.cancelled"),
		attempts:     r.Counter("exec.read.attempts"),
		attemptsOK:   r.Counter("exec.read.attempts.ok"),
		attemptsErr:  r.Counter("exec.read.attempts.err"),
		retried:      r.Counter("exec.read.attempts.retried"),
		diskAttempts: r.CounterFamily("exec.disk.read.attempts", "disk", disks),
		diskLatency:  r.HistogramFamily("exec.disk.read.latency", "disk", disks),
	}
}

// readTally accumulates one disk worker's hot-path counter deltas as
// plain integers so the read loop pays no contended atomics — sixteen
// workers hammering the same shared counters serialize on cache lines
// and cost ~20% of a range search. The worker flushes once when it
// finishes, before the query completes, so every post-query read of
// the registry still sees exact conservation; only a mid-query scrape
// can observe the deltas in flight (already true of any multi-counter
// update).
type readTally struct {
	calls, callsOK, callsErr, cancelled uint64
	attempts, attemptsOK, attemptsErr   uint64
	retried                             uint64
}

// flush folds one worker's tally into the shared counters: eight
// atomic adds per worker per query instead of five per bucket read.
func (m *execMetrics) flush(disk int, t *readTally) {
	if m == nil || t == nil {
		return
	}
	m.calls.Add(t.calls)
	m.callsOK.Add(t.callsOK)
	m.callsErr.Add(t.callsErr)
	m.cancelled.Add(t.cancelled)
	m.attempts.Add(t.attempts)
	m.attemptsOK.Add(t.attemptsOK)
	m.attemptsErr.Add(t.attemptsErr)
	m.retried.Add(t.retried)
	m.diskAttempts.At(disk).Add(t.attempts)
}

// Option configures an Executor.
type Option func(*Executor)

// WithMaxParallel bounds the number of disk workers running at once —
// useful when simulating fewer I/O channels than disks.
func WithMaxParallel(n int) Option {
	return func(e *Executor) { e.maxParallel = n }
}

// WithBucketReader replaces the default grid-file reader. The reader
// must be safe for concurrent use.
func WithBucketReader(r BucketReader) Option {
	return func(e *Executor) { e.reader = r }
}

// WithFaults attaches a fault injector: fail-stop disks affect routing
// (failover or unavailability) and every read may transiently error
// per the injector's probability.
func WithFaults(inj *fault.Injector) Option {
	return func(e *Executor) { e.inj = inj }
}

// WithRetry sets the transient-error retry policy (default: one
// attempt, no retries).
func WithRetry(p RetryPolicy) Option {
	return func(e *Executor) { e.retry = p }
}

// WithDeadline bounds each query's wall-clock time; an exceeded
// deadline returns context.DeadlineExceeded.
func WithDeadline(d time.Duration) Option {
	return func(e *Executor) { e.deadline = d }
}

// WithFailover attaches a replica scheme for degraded routing: buckets
// whose primary disk is fail-stop are served from their backup, with
// the whole query re-scheduled to minimize the busiest surviving disk.
func WithFailover(r *replica.Replicated) Option {
	return func(e *Executor) { e.failover = r }
}

// WithAvoid registers a callback naming extra disks the router should
// treat as out of service *when a failover replica scheme can route
// around them* — the hook a circuit breaker uses to steer queries away
// from a sick-but-alive disk. The callback is consulted once per query.
// Unlike fail-stop disks, avoided disks are advisory: if avoiding them
// would leave some bucket with no replica (or no failover scheme is
// attached), the query falls back to reading them anyway rather than
// failing.
func WithAvoid(fn func() []int) Option {
	return func(e *Executor) { e.avoid = fn }
}

// WithObserver attaches an observability sink: the executor registers
// per-disk read counters and latency histograms in its registry and —
// when the sink traces and the caller put a query span in the context —
// records per-disk and per-attempt read spans. A nil sink disables
// everything at the cost of one branch per instrumented site.
func WithObserver(s *obs.Sink) Option {
	return func(e *Executor) { e.obs = s }
}

// WithReadWrapper wraps each query's bucket reader with fn, applied
// outside the per-query fault-injection layer so it observes every read
// the query issues, including injected errors — which is what a health
// tracker, hedging layer, or read-repairer needs. The option composes:
// given several wrappers, each is applied in option order with later
// wrappers outermost (a health observer added after a read-repairer
// sees the repaired, error-free reads). fn is called once per query and
// must return a reader safe for concurrent use by that query's disk
// workers.
func WithReadWrapper(fn func(BucketReader) BucketReader) Option {
	return func(e *Executor) { e.wraps = append(e.wraps, fn) }
}

// New constructs an executor over the file.
func New(f *gridfile.File, opts ...Option) (*Executor, error) {
	if f == nil {
		return nil, fmt.Errorf("exec: nil grid file")
	}
	e := &Executor{file: f}
	for _, opt := range opts {
		opt(e)
	}
	if e.maxParallel < 0 {
		return nil, fmt.Errorf("exec: negative parallelism %d", e.maxParallel)
	}
	if e.retry.MaxAttempts < 0 {
		return nil, fmt.Errorf("exec: negative retry attempts %d", e.retry.MaxAttempts)
	}
	if e.retry.BaseBackoff < 0 || e.retry.MaxBackoff < 0 {
		return nil, fmt.Errorf("exec: negative retry backoff")
	}
	if e.deadline < 0 {
		return nil, fmt.Errorf("exec: negative deadline %v", e.deadline)
	}
	if e.failover != nil {
		fg, g := e.failover.Grid(), f.Grid()
		if e.failover.Disks() != f.Disks() || fg.Buckets() != g.Buckets() || fg.K() != g.K() {
			return nil, fmt.Errorf("exec: failover replica on %v/%d disks does not match file %v/%d disks",
				fg, e.failover.Disks(), g, f.Disks())
		}
		// Shape alone is not enough: a replica built over a different
		// allocation method routes buckets to the wrong disks, skewing
		// Rerouted counts and degraded-load accounting even when a
		// disk-agnostic reader happens to return correct records.
		for b, d := range alloc.Table(f.Method()) {
			if e.failover.PrimaryOf(b) != d {
				return nil, fmt.Errorf("exec: failover replica allocation differs from file method %s at bucket %d (primary %d, file disk %d)",
					f.Method().Name(), b, e.failover.PrimaryOf(b), d)
			}
		}
	}
	if e.reader == nil {
		e.reader = fileReader{f: f}
	}
	if e.obs != nil {
		e.metrics = newExecMetrics(e.obs.Registry(), f.Disks())
	}
	return e, nil
}

// queryReader returns the BucketReader one query should read through:
// the configured reader, wrapped — per query, so attempt counters start
// fresh and one query's injected faults are independent of every other
// query past or concurrent — in the fault injector when present, and
// finally in the WithReadWrapper hooks, in option order with later
// wrappers outermost, so observers and hedgers see injected faults too.
func (e *Executor) queryReader() BucketReader {
	r := e.reader
	if e.inj != nil {
		r = newFaultReader(r, e.inj)
	}
	for _, wrap := range e.wraps {
		r = wrap(r)
	}
	return r
}

// Result is the outcome of a parallel search.
//
// Ownership: the caller owns a returned Result and every slice it
// holds. Nothing in the executor retains or mutates them, so holding a
// Result across later queries is always safe. A caller that is done
// with a Result may call Release to recycle its buffers into the
// executor's pool; after Release the Result and its slices must not be
// touched — a later query may reuse them. Callers that never call
// Release simply opt out of reuse.
type Result struct {
	// Records are the qualifying records, in deterministic (bucket,
	// insertion) order regardless of worker scheduling.
	Records []datagen.Record
	// BucketsPerDisk counts buckets each worker read.
	BucketsPerDisk []int
	// Retries counts transient read errors that were retried to
	// success.
	Retries int
	// Rerouted counts buckets served from a backup replica because
	// their primary disk was fail-stop.
	Rerouted int
	// Degraded reports whether any fail-stop disk affected routing.
	Degraded bool

	// owner is the pool Release returns the Result to; nil for Results
	// built outside the pooled path (and after Release, making a double
	// Release a no-op).
	owner *sync.Pool
}

// Release hands the Result's buffers back for reuse by later queries.
// It is optional: callers that keep results alive indefinitely just
// never call it. Calling Release while still holding Records is a
// use-after-free bug on the caller's side; Release on a nil Result or
// one not from the pool is a no-op.
func (r *Result) Release() {
	if r == nil || r.owner == nil {
		return
	}
	p := r.owner
	r.owner = nil
	p.Put(r)
}

// bucketRecs is one bucket's payload as collected by a disk worker.
type bucketRecs struct {
	bucket int
	recs   []datagen.Record
}

// RangeSearch reads every bucket of the cell rectangle r concurrently,
// one worker per disk, honouring ctx cancellation and the configured
// deadline. The first worker error cancels all siblings promptly.
// Results are merged into deterministic order.
func (e *Executor) RangeSearch(ctx context.Context, r grid.Rect) (*Result, error) {
	g := e.file.Grid()
	if len(r.Lo) != g.K() || len(r.Hi) != g.K() {
		return nil, fmt.Errorf("exec: rect %v has %d..%d axes for %d-attribute grid %v",
			r, len(r.Lo), len(r.Hi), g.K(), g)
	}
	for i := range r.Lo {
		if r.Lo[i] > r.Hi[i] {
			return nil, fmt.Errorf("exec: rect %v inverted on axis %d (Lo %d > Hi %d)", r, i, r.Lo[i], r.Hi[i])
		}
	}
	if !g.Contains(r.Lo) || !g.Contains(r.Hi) {
		return nil, fmt.Errorf("exec: rect %v outside grid %v", r, g)
	}
	return e.run(ctx, r, nil)
}

// RangeSearchBuckets reads an explicit set of row-major bucket numbers
// with the same machinery as RangeSearch: per-disk workers, retries,
// deadline, breaker avoidance, and degraded failover routing. It is
// the physical entry point of the batch engine, whose deduped read
// plans are bucket sets rather than rectangles. Buckets must be
// distinct (a deduped plan never repeats one, and rejecting repeats
// keeps the merged record order deterministic); records come back in
// (bucket, insertion) order exactly as a rectangle covering the same
// buckets would return them.
func (e *Executor) RangeSearchBuckets(ctx context.Context, buckets []int) (*Result, error) {
	n := e.file.Grid().Buckets()
	seen := make(map[int]bool, len(buckets))
	for _, b := range buckets {
		if b < 0 || b >= n {
			return nil, fmt.Errorf("exec: bucket %d outside [0,%d)", b, n)
		}
		if seen[b] {
			return nil, fmt.Errorf("exec: duplicate bucket %d in read set", b)
		}
		seen[b] = true
	}
	return e.run(ctx, grid.Rect{}, buckets)
}

// run executes one already-validated query: route partitions the work
// into per-disk bucket lists, then one pooled worker per disk reads its
// list honouring ctx and the configured deadline, and the results merge
// into deterministic (bucket, insertion) order. A nil buckets slice
// selects rectangle routing over r; otherwise buckets is the explicit
// read set. Every piece of per-query state — routing tables, disk
// tasks, the cancellation context, the merge buffer, the Result — is
// pooled, so the healthy unobserved path allocates nothing.
func (e *Executor) run(ctx context.Context, r grid.Rect, buckets []int) (*Result, error) {
	// Past validation every query ends in exactly one of queriesOK /
	// queriesErr, so exec.queries == exec.queries.ok + exec.queries.err.
	m := e.metrics
	if m != nil {
		m.queries.Inc()
	}
	qs := e.getState()
	qs.m = m
	if e.obs.Tracing() {
		qs.qsp = obs.SpanFromContext(ctx)
	}
	qs.beginCtx(ctx)

	var rerouted int
	var degraded bool
	var err error
	if buckets == nil {
		rerouted, degraded, err = e.route(qs, r)
	} else {
		rerouted, degraded, err = e.routeBuckets(qs, buckets)
	}
	if err != nil {
		qs.endCtx()
		e.putState(qs)
		if m != nil {
			m.queriesErr.Inc()
		}
		return nil, err
	}

	disks := e.file.Disks()
	active := 0
	for d := 0; d < disks; d++ {
		t := &qs.tasks[d]
		t.out = t.out[:0]
		t.retries = 0
		t.tally = readTally{}
		if len(qs.perDisk[d]) > 0 {
			active++
		}
	}

	limit := e.maxParallel
	if limit == 0 || limit > disks {
		limit = disks
	}
	if limit > runtime.NumCPU()*4 {
		limit = runtime.NumCPU() * 4
	}
	if limit < 1 {
		limit = 1
	}
	useSem := limit < active
	if useSem {
		qs.setSemTokens(limit)
	}

	qs.reader = e.queryReader()
	qs.wg.Add(active)
	for d := 0; d < disks; d++ {
		if len(qs.perDisk[d]) == 0 {
			continue
		}
		t := &qs.tasks[d]
		t.qs = qs
		t.disk = d
		t.buckets = qs.perDisk[d]
		t.useSem = useSem
		submitTask(t)
	}
	qs.wg.Wait()
	qs.endCtx()

	if qs.firstErr != nil {
		err := qs.firstErr
		e.putState(qs)
		if m != nil {
			m.queriesErr.Inc()
		}
		return nil, err
	}
	if m != nil {
		m.queriesOK.Inc()
		if degraded {
			m.degraded.Inc()
		}
		m.rerouted.Add(uint64(rerouted))
	}

	out := newResult()
	if cap(out.BucketsPerDisk) < disks {
		out.BucketsPerDisk = make([]int, disks)
	}
	out.BucketsPerDisk = out.BucketsPerDisk[:disks]
	out.Retries, out.Rerouted, out.Degraded = 0, rerouted, degraded
	all := qs.all[:0]
	for d := 0; d < disks; d++ {
		t := &qs.tasks[d]
		out.BucketsPerDisk[d] = len(t.out)
		out.Retries += t.retries
		all = append(all, t.out...)
	}
	qs.all = all
	// Deterministic merge: records ordered by (bucket of origin,
	// insertion order) regardless of worker scheduling. The records are
	// copied out of the read path's views into the Result's own backing,
	// so the Result aliases neither the grid file nor any pooled buffer.
	slices.SortFunc(all, func(a, b bucketRecs) int { return cmp.Compare(a.bucket, b.bucket) })
	recs := out.Records[:0]
	for i := range all {
		recs = append(recs, all[i].recs...)
	}
	out.Records = recs
	e.putState(qs)
	return out, nil
}

// primaryRouteRect walks r with the query's reusable coordinate and
// places every bucket on its method disk. The walk is inlined (no
// iterator callback) because a captured-closure iterator is itself a
// per-query allocation.
func (e *Executor) primaryRouteRect(qs *queryState, r grid.Rect) {
	g := e.file.Grid()
	method := e.file.Method()
	k := g.K()
	if len(qs.coord) != k {
		qs.coord = make(grid.Coord, k)
	}
	c := qs.coord
	copy(c, r.Lo)
	for {
		d := method.DiskOf(c)
		qs.perDisk[d] = append(qs.perDisk[d], g.Linearize(c))
		i := k - 1
		for ; i >= 0; i-- {
			c[i]++
			if c[i] <= r.Hi[i] {
				break
			}
			c[i] = r.Lo[i]
		}
		if i < 0 {
			return
		}
	}
}

// route partitions the query's buckets into per-disk work lists held in
// qs.perDisk. With fail-stop disks present it either reroutes via the
// replica scheme's min-makespan degraded assignment or — without
// replication — reports the unreachable buckets as a typed
// *fault.UnavailableError. Disks named by the WithAvoid hook are
// additionally routed around when the failover scheme permits, falling
// back to reading them when it does not: avoidance is advisory,
// fail-stop is not.
func (e *Executor) route(qs *queryState, r grid.Rect) (rerouted int, degraded bool, err error) {
	g := e.file.Grid()
	perDisk := qs.perDisk
	for d := range perDisk {
		perDisk[d] = perDisk[d][:0]
	}
	var failed map[int]bool
	if e.inj != nil {
		failed = e.inj.FailedSet()
	}

	// The avoid set extends the failed set for routing purposes; it only
	// matters when a failover scheme exists to route around its disks.
	avoid := failed
	if e.avoid != nil && e.failover != nil {
		if extra := e.avoid(); len(extra) > 0 {
			avoid = make(map[int]bool, len(failed)+len(extra))
			for d := range failed {
				avoid[d] = true
			}
			for _, d := range extra {
				if d >= 0 && d < e.file.Disks() {
					avoid[d] = true
				}
			}
		}
	}

	if len(avoid) == 0 {
		// Healthy path: primary routing straight off the method.
		e.primaryRouteRect(qs, r)
		return 0, false, nil
	}

	if e.failover == nil {
		// No replication: buckets on failed disks are unreachable, and
		// partial answers would be silently wrong.
		method := e.file.Method()
		var unreachable []int
		grid.EachRect(r, func(c grid.Coord) bool {
			d := method.DiskOf(c)
			b := g.Linearize(c)
			if failed[d] {
				unreachable = append(unreachable, b)
				return true
			}
			perDisk[d] = append(perDisk[d], b)
			return true
		})
		if len(unreachable) > 0 {
			fd := make([]int, 0, len(failed))
			for d := range failed {
				fd = append(fd, d)
			}
			sort.Ints(fd)
			return 0, true, &fault.UnavailableError{Buckets: unreachable, FailedDisks: fd}
		}
		return 0, true, nil
	}

	// Replica failover: schedule every bucket onto a live replica,
	// minimizing the busiest disk (the degraded load is rebalanced, not
	// just dumped on each chain neighbour). First try routing around the
	// whole avoid set; if that is infeasible (some bucket has both
	// replicas merely *avoided*, or every disk is avoided), retry with
	// just the truly failed disks — a breaker-open disk is still
	// readable, so avoidance must never turn an answerable query into an
	// unavailable one.
	degraded = len(failed) > 0
	assign, err := e.failover.DegradedAssignment(r, setToSlice(avoid))
	if err != nil && len(avoid) > len(failed) {
		avoid = failed
		if len(failed) == 0 {
			// Nothing actually failed: plain primary routing.
			e.primaryRouteRect(qs, r)
			return 0, false, nil
		}
		assign, err = e.failover.DegradedAssignment(r, setToSlice(failed))
	}
	if err != nil {
		return 0, degraded, err
	}
	grid.EachRect(r, func(c grid.Coord) bool {
		b := g.Linearize(c)
		d := assign[b]
		perDisk[d] = append(perDisk[d], b)
		if avoid[e.failover.PrimaryOf(b)] {
			rerouted++
		}
		return true
	})
	return rerouted, degraded, nil
}

// primaryRouteBuckets places every listed bucket on its method disk,
// reusing the query's coordinate scratch.
func (e *Executor) primaryRouteBuckets(qs *queryState, buckets []int) {
	g := e.file.Grid()
	method := e.file.Method()
	if len(qs.coord) != g.K() {
		qs.coord = make(grid.Coord, g.K())
	}
	c := qs.coord
	for _, b := range buckets {
		g.Delinearize(b, c)
		qs.perDisk[method.DiskOf(c)] = append(qs.perDisk[method.DiskOf(c)], b)
	}
}

// routeBuckets is route for an explicit bucket set: identical fail-stop,
// avoidance, and failover semantics, with the degraded min-makespan
// assignment solved over the listed buckets instead of a rectangle.
// Within each disk, buckets are read in the order given — the knob a
// batch scheduling policy turns.
func (e *Executor) routeBuckets(qs *queryState, buckets []int) (rerouted int, degraded bool, err error) {
	g := e.file.Grid()
	perDisk := qs.perDisk
	for d := range perDisk {
		perDisk[d] = perDisk[d][:0]
	}
	var failed map[int]bool
	if e.inj != nil {
		failed = e.inj.FailedSet()
	}

	avoid := failed
	if e.avoid != nil && e.failover != nil {
		if extra := e.avoid(); len(extra) > 0 {
			avoid = make(map[int]bool, len(failed)+len(extra))
			for d := range failed {
				avoid[d] = true
			}
			for _, d := range extra {
				if d >= 0 && d < e.file.Disks() {
					avoid[d] = true
				}
			}
		}
	}

	if len(avoid) == 0 {
		e.primaryRouteBuckets(qs, buckets)
		return 0, false, nil
	}

	if e.failover == nil {
		method := e.file.Method()
		if len(qs.coord) != g.K() {
			qs.coord = make(grid.Coord, g.K())
		}
		c := qs.coord
		var unreachable []int
		for _, b := range buckets {
			g.Delinearize(b, c)
			d := method.DiskOf(c)
			if failed[d] {
				unreachable = append(unreachable, b)
				continue
			}
			perDisk[d] = append(perDisk[d], b)
		}
		if len(unreachable) > 0 {
			sort.Ints(unreachable)
			fd := setToSlice(failed)
			return 0, true, &fault.UnavailableError{Buckets: unreachable, FailedDisks: fd}
		}
		return 0, true, nil
	}

	degraded = len(failed) > 0
	assign, err := e.failover.DegradedAssignmentBuckets(buckets, setToSlice(avoid))
	if err != nil && len(avoid) > len(failed) {
		avoid = failed
		if len(failed) == 0 {
			e.primaryRouteBuckets(qs, buckets)
			return 0, false, nil
		}
		assign, err = e.failover.DegradedAssignmentBuckets(buckets, setToSlice(failed))
	}
	if err != nil {
		return 0, degraded, err
	}
	for _, b := range buckets {
		d := assign[b]
		perDisk[d] = append(perDisk[d], b)
		if avoid[e.failover.PrimaryOf(b)] {
			rerouted++
		}
	}
	return rerouted, degraded, nil
}

// setToSlice returns the set's members in ascending order.
func setToSlice(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// readWithRetry reads one bucket through the query's reader, retrying
// transient errors per the policy with capped exponential backoff. It
// returns the records, the number of retries performed, and the
// terminal error if any. dsp, when non-nil, is the disk span attempt
// spans hang off; the attempt span also rides the context so reader
// wrappers (hedging, read-repair) can attach their own children. t,
// when non-nil, receives the counter deltas as plain adds (the worker
// flushes it); only the per-disk latency histogram — private to this
// worker's disk — is touched per read.
func (e *Executor) readWithRetry(ctx context.Context, reader BucketReader, dsp *obs.Span, t *readTally, disk, bucket int) ([]datagen.Record, int, error) {
	max := e.retry.MaxAttempts
	if max < 1 {
		max = 1
	}
	var lat *obs.Histogram
	if t != nil {
		t.calls++
		lat = e.metrics.diskLatency.At(disk)
	}
	backoff := e.retry.BaseBackoff
	for attempt := 1; ; attempt++ {
		rctx := ctx
		var asp *obs.Span
		if dsp != nil {
			asp = dsp.Child(fmt.Sprintf("read b%d attempt %d", bucket, attempt))
			rctx = obs.ContextWithSpan(ctx, asp)
		}
		var start time.Time
		if t != nil {
			start = time.Now()
			t.attempts++
		}
		recs, err := reader.ReadBucket(rctx, disk, bucket)
		if t != nil {
			lat.Observe(time.Since(start))
		}
		if err == nil {
			asp.Finish()
			if t != nil {
				t.attemptsOK++
				t.callsOK++
			}
			return recs, attempt - 1, nil
		}
		asp.FinishErr(err)
		if attempt >= max || !errors.Is(err, fault.ErrTransient) {
			if t != nil {
				t.attemptsErr++
				t.callsErr++
			}
			return nil, attempt - 1, fmt.Errorf("exec: disk %d bucket %d: %w", disk, bucket, err)
		}
		if t != nil {
			t.retried++
		}
		if backoff > 0 {
			timer := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				timer.Stop()
				if t != nil {
					t.cancelled++
				}
				return nil, attempt - 1, ctx.Err()
			case <-timer.C:
			}
			backoff *= 2
			if e.retry.MaxBackoff > 0 && backoff > e.retry.MaxBackoff {
				backoff = e.retry.MaxBackoff
			}
		}
	}
}

// RangeSearchValues runs RangeSearch over the cell rectangle covering
// the inclusive value bounds and filters records to them, mirroring
// gridfile.RangeSearch but concurrent.
func (e *Executor) RangeSearchValues(ctx context.Context, lo, hi []float64) (*Result, error) {
	g := e.file.Grid()
	if len(lo) != g.K() || len(hi) != g.K() {
		return nil, fmt.Errorf("exec: bounds arity %d/%d for %d-attribute grid", len(lo), len(hi), g.K())
	}
	rl := make(grid.Coord, g.K())
	rh := make(grid.Coord, g.K())
	for i := range lo {
		if lo[i] > hi[i] || lo[i] < 0 || hi[i] >= 1 {
			return nil, fmt.Errorf("exec: invalid bounds [%v, %v] on attribute %d", lo[i], hi[i], i)
		}
		rl[i] = int(lo[i] * float64(g.Dim(i)))
		rh[i] = int(hi[i] * float64(g.Dim(i)))
		if rl[i] >= g.Dim(i) {
			rl[i] = g.Dim(i) - 1
		}
		if rh[i] >= g.Dim(i) {
			rh[i] = g.Dim(i) - 1
		}
	}
	res, err := e.RangeSearch(ctx, grid.Rect{Lo: rl, Hi: rh})
	if err != nil {
		return nil, err
	}
	filtered := res.Records[:0]
	for _, rec := range res.Records {
		ok := true
		for i := range rec.Values {
			if rec.Values[i] < lo[i] || rec.Values[i] > hi[i] {
				ok = false
				break
			}
		}
		if ok {
			filtered = append(filtered, rec)
		}
	}
	res.Records = filtered
	return res, nil
}
