package exec

import (
	"context"
	"strconv"
	"sync"
	"time"

	"decluster/internal/grid"
	"decluster/internal/obs"
)

// This file holds the executor's steady-state pooling machinery: parked
// disk workers, per-query state reuse, a reusable cancellation context,
// and the result pool behind Result.Release. Together they make the
// healthy RangeSearch path (nil obs sink, no injector, no reader wraps)
// allocation-free per query — asserted by TestRangeSearchZeroAllocs and
// enforced in the CI bench smoke.

// workerIdle is how long a parked disk worker waits for its next task
// before retiring. Parked workers bound steady-state goroutine churn to
// zero; the idle timeout bounds the parked population after a load
// spike drains.
const workerIdle = 10 * time.Second

// execWorker is one reusable disk-work goroutine. Its task channel is
// buffered so the submitter's send never blocks: a worker is handed a
// task only after being removed from the free list, and it re-parks
// before signalling completion, so at most one task is ever in flight.
type execWorker struct {
	ch chan *diskTask
}

// workerPool is the process-global parked-worker freelist. It is shared
// by every Executor: the population is bounded by peak query fan-out
// across the process, not per executor.
var workerPool struct {
	mu   sync.Mutex
	free []*execWorker
}

// submitTask hands t to a parked worker, spawning a fresh one only when
// the free list is empty (cold start or load spike).
func submitTask(t *diskTask) {
	workerPool.mu.Lock()
	var w *execWorker
	if n := len(workerPool.free); n > 0 {
		w = workerPool.free[n-1]
		workerPool.free[n-1] = nil
		workerPool.free = workerPool.free[:n-1]
	}
	workerPool.mu.Unlock()
	if w == nil {
		w = &execWorker{ch: make(chan *diskTask, 1)}
		go w.loop()
	}
	w.ch <- t
}

// park returns w to the free list.
func (w *execWorker) park() {
	workerPool.mu.Lock()
	workerPool.free = append(workerPool.free, w)
	workerPool.mu.Unlock()
}

// tryRetire removes w from the free list, reporting success. Failure
// means a submitter already claimed w, so a task is (about to be) in
// flight and w must serve it instead of exiting.
func (w *execWorker) tryRetire() bool {
	workerPool.mu.Lock()
	defer workerPool.mu.Unlock()
	for i, f := range workerPool.free {
		if f == w {
			last := len(workerPool.free) - 1
			workerPool.free[i] = workerPool.free[last]
			workerPool.free[last] = nil
			workerPool.free = workerPool.free[:last]
			return true
		}
	}
	return false
}

// loop serves tasks until the worker sits idle for workerIdle.
func (w *execWorker) loop() {
	idle := time.NewTimer(workerIdle)
	defer idle.Stop()
	for {
		select {
		case t := <-w.ch:
			w.serve(t)
		case <-idle.C:
			if w.tryRetire() {
				return
			}
			// A submitter claimed us as the timer fired; the task is in
			// flight on our buffered channel.
			w.serve(<-w.ch)
		}
		if !idle.Stop() {
			select {
			case <-idle.C:
			default:
			}
		}
		idle.Reset(workerIdle)
	}
}

// serve runs one task. The worker re-parks itself *before* signalling
// completion so a caller issuing its next query immediately after
// wg.Wait finds this worker on the free list — steady-state execution
// spawns no goroutines.
func (w *execWorker) serve(t *diskTask) {
	wg := &t.qs.wg
	t.run()
	w.park()
	wg.Done()
}

// diskTask is one disk's share of a query: its bucket list in, its
// collected records and counters out. Tasks live in queryState and are
// reused across queries.
type diskTask struct {
	qs      *queryState
	disk    int
	buckets []int
	useSem  bool

	out     []bucketRecs
	retries int
	tally   readTally
}

// run reads the task's buckets; it is the body of the old per-query
// worker goroutine, now executed by a pooled worker.
func (t *diskTask) run() {
	qs := t.qs
	e := qs.ex
	var dsp *obs.Span
	if qs.qsp != nil {
		dsp = qs.qsp.Child(diskSpanName(t.disk))
		defer dsp.Finish()
	}
	var tally *readTally
	if qs.m != nil {
		tally = &t.tally
		defer qs.m.flush(t.disk, &t.tally)
	}
	ctx := qs.ctx
	if t.useSem {
		select {
		case <-qs.sem:
			defer qs.releaseSem()
		case <-ctx.Done():
			dsp.FinishErr(ctx.Err())
			qs.fail(ctx.Err())
			return
		}
	}
	for _, b := range t.buckets {
		if err := ctx.Err(); err != nil {
			dsp.FinishErr(err)
			qs.fail(err)
			return
		}
		if e.file.BucketLen(b) == 0 {
			continue // the grid directory knows the bucket is empty
		}
		recs, tries, err := e.readWithRetry(ctx, qs.reader, dsp, tally, t.disk, b)
		t.retries += tries
		if err != nil {
			dsp.FinishErr(err)
			qs.fail(err)
			return
		}
		t.out = append(t.out, bucketRecs{bucket: b, recs: recs})
	}
}

// queryState is the reusable per-query scratch of one Executor: routing
// tables, disk tasks, the concurrency semaphore, the merge buffer, and
// a reusable cancellation context. States are pooled per executor so
// the steady-state query path performs no heap allocation.
type queryState struct {
	ex     *Executor
	ctx    context.Context
	reader BucketReader
	m      *execMetrics
	qsp    *obs.Span

	// sem carries "permit" tokens: acquire = receive, release = send.
	// Its capacity is the disk count; semTokens tracks how many tokens
	// are currently banked so each query adjusts rather than refills.
	sem       chan struct{}
	semTokens int

	wg sync.WaitGroup

	mu       sync.Mutex
	firstErr error

	// useQctx selects the reusable context; false means the stdlib
	// composition below is live (taken when reader wraps exist, since a
	// hedge leg may retain the context past the query's end).
	useQctx   bool
	qctx      queryCtx
	stdCancel context.CancelFunc
	tCancel   context.CancelFunc

	perDisk [][]int
	tasks   []diskTask
	coord   grid.Coord
	all     []bucketRecs
}

// getState returns a pooled query state, creating one sized for the
// executor's disk count on first use.
func (e *Executor) getState() *queryState {
	if v := e.states.Get(); v != nil {
		return v.(*queryState)
	}
	disks := e.file.Disks()
	return &queryState{
		ex:      e,
		sem:     make(chan struct{}, disks),
		perDisk: make([][]int, disks),
		tasks:   make([]diskTask, disks),
	}
}

// putState returns qs to the pool, dropping per-query references while
// keeping every buffer's capacity.
func (e *Executor) putState(qs *queryState) {
	qs.ctx = nil
	qs.reader = nil
	qs.qsp = nil
	qs.m = nil
	qs.firstErr = nil
	e.states.Put(qs)
}

// fail records the query's first error and cancels the sibling workers.
func (qs *queryState) fail(err error) {
	qs.mu.Lock()
	if qs.firstErr == nil {
		qs.firstErr = err
		if qs.useQctx {
			qs.qctx.cancelCurrent(context.Canceled)
		} else {
			qs.stdCancel()
		}
	}
	qs.mu.Unlock()
}

// setSemTokens banks exactly n permit tokens in the semaphore.
func (qs *queryState) setSemTokens(n int) {
	for qs.semTokens < n {
		qs.sem <- struct{}{}
		qs.semTokens++
	}
	for qs.semTokens > n {
		<-qs.sem
		qs.semTokens--
	}
}

// releaseSem returns one permit.
func (qs *queryState) releaseSem() { qs.sem <- struct{}{} }

// beginCtx installs the query's effective context: the reusable qctx on
// the unwrapped path, or the stdlib timeout/cancel composition when
// reader wraps exist.
func (qs *queryState) beginCtx(parent context.Context) {
	e := qs.ex
	if len(e.wraps) == 0 {
		qs.ctx = qs.qctx.begin(parent, e.deadline)
		qs.useQctx = true
		return
	}
	qs.useQctx = false
	cctx := parent
	if e.deadline > 0 {
		cctx, qs.tCancel = context.WithTimeout(cctx, e.deadline)
	}
	cctx, qs.stdCancel = context.WithCancel(cctx)
	qs.ctx = cctx
}

// endCtx releases whatever beginCtx installed.
func (qs *queryState) endCtx() {
	if qs.useQctx {
		qs.qctx.end()
		return
	}
	if qs.stdCancel != nil {
		qs.stdCancel()
		qs.stdCancel = nil
	}
	if qs.tCancel != nil {
		qs.tCancel()
		qs.tCancel = nil
	}
}

// queryCtx is a reusable context.Context for one query at a time. The
// stdlib context tree allocates several nodes per query; this one
// allocates its done channel once and reuses it for every query that
// ends uncancelled (the overwhelmingly common case — a closed channel
// cannot be reopened, so a cancelled query forces one fresh channel).
// A generation counter fences the deadline timer and parent watcher of
// a finished query from cancelling a later one.
type queryCtx struct {
	parent context.Context

	mu   sync.Mutex
	gen  uint64
	done chan struct{}
	err  error

	dl    time.Time
	hasDL bool
	timer *time.Timer

	watching bool
	stop     chan struct{} // buffered 1; end() posts, watcher consumes
}

// begin arms qc for one query under parent with an optional relative
// deadline and returns it as the query's context.
func (qc *queryCtx) begin(parent context.Context, deadline time.Duration) context.Context {
	qc.parent = parent
	dl := time.Time{}
	hasDL := false
	if deadline > 0 {
		dl = time.Now().Add(deadline)
		hasDL = true
	}
	if pd, ok := parent.Deadline(); ok && (!hasDL || pd.Before(dl)) {
		dl = pd
		hasDL = true
	}
	qc.mu.Lock()
	qc.gen++
	qc.err = nil
	if qc.done == nil {
		qc.done = make(chan struct{})
	}
	qc.dl, qc.hasDL = dl, hasDL
	gen := qc.gen
	qc.mu.Unlock()
	if hasDL {
		d := time.Until(dl)
		if d <= 0 {
			qc.cancelCurrent(context.DeadlineExceeded)
			return qc
		}
		if qc.timer == nil {
			qc.timer = time.AfterFunc(d, qc.expire)
		} else {
			qc.timer.Reset(d)
		}
	}
	if parent.Done() != nil {
		if qc.stop == nil {
			qc.stop = make(chan struct{}, 1)
		}
		qc.watching = true
		go qc.watchParent(parent, gen)
	}
	return qc
}

// end disarms qc after its query completes. Callers guarantee every
// worker using qc has finished.
func (qc *queryCtx) end() {
	if qc.timer != nil {
		qc.timer.Stop()
	}
	if qc.watching {
		qc.watching = false
		qc.stop <- struct{}{}
	}
	qc.mu.Lock()
	qc.gen++         // fence any in-flight watcher callback
	qc.hasDL = false // a stale timer fire between queries must no-op
	if qc.err != nil {
		qc.done = nil // closed channels cannot be reused
		qc.err = nil
	}
	qc.mu.Unlock()
	qc.parent = nil
}

// cancelCurrent cancels the query currently using qc. Only callers
// within that query's lifetime (its own workers) may use it.
func (qc *queryCtx) cancelCurrent(err error) {
	qc.mu.Lock()
	if qc.err == nil {
		qc.err = err
		close(qc.done)
	}
	qc.mu.Unlock()
}

// cancelGen cancels generation gen if it is still live — the fenced
// entry point for the deadline timer and parent watcher, which can
// outlive the query that armed them.
func (qc *queryCtx) cancelGen(gen uint64, err error) {
	if err == nil {
		err = context.Canceled
	}
	qc.mu.Lock()
	if qc.gen == gen && qc.err == nil {
		qc.err = err
		close(qc.done)
	}
	qc.mu.Unlock()
}

// expire is the deadline timer callback. A stale fire (the timer of a
// finished query losing the Stop race) is harmless: it only cancels
// when the *currently armed* deadline has genuinely lapsed, in which
// case cancellation is correct for the current query too.
func (qc *queryCtx) expire() {
	qc.mu.Lock()
	if qc.err == nil && qc.hasDL && !time.Now().Before(qc.dl) {
		qc.err = context.DeadlineExceeded
		close(qc.done)
	}
	qc.mu.Unlock()
}

// watchParent propagates parent cancellation into generation gen. It
// always consumes exactly one stop token before exiting so the stop
// channel is empty whenever no watcher runs.
func (qc *queryCtx) watchParent(parent context.Context, gen uint64) {
	select {
	case <-parent.Done():
		qc.cancelGen(gen, parent.Err())
		<-qc.stop
	case <-qc.stop:
	}
}

func (qc *queryCtx) Deadline() (time.Time, bool) { return qc.dl, qc.hasDL }

func (qc *queryCtx) Done() <-chan struct{} {
	qc.mu.Lock()
	d := qc.done
	qc.mu.Unlock()
	return d
}

func (qc *queryCtx) Err() error {
	qc.mu.Lock()
	err := qc.err
	qc.mu.Unlock()
	return err
}

func (qc *queryCtx) Value(key any) any {
	if qc.parent == nil {
		return nil
	}
	return qc.parent.Value(key)
}

// resultPool recycles Results whose owners called Release.
var resultPool sync.Pool

// newResult returns a pooled Result with every field reset and its
// buffers' capacity intact.
func newResult() *Result {
	if v := resultPool.Get(); v != nil {
		r := v.(*Result)
		r.owner = &resultPool
		return r
	}
	return &Result{owner: &resultPool}
}

// diskSpanNames caches the per-disk span labels so tracing a query does
// not re-format them; disk counts are tiny and stable process-wide.
var diskSpanNames struct {
	mu    sync.Mutex
	names []string
}

func diskSpanName(d int) string {
	diskSpanNames.mu.Lock()
	defer diskSpanNames.mu.Unlock()
	for len(diskSpanNames.names) <= d {
		diskSpanNames.names = append(diskSpanNames.names, "disk "+strconv.Itoa(len(diskSpanNames.names)))
	}
	return diskSpanNames.names[d]
}
