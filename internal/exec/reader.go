package exec

import (
	"context"
	"sync"

	"decluster/internal/datagen"
	"decluster/internal/fault"
	"decluster/internal/gridfile"
)

// BucketReader serves the records of one bucket from one disk. It is
// the executor's pluggable I/O layer: the default implementation reads
// the in-memory grid file, and wrappers can inject faults, add caching,
// or fetch from remote storage. Implementations must be safe for
// concurrent use — the executor calls ReadBucket from one goroutine per
// disk.
type BucketReader interface {
	// ReadBucket returns the records of the row-major bucket b as served
	// by disk d. A returned error matching fault.ErrTransient is
	// retryable; any other error aborts the query.
	ReadBucket(ctx context.Context, disk, bucket int) ([]datagen.Record, error)
}

// NewFileReader returns the default grid-file BucketReader — the one an
// Executor uses when no WithBucketReader option is given — so callers
// composing their own reader stacks (latency simulation, caching,
// health observation) can wrap the same base layer.
func NewFileReader(f *gridfile.File) BucketReader { return fileReader{f: f} }

// fileReader is the default BucketReader: it serves the grid file's
// bucket storage directly as a read-only view — no coordinate
// round-trip, no result-set envelope, no copying. The executor's merge
// copies records into the query's Result before returning, so the view
// never escapes to callers. The disk argument is irrelevant — every
// replica serves identical bytes.
type fileReader struct {
	f *gridfile.File
}

// ReadBucket reads bucket b from the grid file.
func (r fileReader) ReadBucket(_ context.Context, _, b int) ([]datagen.Record, error) {
	return r.f.Bucket(b), nil
}

// NewStoreReader returns a BucketReader over a checksummed physical
// store: unlike the grid-file reader, the disk argument matters — each
// read verifies the page checksums of *that disk's* copy, so a
// corrupted copy surfaces as an error matching gridfile.ErrCorrupt
// while its sibling replica still serves clean bytes. Reads of empty
// buckets short-circuit to nil without touching the store (the grid
// directory knows they hold no pages), mirroring the executor's
// skip-empty behavior. Pair it with a read-repair wrapper (package
// repair) to fix corruption inline, or let errors propagate to fail the
// query.
func NewStoreReader(s *gridfile.Store) BucketReader { return storeReader{s: s} }

// storeReader serves verified reads from a gridfile.Store.
type storeReader struct {
	s *gridfile.Store
}

// ReadBucket reads and verifies disk d's copy of bucket b.
func (r storeReader) ReadBucket(_ context.Context, d, b int) ([]datagen.Record, error) {
	if r.s.BucketPages(b) == 0 {
		return nil, nil
	}
	return r.s.ReadVerified(d, b)
}

// faultReader wraps a BucketReader with an injector: each read first
// consults the injector, which may fail it (fail-stop disk) or make it
// transiently error. Attempt numbers are tracked per bucket so retries
// draw fresh, deterministic coins. The executor creates one faultReader
// per query, so a query's fault sequence is a pure function of the seed
// and its own reads — independent of previously executed queries and of
// concurrent queries on the same Executor.
type faultReader struct {
	inner BucketReader
	inj   *fault.Injector

	mu       sync.Mutex
	attempts map[int]int // bucket → reads issued so far
}

func newFaultReader(inner BucketReader, inj *fault.Injector) *faultReader {
	return &faultReader{inner: inner, inj: inj, attempts: make(map[int]int)}
}

// ReadBucket consults the injector before delegating to the inner
// reader.
func (r *faultReader) ReadBucket(ctx context.Context, disk, bucket int) ([]datagen.Record, error) {
	r.mu.Lock()
	r.attempts[bucket]++
	attempt := r.attempts[bucket]
	r.mu.Unlock()
	if err := r.inj.CheckRead(disk, bucket, attempt); err != nil {
		return nil, err
	}
	return r.inner.ReadBucket(ctx, disk, bucket)
}
