package batch

import (
	"fmt"
	"math"

	"decluster/internal/datagen"
	"decluster/internal/grid"
	"decluster/internal/gridfile"
)

// AggregateOp selects the aggregate a query computes over a rectangle.
type AggregateOp int

const (
	// OpCount counts the records inside the rectangle.
	OpCount AggregateOp = iota
	// OpSum sums one attribute over the records inside the rectangle.
	OpSum
	// OpMin takes the minimum of one attribute.
	OpMin
	// OpMax takes the maximum of one attribute.
	OpMax
)

// String names the op as it travels on the wire.
func (o AggregateOp) String() string {
	switch o {
	case OpCount:
		return "count"
	case OpSum:
		return "sum"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	default:
		return "unknown"
	}
}

// ParseAggregateOp inverts String.
func ParseAggregateOp(s string) (AggregateOp, error) {
	switch s {
	case "count":
		return OpCount, nil
	case "sum":
		return OpSum, nil
	case "min":
		return OpMin, nil
	case "max":
		return OpMax, nil
	default:
		return 0, fmt.Errorf("batch: unknown aggregate op %q", s)
	}
}

// AggregateQuery asks for one aggregate over a cell rectangle.
type AggregateQuery struct {
	// Rect is the cell rectangle to aggregate over.
	Rect grid.Rect
	// Op selects the aggregate.
	Op AggregateOp
	// Attr is the attribute OpSum/OpMin/OpMax reduce (ignored by
	// OpCount).
	Attr int
}

// AggregateResult is an aggregate answer. Count is always filled — it
// is what tells a merging router whether Min/Max carry a value at all.
type AggregateResult struct {
	Op   AggregateOp
	Attr int
	// Count is the number of records in the rectangle.
	Count int64
	// Sum is the attribute total (OpSum).
	Sum float64
	// Min and Max are the attribute extrema (OpMin/OpMax); meaningful
	// only when Count > 0.
	Min, Max float64
	// Buckets is the number of grid buckets the rectangle covers.
	Buckets int
	// PerDisk is the per-disk record count of the rectangle, straight
	// from the summed-area corners (node-local observability; not
	// merged across cluster nodes).
	PerDisk []int64
}

// MergeAggregates folds partial results of the same (op, attr) — e.g.
// per-shard answers gathered by the cluster router — into one.
func MergeAggregates(op AggregateOp, attr int, parts []AggregateResult) AggregateResult {
	out := AggregateResult{Op: op, Attr: attr}
	for _, p := range parts {
		if p.Count > 0 {
			if out.Count == 0 || p.Min < out.Min {
				out.Min = p.Min
			}
			if out.Count == 0 || p.Max > out.Max {
				out.Max = p.Max
			}
		}
		out.Count += p.Count
		out.Sum += p.Sum
		out.Buckets += p.Buckets
	}
	return out
}

// AggregateIndex answers COUNT/SUM/MIN/MAX over any cell rectangle
// without a single bucket read. It is the record-level sibling of
// cost.PrefixEvaluator: per disk, a k-dimensional exclusive summed-area
// table of record counts (and, per attribute, of value sums) over the
// padded grid, so COUNT and SUM are inclusion–exclusion folds of 2^k
// corners per disk — O(M·2^k) per query regardless of the rectangle's
// volume. MIN and MAX are not invertible under subtraction, so they
// fall back to a per-bucket extrema table walked over the rectangle —
// O(volume) of in-memory probes, still zero disk reads.
//
// The index is a snapshot of the file at build time. It stays safe for
// concurrent use as long as it is left immutable; a holder that keeps
// it current with ApplyInsert takes on that call's single-writer
// contract. Records() lets a holder detect staleness against File.Len()
// and rebuild.
type AggregateIndex struct {
	g       *grid.Grid
	k       int
	disks   int
	f       *gridfile.File
	records int64
	// counts and sums are padded-cell-major with disks entries per
	// cell, exclusive prefix along every axis (see cost.PrefixEvaluator
	// for the layout math).
	counts []int64
	sums   [][]float64 // per attribute
	// pstrides are padded row-major strides pre-multiplied by disks.
	pstrides   []int
	paddedDims []int
	// Per-bucket (raw, not prefix) record counts and attribute extrema
	// for the MIN/MAX walk.
	bucketCount []int64
	bucketMin   [][]float64 // per attribute, valid iff bucketCount > 0
	bucketMax   [][]float64
	// dcoord is ApplyInsert's odometer scratch, len k.
	dcoord []int
}

// BuildAggregateIndex snapshots the file's per-bucket aggregates into
// prefix tables. Construction is O(k·M·buckets + records); a build
// that would overflow the padded table length fails loudly.
func BuildAggregateIndex(f *gridfile.File) (*AggregateIndex, error) {
	if f == nil {
		return nil, fmt.Errorf("batch: nil grid file")
	}
	g := f.Grid()
	k := g.K()
	disks := f.Disks()
	paddedDims := make([]int, k)
	cells := 1
	for i := 0; i < k; i++ {
		paddedDims[i] = g.Dim(i) + 1
		if cells > math.MaxInt/(paddedDims[i]*disks) {
			return nil, fmt.Errorf("batch: aggregate table for grid %v × %d disks overflows", g, disks)
		}
		cells *= paddedDims[i]
	}
	cellStrides := make([]int, k)
	stride := 1
	for i := k - 1; i >= 0; i-- {
		cellStrides[i] = stride
		stride *= paddedDims[i]
	}
	ix := &AggregateIndex{
		g:           g,
		k:           k,
		disks:       disks,
		f:           f,
		counts:      make([]int64, cells*disks),
		sums:        make([][]float64, k),
		pstrides:    make([]int, k),
		paddedDims:  paddedDims,
		bucketCount: make([]int64, g.Buckets()),
		bucketMin:   make([][]float64, k),
		bucketMax:   make([][]float64, k),
		dcoord:      make([]int, k),
	}
	for i := range cellStrides {
		ix.pstrides[i] = cellStrides[i] * disks
	}
	for a := 0; a < k; a++ {
		ix.sums[a] = make([]float64, cells*disks)
		ix.bucketMin[a] = make([]float64, g.Buckets())
		ix.bucketMax[a] = make([]float64, g.Buckets())
	}

	// Scatter per-bucket aggregates at padded cell c+1 (exclusive
	// prefix), reading each bucket through the file's directory — the
	// grid-file API, not a BucketReader, so building and querying the
	// index never count as disk reads.
	method := f.Method()
	var buildErr error
	g.Each(func(c grid.Coord) bool {
		b := g.Linearize(c)
		rs, err := f.CellRangeSearch(grid.Rect{Lo: c, Hi: c})
		if err != nil {
			buildErr = err
			return false
		}
		if len(rs.Records) == 0 {
			return true
		}
		off := 0
		for i, v := range c {
			off += (v + 1) * ix.pstrides[i]
		}
		d := method.DiskOf(c)
		ix.bucketCount[b] = int64(len(rs.Records))
		ix.counts[off+d] += int64(len(rs.Records))
		ix.records += int64(len(rs.Records))
		for a := 0; a < k; a++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			sum := 0.0
			for _, rec := range rs.Records {
				v := rec.Values[a]
				sum += v
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			ix.sums[a][off+d] += sum
			ix.bucketMin[a][b] = lo
			ix.bucketMax[a][b] = hi
		}
		return true
	})
	if buildErr != nil {
		return nil, buildErr
	}

	// Prefix passes along each axis, per disk.
	for axis := 0; axis < k; axis++ {
		axisStride := cellStrides[axis]
		for p := 0; p < cells; p++ {
			if (p/axisStride)%paddedDims[axis] == 0 {
				continue
			}
			dst := p * disks
			src := dst - ix.pstrides[axis]
			for d := 0; d < disks; d++ {
				ix.counts[dst+d] += ix.counts[src+d]
				for a := 0; a < k; a++ {
					ix.sums[a][dst+d] += ix.sums[a][src+d]
				}
			}
		}
	}
	return ix, nil
}

// Records is the record count the index reflects — compare with
// File.Len() to detect staleness.
func (ix *AggregateIndex) Records() int64 { return ix.records }

// ApplyInsert folds one inserted record into the index in place,
// keeping it current without a rebuild: the suffix box of the record's
// cell gains the record in the count and sum prefix tables
// (O(∏ axis-suffix), the same bound as cost.PrefixEvaluator.ApplyDelta)
// and the bucket's extrema widen — extrema only ever widen under
// inserts, which is why this maintenance is insert-only; a delete can
// shrink a min or max and would need the bucket re-scanned. Call it
// with the same record passed to the file's Insert, after that insert
// succeeded. Counts stay exact; sums accumulate in insertion order, so
// they match a from-scratch rebuild only up to floating-point
// re-association.
//
// ApplyInsert mutates tables concurrent Aggregate calls read: the
// holder must serialize it against queries.
func (ix *AggregateIndex) ApplyInsert(rec datagen.Record) error {
	c, err := ix.f.CellOf(rec.Values)
	if err != nil {
		return err
	}
	b := ix.g.Linearize(c)
	d := ix.f.Method().DiskOf(c)
	if ix.bucketCount[b] == 0 {
		for a := 0; a < ix.k; a++ {
			ix.bucketMin[a][b] = rec.Values[a]
			ix.bucketMax[a][b] = rec.Values[a]
		}
	} else {
		for a := 0; a < ix.k; a++ {
			if v := rec.Values[a]; v < ix.bucketMin[a][b] {
				ix.bucketMin[a][b] = v
			} else if v > ix.bucketMax[a][b] {
				ix.bucketMax[a][b] = v
			}
		}
	}
	ix.bucketCount[b]++
	ix.records++

	cur := ix.dcoord
	off := 0
	for i, v := range c {
		cur[i] = v + 1
		off += (v + 1) * ix.pstrides[i]
	}
	for {
		ix.counts[off+d]++
		for a := 0; a < ix.k; a++ {
			ix.sums[a][off+d] += rec.Values[a]
		}
		i := ix.k - 1
		for ; i >= 0; i-- {
			cur[i]++
			off += ix.pstrides[i]
			if cur[i] < ix.paddedDims[i] {
				break
			}
			off -= (cur[i] - c[i] - 1) * ix.pstrides[i]
			cur[i] = c[i] + 1
		}
		if i < 0 {
			return nil
		}
	}
}

// Grid returns the indexed grid.
func (ix *AggregateIndex) Grid() *grid.Grid { return ix.g }

// Aggregate answers one aggregate query from the tables.
func (ix *AggregateIndex) Aggregate(q AggregateQuery) (AggregateResult, error) {
	r := q.Rect
	if len(r.Lo) != ix.k || len(r.Hi) != ix.k {
		return AggregateResult{}, fmt.Errorf("batch: rect %v has %d..%d axes for %d-attribute grid %v",
			r, len(r.Lo), len(r.Hi), ix.k, ix.g)
	}
	for i := range r.Lo {
		if r.Lo[i] > r.Hi[i] {
			return AggregateResult{}, fmt.Errorf("batch: rect %v inverted on axis %d", r, i)
		}
	}
	if !ix.g.Contains(r.Lo) || !ix.g.Contains(r.Hi) {
		return AggregateResult{}, fmt.Errorf("batch: rect %v outside grid %v", r, ix.g)
	}
	if q.Op != OpCount && (q.Attr < 0 || q.Attr >= ix.k) {
		return AggregateResult{}, fmt.Errorf("batch: attribute %d outside [0,%d)", q.Attr, ix.k)
	}

	res := AggregateResult{Op: q.Op, Attr: q.Attr, Buckets: r.Volume(), PerDisk: make([]int64, ix.disks)}
	var sums []float64
	if q.Op == OpSum {
		sums = ix.sums[q.Attr]
	}
	// Inclusion–exclusion over the 2^k corners, per disk; corners with
	// any Lo coordinate at 0 hit the zero boundary plane and are skipped.
	for mask := 0; mask < 1<<uint(ix.k); mask++ {
		off := 0
		neg := false
		skip := false
		for i := 0; i < ix.k; i++ {
			if mask>>uint(i)&1 == 1 {
				if r.Lo[i] == 0 {
					skip = true
					break
				}
				off += r.Lo[i] * ix.pstrides[i]
				neg = !neg
			} else {
				off += (r.Hi[i] + 1) * ix.pstrides[i]
			}
		}
		if skip {
			continue
		}
		sign := int64(1)
		if neg {
			sign = -1
		}
		for d := 0; d < ix.disks; d++ {
			res.PerDisk[d] += sign * ix.counts[off+d]
			if sums != nil {
				res.Sum += float64(sign) * sums[off+d]
			}
		}
	}
	for _, n := range res.PerDisk {
		res.Count += n
	}

	if q.Op == OpMin || q.Op == OpMax {
		mins, maxs := ix.bucketMin[q.Attr], ix.bucketMax[q.Attr]
		first := true
		grid.EachRect(r, func(c grid.Coord) bool {
			b := ix.g.Linearize(c)
			if ix.bucketCount[b] == 0 {
				return true
			}
			if first {
				res.Min, res.Max = mins[b], maxs[b]
				first = false
				return true
			}
			if mins[b] < res.Min {
				res.Min = mins[b]
			}
			if maxs[b] > res.Max {
				res.Max = maxs[b]
			}
			return true
		})
	}
	return res, nil
}
