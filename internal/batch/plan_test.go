package batch

import (
	"reflect"
	"sort"
	"testing"
)

func TestBuildPlanDedup(t *testing.T) {
	// Three members with overlap: bucket 4 shared by all, 7 by two,
	// repeats inside member 2 folded.
	queries := [][]int{
		{4, 7, 1},
		{4, 2},
		{7, 4, 7, 9},
	}
	p := BuildPlan(queries)
	if want := []int{4, 7, 1, 2, 9}; !reflect.DeepEqual(p.Buckets, want) {
		t.Fatalf("Buckets = %v, want first-demand order %v", p.Buckets, want)
	}
	// Member 2 demands 3 distinct buckets (7 folded to one).
	if p.Demand != 3+2+3 {
		t.Fatalf("Demand = %d, want 8", p.Demand)
	}
	if p.Saved() != 8-5 {
		t.Fatalf("Saved = %d, want 3", p.Saved())
	}
	if want := []int{0, 1, 2}; !reflect.DeepEqual(p.Covers[4], want) {
		t.Fatalf("Covers[4] = %v, want %v", p.Covers[4], want)
	}
	if want := []int{0, 2}; !reflect.DeepEqual(p.Covers[7], want) {
		t.Fatalf("Covers[7] = %v, want %v", p.Covers[7], want)
	}
}

func TestPlanOrderPolicies(t *testing.T) {
	p := BuildPlan([][]int{
		{1, 2, 3},
		{3, 2},
		{3},
	})
	if got, want := p.Order(PolicyFIFO), []int{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("FIFO order = %v, want %v", got, want)
	}
	if got, want := p.Order(PolicySharedWorkFirst), []int{3, 2, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("shared-work-first order = %v, want %v", got, want)
	}
	// Order never mutates the plan.
	if want := []int{1, 2, 3}; !reflect.DeepEqual(p.Buckets, want) {
		t.Errorf("Buckets mutated to %v", p.Buckets)
	}
	if PolicyFIFO.String() != "fifo" || PolicySharedWorkFirst.String() != "shared-work-first" {
		t.Errorf("policy names = %q, %q", PolicyFIFO, PolicySharedWorkFirst)
	}
}

// FuzzBatchDedup checks the plan invariants on arbitrary overlapping
// demand sets: both policy orders are permutations of the distinct
// buckets, every query's buckets are covered exactly once per query,
// no read is orphaned (covered by nobody), and the accounting ties out.
func FuzzBatchDedup(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 1, 2})
	f.Add([]byte{1, 5, 5, 5, 5, 5})
	f.Add([]byte{4, 0, 1, 1, 0, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode: first byte = member count (1..8); remaining bytes are
		// bucket demands dealt round-robin to members, mod a small
		// bucket space so overlap is common.
		const buckets = 16
		members := 1
		if len(data) > 0 {
			members = 1 + int(data[0])%8
			data = data[1:]
		}
		queries := make([][]int, members)
		for i, by := range data {
			qi := i % members
			queries[qi] = append(queries[qi], int(by)%buckets)
		}

		p := BuildPlan(queries)

		// Distinct buckets: no duplicates, every one covered.
		seen := make(map[int]bool, len(p.Buckets))
		for _, b := range p.Buckets {
			if seen[b] {
				t.Fatalf("bucket %d listed twice in %v", b, p.Buckets)
			}
			seen[b] = true
			if len(p.Covers[b]) == 0 {
				t.Fatalf("orphan read: bucket %d has no coverers", b)
			}
		}
		if len(p.Covers) != len(p.Buckets) {
			t.Fatalf("%d cover entries for %d distinct buckets", len(p.Covers), len(p.Buckets))
		}

		// Exactly-once cover: each member appears in Covers[b] exactly
		// once per distinct bucket it demands, and never otherwise.
		demand := 0
		for qi, bs := range queries {
			distinct := make(map[int]bool, len(bs))
			for _, b := range bs {
				distinct[b] = true
			}
			demand += len(distinct)
			for b := range distinct {
				n := 0
				for _, c := range p.Covers[b] {
					if c == qi {
						n++
					}
				}
				if n != 1 {
					t.Fatalf("member %d covers bucket %d %d times, want exactly once", qi, b, n)
				}
			}
		}
		for b, covers := range p.Covers {
			for _, qi := range covers {
				found := false
				for _, d := range queries[qi] {
					if d == b {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("member %d listed for bucket %d it never demanded", qi, b)
				}
			}
		}

		// Accounting: Demand is the sum of per-member distinct demand,
		// equivalently the sum of cover list lengths; Saved ≥ 0.
		if p.Demand != demand {
			t.Fatalf("Demand = %d, want %d", p.Demand, demand)
		}
		covered := 0
		for _, c := range p.Covers {
			covered += len(c)
		}
		if covered != p.Demand {
			t.Fatalf("Σ covers = %d, Demand = %d", covered, p.Demand)
		}
		if p.Saved() < 0 {
			t.Fatalf("negative savings %d", p.Saved())
		}

		// Both policies produce permutations of the distinct buckets.
		for _, pol := range []Policy{PolicyFIFO, PolicySharedWorkFirst} {
			ord := p.Order(pol)
			a := append([]int(nil), ord...)
			b := append([]int(nil), p.Buckets...)
			sort.Ints(a)
			sort.Ints(b)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%v order %v is not a permutation of %v", pol, ord, p.Buckets)
			}
		}
		// Shared-work-first is sorted by cover count descending.
		swf := p.Order(PolicySharedWorkFirst)
		for i := 1; i < len(swf); i++ {
			if len(p.Covers[swf[i-1]]) < len(p.Covers[swf[i]]) {
				t.Fatalf("shared-work-first order %v not descending by covers at %d", swf, i)
			}
		}
	})
}
