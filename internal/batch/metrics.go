package batch

import (
	"sync/atomic"

	"decluster/internal/obs"
)

// Stats is a snapshot of the engine's lifetime counters. Identities,
// exact at quiescence:
//
//	Issued == Answered + Failed           (Abandoned ⊆ Failed)
//	Demand == Physical + Deduped + Pruned (so Physical ≤ Demand)
type Stats struct {
	// Issued counts logical queries submitted; Answered those delivered
	// records; Failed the rest — read errors, engine close, and
	// abandonment, the latter also counted in Abandoned.
	Issued, Answered, Failed, Abandoned uint64
	// Groups counts executed batch groups.
	Groups uint64
	// Demand is the logical bucket demand summed over queries; Physical
	// the bucket reads dispatched; Deduped the reads dedup eliminated at
	// plan time; Pruned the planned reads never dispatched because every
	// covering query had already abandoned (or a failed wave aborted the
	// group).
	Demand, Physical, Deduped, Pruned uint64
	// AggIssued/AggAnswered/AggFailed count aggregate queries, which
	// never touch a BucketReader: AggIssued == AggAnswered + AggFailed.
	AggIssued, AggAnswered, AggFailed uint64
}

// batchCounters is the internal atomic mirror of Stats.
type batchCounters struct {
	Issued, Answered, Failed, Abandoned atomic.Uint64
	Groups                              atomic.Uint64
	Demand, Physical, Deduped, Pruned   atomic.Uint64
	AggIssued, AggAnswered, AggFailed   atomic.Uint64
}

// batchMetrics holds the engine's pre-resolved obs handles. The zero
// value (all nil) is the disabled state — every handle no-ops on nil.
// Counters mirror the Stats fields increment-for-increment at the same
// sites, so a conservation test can compare the two exactly.
type batchMetrics struct {
	issued, answered, failed, abandoned *obs.Counter
	groups                              *obs.Counter
	demand, physical, deduped, pruned   *obs.Counter
	aggIssued, aggAnswered, aggFailed   *obs.Counter
	windowWait, queryLatency            *obs.Histogram
	groupLatency                        *obs.Histogram
}

// newBatchMetrics registers the engine's metric set — at construction,
// not lazily, so the dump's name set is deterministic.
func newBatchMetrics(r *obs.Registry) batchMetrics {
	return batchMetrics{
		issued:       r.Counter("batch.queries.issued"),
		answered:     r.Counter("batch.queries.answered"),
		failed:       r.Counter("batch.queries.failed"),
		abandoned:    r.Counter("batch.queries.abandoned"),
		groups:       r.Counter("batch.groups"),
		demand:       r.Counter("batch.demand.buckets"),
		physical:     r.Counter("batch.reads.physical"),
		deduped:      r.Counter("batch.reads.deduped"),
		pruned:       r.Counter("batch.reads.pruned"),
		aggIssued:    r.Counter("batch.aggregate.issued"),
		aggAnswered:  r.Counter("batch.aggregate.answered"),
		aggFailed:    r.Counter("batch.aggregate.failed"),
		windowWait:   r.Histogram("batch.window.wait"),
		queryLatency: r.Histogram("batch.query.latency"),
		groupLatency: r.Histogram("batch.group.latency"),
	}
}
