// Package batch turns the one-query-at-a-time serving path into a
// shared-work engine: in-flight range queries are grouped inside a
// small time/size window, decomposed into bucket demand, and deduped so
// each distinct bucket is read once physically and fanned out to every
// logical query that covers it. The group's physical reads dispatch
// through the caller-supplied ReadFunc — in production the
// serve.Scheduler's bucket-set admission path — so the engine sits
// between admission and exec dispatch without owning either. A
// pluggable policy orders the reads (FIFO vs shared-work-first), and
// per-query cancellation is refcounted: abandoning one query never
// cancels a read another query still needs, while a group whose every
// member abandoned cancels its remaining reads promptly.
//
// Alongside the batch path, the engine answers aggregate queries
// (COUNT/SUM/MIN/MAX over a rectangle) from an AggregateIndex — per-disk
// summed-area tables in the cost.PrefixEvaluator mould — with zero
// bucket reads.
package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"decluster/internal/datagen"
	"decluster/internal/exec"
	"decluster/internal/grid"
	"decluster/internal/gridfile"
	"decluster/internal/obs"
)

// ErrClosed reports a query submitted to an engine that has begun
// closing.
var ErrClosed = errors.New("batch: engine closed")

// ReadFunc executes one physical bucket-set read at the given
// admission priority. The production wiring is
// serve.Scheduler.DoBuckets; tests may substitute anything honouring
// the same contract: distinct buckets in, records in (bucket,
// insertion) order out.
type ReadFunc func(ctx context.Context, buckets []int, priority int) (*exec.Result, error)

// Query is one logical unit of batching: a cell rectangle plus the
// admission priority its group's physical reads inherit (a group runs
// at the maximum priority of its members).
type Query struct {
	Rect     grid.Rect
	Priority int
}

// Answer is one logical query's result.
type Answer struct {
	// Records are the qualifying records in (bucket, insertion) order —
	// bit-identical to the same rectangle issued through the unbatched
	// path.
	Records []datagen.Record
	// Buckets is the number of grid buckets the query covered.
	Buckets int
	// Shared is how many of those buckets at least one other group
	// member also demanded.
	Shared int
	// Degraded reports a degraded (failover-routed) wave served part of
	// this answer.
	Degraded bool
}

// Engine batches logical queries over one grid file.
type Engine struct {
	f      *gridfile.File
	g      *grid.Grid
	run    ReadFunc
	window time.Duration
	max    int
	wave   int
	policy Policy
	ix     *AggregateIndex

	obs     *obs.Sink
	metrics batchMetrics
	stats   batchCounters

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	cur    *group
	closed bool
	wg     sync.WaitGroup
}

// Option configures an Engine.
type Option func(*Engine)

// WithWindow sets the batching window: a group dispatches when its
// oldest member has waited this long (default 2ms). Must be positive.
func WithWindow(d time.Duration) Option { return func(e *Engine) { e.window = d } }

// WithMaxBatch caps a group's size; a full group dispatches without
// waiting out the window (default 16).
func WithMaxBatch(n int) Option { return func(e *Engine) { e.max = n } }

// WithWave bounds the buckets per physical dispatch: a group's plan is
// issued in policy-ordered waves of at most n buckets, each one
// admission unit, and queries complete as soon as their last bucket's
// wave lands. 0 (the default) dispatches the whole plan as one wave —
// maximum dedup throughput, coarsest completion.
func WithWave(n int) Option { return func(e *Engine) { e.wave = n } }

// WithPolicy selects the read-ordering policy (default PolicyFIFO).
func WithPolicy(p Policy) Option { return func(e *Engine) { e.policy = p } }

// WithObserver attaches an observability sink: the engine mirrors its
// counters into batch.* metric families and — when tracing — records a
// span tree per group (plan, waves, savings).
func WithObserver(s *obs.Sink) Option { return func(e *Engine) { e.obs = s } }

// New builds an engine over the file, dispatching physical reads
// through run. It snapshots the file into the aggregate index, so
// build it after loading.
func New(f *gridfile.File, run ReadFunc, opts ...Option) (*Engine, error) {
	if f == nil {
		return nil, fmt.Errorf("batch: nil grid file")
	}
	if run == nil {
		return nil, fmt.Errorf("batch: nil read func")
	}
	e := &Engine{
		f:      f,
		g:      f.Grid(),
		run:    run,
		window: 2 * time.Millisecond,
		max:    16,
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.window <= 0 {
		return nil, fmt.Errorf("batch: non-positive window %v", e.window)
	}
	if e.max < 1 {
		return nil, fmt.Errorf("batch: max batch %d < 1", e.max)
	}
	if e.wave < 0 {
		return nil, fmt.Errorf("batch: negative wave size %d", e.wave)
	}
	ix, err := BuildAggregateIndex(f)
	if err != nil {
		return nil, err
	}
	e.ix = ix
	if e.obs != nil {
		e.metrics = newBatchMetrics(e.obs.Registry())
	}
	e.baseCtx, e.baseCancel = context.WithCancel(context.Background())
	return e, nil
}

// Index returns the engine's aggregate index.
func (e *Engine) Index() *AggregateIndex { return e.ix }

// Stats snapshots the lifetime counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Issued:      e.stats.Issued.Load(),
		Answered:    e.stats.Answered.Load(),
		Failed:      e.stats.Failed.Load(),
		Abandoned:   e.stats.Abandoned.Load(),
		Groups:      e.stats.Groups.Load(),
		Demand:      e.stats.Demand.Load(),
		Physical:    e.stats.Physical.Load(),
		Deduped:     e.stats.Deduped.Load(),
		Pruned:      e.stats.Pruned.Load(),
		AggIssued:   e.stats.AggIssued.Load(),
		AggAnswered: e.stats.AggAnswered.Load(),
		AggFailed:   e.stats.AggFailed.Load(),
	}
}

// Close stops admissions, flushes the open group, waits for in-flight
// groups to finish (their reads still honour the ReadFunc's own
// deadlines and admission), and returns the final counters. A second
// Close returns ErrClosed.
func (e *Engine) Close() (Stats, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return e.Stats(), ErrClosed
	}
	e.closed = true
	g := e.cur
	e.cur = nil
	e.mu.Unlock()
	if g != nil {
		e.launch(g)
	}
	e.wg.Wait()
	e.baseCancel()
	return e.Stats(), nil
}

// Search submits one default-priority query and blocks until its group
// delivers (or ctx ends first — abandoning this query only).
func (e *Engine) Search(ctx context.Context, r grid.Rect) (*Answer, error) {
	return e.Do(ctx, Query{Rect: r})
}

// Do submits one query. The call blocks through the batching window
// and the group's physical reads; cancelling ctx abandons only this
// query — shared reads other members still need are never cancelled.
func (e *Engine) Do(ctx context.Context, q Query) (*Answer, error) {
	e.stats.Issued.Add(1)
	e.metrics.issued.Inc()
	buckets, err := e.bucketsOf(q.Rect)
	if err != nil {
		e.stats.Failed.Add(1)
		e.metrics.failed.Inc()
		return nil, err
	}
	mem, err := e.enqueue(ctx, q, buckets)
	if err != nil {
		e.stats.Failed.Add(1)
		e.metrics.failed.Inc()
		return nil, err
	}
	select {
	case <-mem.done:
		return mem.ans, mem.err
	case <-ctx.Done():
		if mem.state.CompareAndSwap(statePending, stateAbandoned) {
			e.stats.Failed.Add(1)
			e.metrics.failed.Inc()
			e.stats.Abandoned.Add(1)
			e.metrics.abandoned.Inc()
			mem.g.memberDone()
			return nil, ctx.Err()
		}
		// Decided concurrently with our cancellation: honour it.
		<-mem.done
		return mem.ans, mem.err
	}
}

// Aggregate answers one aggregate query straight from the index —
// zero bucket reads by construction.
func (e *Engine) Aggregate(ctx context.Context, q AggregateQuery) (AggregateResult, error) {
	e.stats.AggIssued.Add(1)
	e.metrics.aggIssued.Inc()
	if err := ctx.Err(); err != nil {
		e.stats.AggFailed.Add(1)
		e.metrics.aggFailed.Inc()
		return AggregateResult{}, err
	}
	res, err := e.ix.Aggregate(q)
	if err != nil {
		e.stats.AggFailed.Add(1)
		e.metrics.aggFailed.Inc()
		return AggregateResult{}, err
	}
	e.stats.AggAnswered.Add(1)
	e.metrics.aggAnswered.Inc()
	return res, nil
}

// bucketsOf validates the rect and decomposes it into ascending
// row-major bucket numbers.
func (e *Engine) bucketsOf(r grid.Rect) ([]int, error) {
	if len(r.Lo) != e.g.K() || len(r.Hi) != e.g.K() {
		return nil, fmt.Errorf("batch: rect %v has %d..%d axes for %d-attribute grid %v",
			r, len(r.Lo), len(r.Hi), e.g.K(), e.g)
	}
	for i := range r.Lo {
		if r.Lo[i] > r.Hi[i] {
			return nil, fmt.Errorf("batch: rect %v inverted on axis %d", r, i)
		}
	}
	if !e.g.Contains(r.Lo) || !e.g.Contains(r.Hi) {
		return nil, fmt.Errorf("batch: rect %v outside grid %v", r, e.g)
	}
	out := make([]int, 0, r.Volume())
	grid.EachRect(r, func(c grid.Coord) bool {
		out = append(out, e.g.Linearize(c))
		return true
	})
	return out, nil
}

// Member states.
const (
	statePending int32 = iota
	stateDecided
	stateAbandoned
)

// member is one logical query riding a group.
type member struct {
	rect     grid.Rect
	prio     int
	buckets  []int
	enqueued time.Time
	g        *group

	state atomic.Int32
	ans   *Answer
	err   error
	done  chan struct{}
}

// group collects members until the window closes or the batch fills.
type group struct {
	e       *Engine
	members []*member
	timer   *time.Timer
	// launched is guarded by Engine.mu; exactly one launcher wins.
	// started is its lock-free shadow for memberDone, set just before
	// execute spawns.
	launched bool
	started  atomic.Bool
	// pending counts members not yet decided (answered, failed, or
	// abandoned); incremented as members join, decremented by
	// memberDone. At zero the group's remaining reads are cancelled —
	// nobody needs them.
	pending atomic.Int64
	// ctx/cancel are created with the group (immutable after), so an
	// abandonment landing before the group even executes cancels safely.
	ctx    context.Context
	cancel context.CancelFunc
}

// memberDone records one member's decision; the last one cancels the
// group's remaining physical reads. Before launch the count may
// transiently hit zero and refill as later queries join the window, so
// cancellation waits for started — execute's wave pruning already skips
// a fully-abandoned plan, and its deferred cancel releases the context.
func (g *group) memberDone() {
	if g.pending.Add(-1) == 0 && g.started.Load() {
		g.cancel()
	}
}

// enqueue adds the query to the open group, opening one (and its
// window timer) if needed, and dispatches a full group immediately.
func (e *Engine) enqueue(ctx context.Context, q Query, buckets []int) (*member, error) {
	mem := &member{
		rect:     q.Rect,
		prio:     q.Priority,
		buckets:  buckets,
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if e.cur == nil {
		g := &group{e: e}
		g.ctx, g.cancel = context.WithCancel(e.baseCtx)
		g.timer = time.AfterFunc(e.window, func() { e.launch(g) })
		e.cur = g
	}
	g := e.cur
	mem.g = g
	g.members = append(g.members, mem)
	g.pending.Add(1)
	full := len(g.members) >= e.max
	e.mu.Unlock()
	if full {
		e.launch(g)
	}
	return mem, nil
}

// launch dispatches a group exactly once; timer expiry, a full batch,
// and Close all race here safely.
func (e *Engine) launch(g *group) {
	e.mu.Lock()
	if g.launched {
		e.mu.Unlock()
		return
	}
	g.launched = true
	if e.cur == g {
		e.cur = nil
	}
	e.wg.Add(1)
	e.mu.Unlock()
	if g.timer != nil {
		g.timer.Stop()
	}
	g.started.Store(true)
	if g.pending.Load() == 0 {
		// Every member abandoned before launch; the zero-crossing
		// happened with started unset, so cancel here.
		g.cancel()
	}
	go g.execute()
}

// execute runs one group end to end: plan, policy-ordered waves of
// deduped physical reads, per-bucket fan-out, per-member delivery.
func (g *group) execute() {
	e := g.e
	defer e.wg.Done()
	start := time.Now()
	e.stats.Groups.Add(1)
	e.metrics.groups.Inc()

	members := g.members
	lists := make([][]int, len(members))
	prio := members[0].prio
	for i, m := range members {
		lists[i] = m.buckets
		if m.prio > prio {
			prio = m.prio
		}
		if e.metrics.windowWait != nil {
			e.metrics.windowWait.Observe(time.Since(m.enqueued))
		}
	}
	plan := BuildPlan(lists)
	e.stats.Demand.Add(uint64(plan.Demand))
	e.metrics.demand.Add(uint64(plan.Demand))
	e.stats.Deduped.Add(uint64(plan.Saved()))
	e.metrics.deduped.Add(uint64(plan.Saved()))
	order := plan.Order(e.policy)

	var tr *obs.Trace
	if e.obs.Tracing() {
		tr = e.obs.StartTrace(fmt.Sprintf("batch group n=%d buckets=%d saved=%d %s",
			len(members), len(order), plan.Saved(), e.policy))
		defer e.obs.FinishTrace(tr)
	}

	defer g.cancel()

	waveSize := e.wave
	if waveSize == 0 {
		waveSize = len(order)
	}

	perBucket := make(map[int][]datagen.Record, len(order))
	remaining := make([]int, len(members))
	for i := range members {
		remaining[i] = len(lists[i])
	}
	degraded := false
	dispatched := 0
	var groupErr error

	deliver := func(qi int) {
		m := members[qi]
		if !m.state.CompareAndSwap(statePending, stateDecided) {
			return
		}
		ans := &Answer{Buckets: len(lists[qi]), Degraded: degraded}
		for _, b := range lists[qi] {
			ans.Records = append(ans.Records, perBucket[b]...)
			if len(plan.Covers[b]) > 1 {
				ans.Shared++
			}
		}
		m.ans = ans
		close(m.done)
		e.stats.Answered.Add(1)
		e.metrics.answered.Inc()
		if e.metrics.queryLatency != nil {
			e.metrics.queryLatency.Observe(time.Since(m.enqueued))
		}
		g.memberDone()
	}

	for wi := 0; wi < len(order) && groupErr == nil; wi += waveSize {
		wave := order[wi:min(wi+waveSize, len(order))]
		// Prune buckets nobody pending still covers — reads whose every
		// logical owner abandoned are never dispatched.
		live := make([]int, 0, len(wave))
		for _, b := range wave {
			needed := false
			for _, qi := range plan.Covers[b] {
				if members[qi].state.Load() == statePending {
					needed = true
					break
				}
			}
			if needed {
				live = append(live, b)
			}
		}
		if len(live) == 0 {
			continue
		}
		var wsp *obs.Span
		if tr != nil {
			wsp = tr.Root().Child(fmt.Sprintf("wave %d (%d buckets)", wi/waveSize, len(live)))
		}
		res, err := e.run(g.ctx, live, prio)
		dispatched += len(live)
		if err != nil {
			wsp.FinishErr(err)
			groupErr = err
			break
		}
		wsp.Finish()
		if res.Degraded {
			degraded = true
		}
		for _, rec := range res.Records {
			c, err := e.f.CellOf(rec.Values)
			if err != nil {
				groupErr = fmt.Errorf("batch: record %d maps to no cell: %w", rec.ID, err)
				break
			}
			b := e.g.Linearize(c)
			perBucket[b] = append(perBucket[b], rec)
		}
		if groupErr != nil {
			break
		}
		for _, b := range live {
			for _, qi := range plan.Covers[b] {
				remaining[qi]--
				if remaining[qi] == 0 {
					deliver(qi)
				}
			}
		}
	}

	// Planned reads never dispatched — wave pruning plus an aborted
	// group's tail — all count Pruned, keeping Demand == Physical +
	// Deduped + Pruned exact.
	pruned := len(order) - dispatched
	e.stats.Physical.Add(uint64(dispatched))
	e.metrics.physical.Add(uint64(dispatched))
	e.stats.Pruned.Add(uint64(pruned))
	e.metrics.pruned.Add(uint64(pruned))

	if groupErr == nil {
		groupErr = fmt.Errorf("batch: internal: group finished with undelivered members")
	}
	for _, m := range members {
		if m.state.CompareAndSwap(statePending, stateDecided) {
			m.err = groupErr
			close(m.done)
			e.stats.Failed.Add(1)
			e.metrics.failed.Inc()
			g.memberDone()
			if tr != nil {
				tr.Root().Annotate("failed member")
			}
		}
	}
	if e.metrics.groupLatency != nil {
		e.metrics.groupLatency.Observe(time.Since(start))
	}
}
