package batch_test

import (
	"context"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"decluster/internal/alloc"
	"decluster/internal/batch"
	"decluster/internal/datagen"
	"decluster/internal/exec"
	"decluster/internal/grid"
	"decluster/internal/gridfile"
)

// gatedReader serves bucket reads straight from the grid file, but
// blocks each wave on a token — making "cancel one member mid-batch" a
// deterministic schedule instead of a race.
type gatedReader struct {
	f    *gridfile.File
	gate chan struct{} // one token per wave

	mu    sync.Mutex
	waves [][]int
}

func (r *gatedReader) read(ctx context.Context, buckets []int, prio int) (*exec.Result, error) {
	select {
	case <-r.gate:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	r.mu.Lock()
	r.waves = append(r.waves, append([]int(nil), buckets...))
	r.mu.Unlock()
	res := &exec.Result{}
	g := r.f.Grid()
	c := make(grid.Coord, g.K())
	for _, b := range buckets {
		g.Delinearize(b, c)
		rs, err := r.f.CellRangeSearch(grid.Rect{Lo: c, Hi: c})
		if err != nil {
			return nil, err
		}
		res.Records = append(res.Records, rs.Records...)
	}
	return res, nil
}

// dispatched counts the waves and buckets the reader actually served,
// and how many times bucket `of` was among them.
func (r *gatedReader) dispatched(of int) (waves, buckets, timesRead int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.waves {
		buckets += len(w)
		for _, b := range w {
			if b == of {
				timesRead++
			}
		}
	}
	return len(r.waves), buckets, timesRead
}

func newGatedFile(t *testing.T) (*gridfile.File, *gatedReader) {
	t.Helper()
	g := grid.MustNew(8, 8)
	m, err := alloc.NewHCAM(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := gridfile.New(gridfile.Config{Method: m, PageCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.InsertAll(datagen.Uniform{K: 2, Seed: 3}.Generate(600)); err != nil {
		t.Fatal(err)
	}
	return f, &gatedReader{f: f, gate: make(chan struct{}, 64)}
}

// TestBatchCancellationSharedRead abandons one member before the wave
// holding its shared bucket can run, and requires the read to complete
// untouched for the members that still need it: their answers stay
// bit-identical to a solo run, the shared bucket is read exactly once,
// and no goroutine leaks.
func TestBatchCancellationSharedRead(t *testing.T) {
	before := runtime.NumGoroutine()

	f, rd := newGatedFile(t)
	g := f.Grid()
	eng, err := batch.New(f, rd.read,
		batch.WithWindow(time.Hour), // dispatch by batch-full only
		batch.WithMaxBatch(3),
		batch.WithWave(1),
		batch.WithPolicy(batch.PolicySharedWorkFirst))
	if err != nil {
		t.Fatal(err)
	}

	// Three members sharing cell (0,0): shared-work-first puts that
	// bucket in wave 0, and the gate holds every wave until released,
	// so the whole plan is still undispatched when member 1 abandons.
	qs := []grid.Rect{
		g.MustRect(grid.Coord{0, 0}, grid.Coord{0, 1}),
		g.MustRect(grid.Coord{0, 0}, grid.Coord{1, 0}),
		g.MustRect(grid.Coord{0, 0}, grid.Coord{2, 2}),
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()

	answers := make([]*batch.Answer, len(qs))
	errs := make([]error, len(qs))
	var survivors sync.WaitGroup
	for _, i := range []int{0, 2} {
		survivors.Add(1)
		go func(i int) {
			defer survivors.Done()
			answers[i], errs[i] = eng.Search(context.Background(), qs[i])
		}(i)
	}
	done1 := make(chan struct{})
	go func() {
		defer close(done1)
		answers[1], errs[1] = eng.Search(ctx1, qs[1])
	}()

	// Abandon member 1 and wait for its Search to return — it does not
	// need the gate, so after this the group (launched by the third
	// enqueue) is provably mid-batch with member 1 gone.
	cancel1()
	<-done1
	if errs[1] != context.Canceled {
		t.Fatalf("abandoned member error = %v, want context.Canceled", errs[1])
	}

	// Release more tokens than the plan has waves and let the group run.
	for i := 0; i < 16; i++ {
		rd.gate <- struct{}{}
	}
	survivors.Wait()

	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Fatalf("surviving member %d failed: %v", i, errs[i])
		}
		want, err := f.CellRangeSearch(qs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(answers[i].Records, want.Records) {
			t.Fatalf("surviving member %d: %d records, want %d — shared read corrupted by cancellation",
				i, len(answers[i].Records), len(want.Records))
		}
	}

	st, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Issued != 3 || st.Answered != 2 || st.Failed != 1 || st.Abandoned != 1 {
		t.Fatalf("stats = %+v, want issued 3, answered 2, failed 1, abandoned 1", st)
	}
	if st.Demand != st.Physical+st.Deduped+st.Pruned {
		t.Fatalf("Demand %d != Physical %d + Deduped %d + Pruned %d",
			st.Demand, st.Physical, st.Deduped, st.Pruned)
	}

	// The shared bucket was read exactly once — not cancelled with
	// member 1, not re-read for the survivors.
	if _, _, n := rd.dispatched(g.Linearize(grid.Coord{0, 0})); n != 1 {
		t.Fatalf("shared bucket read %d times, want exactly once", n)
	}

	// No goroutine leak: everything the engine spawned has exited.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines: %d before, %d after close", before, now)
	}
}

// TestBatchCancellationPrunesSoleReads abandons the only owner of two
// buckets before its waves dispatch and requires the engine to prune
// those reads rather than issue them for nobody.
func TestBatchCancellationPrunesSoleReads(t *testing.T) {
	f, rd := newGatedFile(t)
	g := f.Grid()
	eng, err := batch.New(f, rd.read,
		batch.WithWindow(40*time.Millisecond), // launch by window expiry
		batch.WithMaxBatch(4),
		batch.WithWave(1))
	if err != nil {
		t.Fatal(err)
	}

	q0 := g.MustRect(grid.Coord{0, 0}, grid.Coord{0, 0}) // one shared-nothing bucket
	q1 := g.MustRect(grid.Coord{5, 5}, grid.Coord{5, 6}) // two buckets, solely owned

	var ans0 *batch.Answer
	var err0, err1 error
	done0, done1 := make(chan struct{}), make(chan struct{})
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	go func() {
		defer close(done0)
		ans0, err0 = eng.Search(context.Background(), q0)
	}()
	go func() {
		defer close(done1)
		_, err1 = eng.Search(ctx1, q1)
	}()

	// Both members join the window; abandoning member 1 completes well
	// inside it, so by launch time its two buckets have no live owner.
	cancel1()
	<-done1
	if err1 != context.Canceled {
		t.Fatalf("abandoned member error = %v, want context.Canceled", err1)
	}
	for i := 0; i < 8; i++ {
		rd.gate <- struct{}{}
	}
	<-done0
	if err0 != nil {
		t.Fatalf("surviving member failed: %v", err0)
	}
	want, err := f.CellRangeSearch(q0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ans0.Records, want.Records) {
		t.Fatalf("surviving member got %d records, want %d", len(ans0.Records), len(want.Records))
	}

	st, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Physical != 1 || st.Pruned != 2 {
		t.Fatalf("Physical = %d, Pruned = %d; want 1 dispatched, 2 pruned", st.Physical, st.Pruned)
	}
	if st.Demand != st.Physical+st.Deduped+st.Pruned {
		t.Fatalf("Demand %d != Physical %d + Deduped %d + Pruned %d",
			st.Demand, st.Physical, st.Deduped, st.Pruned)
	}
	if waves, buckets, _ := rd.dispatched(0); waves != 1 || buckets != 1 {
		t.Fatalf("reader served %d waves / %d buckets, want exactly 1/1", waves, buckets)
	}
}
