package batch

import (
	"math"
	"math/rand"
	"testing"

	"decluster/internal/alloc"
	"decluster/internal/datagen"
	"decluster/internal/grid"
	"decluster/internal/gridfile"
)

// TestApplyInsertMatchesRebuild is the differential obligation of
// insert maintenance: an index kept current with ApplyInsert must
// answer every aggregate like one rebuilt from scratch over the grown
// file — counts, extrema, and per-disk splits exactly; sums up to
// floating-point re-association.
func TestApplyInsertMatchesRebuild(t *testing.T) {
	g := grid.MustNew(9, 7)
	m, err := alloc.NewHCAM(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := gridfile.New(gridfile.Config{Method: m, PageCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.InsertAll(datagen.Uniform{K: 2, Seed: 3}.Generate(500)); err != nil {
		t.Fatal(err)
	}
	ix, err := BuildAggregateIndex(f)
	if err != nil {
		t.Fatal(err)
	}
	grown := datagen.Uniform{K: 2, Seed: 17}.Generate(700)
	for _, rec := range grown {
		if err := f.Insert(rec); err != nil {
			t.Fatal(err)
		}
		if err := ix.ApplyInsert(rec); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Records() != int64(f.Len()) {
		t.Fatalf("maintained index reflects %d records, file has %d", ix.Records(), f.Len())
	}
	rebuilt, err := BuildAggregateIndex(f)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	ops := []AggregateOp{OpCount, OpSum, OpMin, OpMax}
	for i := 0; i < 300; i++ {
		lo := grid.Coord{rng.Intn(9), rng.Intn(7)}
		hi := grid.Coord{lo[0] + rng.Intn(9-lo[0]), lo[1] + rng.Intn(7-lo[1])}
		q := AggregateQuery{Rect: grid.Rect{Lo: lo, Hi: hi}, Op: ops[i%len(ops)], Attr: i % 2}
		got, err := ix.Aggregate(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := rebuilt.Aggregate(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != want.Count {
			t.Fatalf("%v: maintained count %d, rebuilt %d", q, got.Count, want.Count)
		}
		for d := range got.PerDisk {
			if got.PerDisk[d] != want.PerDisk[d] {
				t.Fatalf("%v: disk %d maintained %d, rebuilt %d", q, d, got.PerDisk[d], want.PerDisk[d])
			}
		}
		if q.Op == OpSum && math.Abs(got.Sum-want.Sum) > 1e-9*math.Max(1, math.Abs(want.Sum)) {
			t.Fatalf("%v: maintained sum %v, rebuilt %v", q, got.Sum, want.Sum)
		}
		if (q.Op == OpMin || q.Op == OpMax) && (got.Min != want.Min || got.Max != want.Max) {
			t.Fatalf("%v: maintained extrema [%v, %v], rebuilt [%v, %v]",
				q, got.Min, got.Max, want.Min, want.Max)
		}
	}
}

// TestApplyInsertRejectsBadRecord pins validation: arity and range
// errors surface without touching the tables.
func TestApplyInsertRejectsBadRecord(t *testing.T) {
	g := grid.MustNew(4, 4)
	m, err := alloc.NewDM(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := gridfile.New(gridfile.Config{Method: m, PageCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildAggregateIndex(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.ApplyInsert(datagen.Record{Values: []float64{0.5}}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := ix.ApplyInsert(datagen.Record{Values: []float64{0.5, 1.5}}); err == nil {
		t.Error("out-of-range value accepted")
	}
	if ix.Records() != 0 {
		t.Errorf("rejected inserts changed the record count to %d", ix.Records())
	}
}
