package batch

import "sort"

// Policy orders a plan's physical reads.
type Policy int

const (
	// PolicyFIFO dispatches buckets in first-demand order: the order in
	// which arriving queries first asked for them. Queries tend to
	// complete in arrival order.
	PolicyFIFO Policy = iota
	// PolicySharedWorkFirst dispatches the most-shared buckets first
	// (cover count descending, first-demand order within a tie), so
	// each early read unblocks the largest number of logical queries —
	// the ordering that maximizes queries-answered-per-read when waves
	// are smaller than the plan.
	PolicySharedWorkFirst
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyFIFO:
		return "fifo"
	case PolicySharedWorkFirst:
		return "shared-work-first"
	default:
		return "unknown"
	}
}

// Plan is the deduped read plan of one batch group: every distinct
// bucket any member query demands, read once, fanned out to every
// member that covers it. Building a plan is pure bookkeeping — no I/O
// — which is what lets the fuzz target check its invariants exhaustively.
type Plan struct {
	// Queries holds each member's demanded buckets as given. Repeats
	// within one member are folded — a query needs a bucket once.
	Queries [][]int
	// Buckets lists the distinct buckets in first-demand order: the
	// order in which scanning members 0..n-1, bucket lists in order,
	// first encounters them.
	Buckets []int
	// Covers maps each distinct bucket to the member indices demanding
	// it, in member order, each member at most once.
	Covers map[int][]int
	// Demand is the total logical demand: Σ over members of their
	// distinct bucket count.
	Demand int
}

// BuildPlan folds the members' bucket lists into a deduped plan.
func BuildPlan(queries [][]int) *Plan {
	p := &Plan{Queries: queries, Covers: make(map[int][]int)}
	for qi, bs := range queries {
		for _, b := range bs {
			covers := p.Covers[b]
			if n := len(covers); n > 0 && covers[n-1] == qi {
				continue // repeat within the same member
			}
			if len(covers) == 0 {
				p.Buckets = append(p.Buckets, b)
			}
			p.Covers[b] = append(covers, qi)
			p.Demand++
		}
	}
	return p
}

// Saved is the reads dedup eliminates: logical demand minus the
// physical reads a full dispatch performs.
func (p *Plan) Saved() int { return p.Demand - len(p.Buckets) }

// Order returns the dispatch order of the plan's distinct buckets
// under the policy. The result is always a permutation of p.Buckets.
func (p *Plan) Order(policy Policy) []int {
	out := append([]int(nil), p.Buckets...)
	if policy == PolicySharedWorkFirst {
		sort.SliceStable(out, func(i, j int) bool {
			return len(p.Covers[out[i]]) > len(p.Covers[out[j]])
		})
	}
	return out
}
