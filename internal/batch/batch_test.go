// The engine tests live in an external package so they can wire the
// production read path — serve.Scheduler.DoBuckets — without a cycle
// (batch deliberately does not import serve).
package batch_test

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"decluster/internal/alloc"
	"decluster/internal/batch"
	"decluster/internal/datagen"
	"decluster/internal/exec"
	"decluster/internal/fault"
	"decluster/internal/grid"
	"decluster/internal/gridfile"
	"decluster/internal/obs"
	"decluster/internal/replica"
	"decluster/internal/serve"
)

// fixture is the full stack under one grid file: scheduler for the
// unbatched control path, engine for the batched path, sink for the
// obs assertions.
type fixture struct {
	g     *grid.Grid
	f     *gridfile.File
	sched *serve.Scheduler
	eng   *batch.Engine
	sink  *obs.Sink
	inj   *fault.Injector
}

// newFixture builds a 12×12 grid over 4 disks with 2000 records. With
// chaos it adds transient faults, a straggler, and chained-replica
// failover, with retries generous enough that every read eventually
// succeeds — the differential tests compare payloads, so shed/failed
// outcomes are kept out by construction (no tight queue, no breaker).
func newFixture(t testing.TB, chaos bool, engOpts ...batch.Option) *fixture {
	t.Helper()
	g := grid.MustNew(12, 12)
	m, err := alloc.NewHCAM(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := gridfile.New(gridfile.Config{Method: m, PageCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.InsertAll(datagen.Uniform{K: 2, Seed: 11}.Generate(2000)); err != nil {
		t.Fatal(err)
	}

	sink := obs.NewSink()
	opts := []serve.Option{
		serve.WithAdmission(serve.AdmissionConfig{MaxInFlight: 8, MaxQueue: 256}),
		serve.WithDrainTimeout(10 * time.Second),
		serve.WithObserver(sink),
	}
	fx := &fixture{g: g, f: f, sink: sink}
	if chaos {
		rep, err := replica.NewChained(m)
		if err != nil {
			t.Fatal(err)
		}
		inj, err := fault.New(fault.Config{
			Seed:          31,
			TransientProb: 0.2,
			Stragglers:    map[int]float64{2: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		inj.FlipDisks([]int{1}, nil) // disk 1 down: every read reroutes
		fx.inj = inj
		opts = append(opts,
			serve.WithFaults(inj),
			serve.WithFailover(rep),
			serve.WithRetry(exec.RetryPolicy{MaxAttempts: 10, BaseBackoff: 20 * time.Microsecond, MaxBackoff: time.Millisecond}),
			serve.WithBaseLatency(50*time.Microsecond),
		)
	}
	sched, err := serve.New(f, opts...)
	if err != nil {
		t.Fatal(err)
	}
	fx.sched = sched
	run := func(ctx context.Context, buckets []int, prio int) (*exec.Result, error) {
		return sched.DoBuckets(ctx, serve.BucketQuery{Buckets: buckets, Priority: prio})
	}
	engOpts = append([]batch.Option{batch.WithObserver(sink)}, engOpts...)
	eng, err := batch.New(f, run, engOpts...)
	if err != nil {
		t.Fatal(err)
	}
	fx.eng = eng
	t.Cleanup(func() {
		fx.eng.Close()
		fx.sched.Close()
	})
	return fx
}

// rects returns nr pseudo-random query rectangles drawn from a small
// pool so concurrent submissions overlap heavily.
func rects(g *grid.Grid, seed int64, nr int) []grid.Rect {
	rng := rand.New(rand.NewSource(seed))
	pool := make([]grid.Rect, 8)
	for i := range pool {
		w, h := 1+rng.Intn(5), 1+rng.Intn(5)
		x, y := rng.Intn(g.Dim(0)-w+1), rng.Intn(g.Dim(1)-h+1)
		pool[i] = g.MustRect(grid.Coord{x, y}, grid.Coord{x + w - 1, y + h - 1})
	}
	out := make([]grid.Rect, nr)
	for i := range out {
		out[i] = pool[rng.Intn(len(pool))]
	}
	return out
}

// diffBatch issues the rect set through the engine concurrently and
// through the scheduler individually, then requires bit-identical
// record sequences per query.
func diffBatch(t *testing.T, fx *fixture, qs []grid.Rect) {
	t.Helper()
	answers := make([]*batch.Answer, len(qs))
	errs := make([]error, len(qs))
	var wg sync.WaitGroup
	for i, r := range qs {
		wg.Add(1)
		go func(i int, r grid.Rect) {
			defer wg.Done()
			answers[i], errs[i] = fx.eng.Search(context.Background(), r)
		}(i, r)
	}
	wg.Wait()
	for i, r := range qs {
		if errs[i] != nil {
			t.Fatalf("batched query %d %v: %v", i, r, errs[i])
		}
		want, err := fx.sched.Do(context.Background(), serve.Query{Rect: r})
		if err != nil {
			t.Fatalf("unbatched query %d %v: %v", i, r, err)
		}
		if !reflect.DeepEqual(answers[i].Records, want.Records) {
			t.Fatalf("query %d %v: batched answer (%d records) differs from unbatched (%d records)",
				i, r, len(answers[i].Records), len(want.Records))
		}
		if answers[i].Buckets != r.Volume() {
			t.Errorf("query %d: Buckets = %d, want %d", i, answers[i].Buckets, r.Volume())
		}
	}
}

func TestBatchDifferentialHealthy(t *testing.T) {
	fx := newFixture(t, false, batch.WithWindow(3*time.Millisecond), batch.WithMaxBatch(8))
	diffBatch(t, fx, rects(fx.g, 1, 24))

	st := fx.eng.Stats()
	if st.Issued != 24 || st.Answered != 24 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want 24 issued, 24 answered", st)
	}
	if st.Issued != st.Answered+st.Failed {
		t.Fatalf("Issued %d != Answered %d + Failed %d", st.Issued, st.Answered, st.Failed)
	}
	if st.Demand != st.Physical+st.Deduped+st.Pruned {
		t.Fatalf("Demand %d != Physical %d + Deduped %d + Pruned %d",
			st.Demand, st.Physical, st.Deduped, st.Pruned)
	}
	if st.Deduped == 0 {
		t.Error("overlapping pool produced no dedup savings; batching untested")
	}
}

func TestBatchDifferentialChaos(t *testing.T) {
	for _, pol := range []batch.Policy{batch.PolicyFIFO, batch.PolicySharedWorkFirst} {
		t.Run(pol.String(), func(t *testing.T) {
			fx := newFixture(t, true,
				batch.WithWindow(3*time.Millisecond),
				batch.WithMaxBatch(6),
				batch.WithWave(4),
				batch.WithPolicy(pol))
			diffBatch(t, fx, rects(fx.g, 7, 18))
			st := fx.eng.Stats()
			if st.Answered != 18 {
				t.Fatalf("answered %d of 18 under chaos", st.Answered)
			}
			if st.Demand != st.Physical+st.Deduped+st.Pruned {
				t.Fatalf("Demand %d != Physical %d + Deduped %d + Pruned %d",
					st.Demand, st.Physical, st.Deduped, st.Pruned)
			}
		})
	}
}

func TestAggregateMatchesNaive(t *testing.T) {
	fx := newFixture(t, false)
	rng := rand.New(rand.NewSource(42))
	reads := func() uint64 { return fx.sink.Registry().Counter("exec.read.calls").Value() }

	for i := 0; i < 40; i++ {
		w, h := 1+rng.Intn(8), 1+rng.Intn(8)
		x, y := rng.Intn(fx.g.Dim(0)-w+1), rng.Intn(fx.g.Dim(1)-h+1)
		r := fx.g.MustRect(grid.Coord{x, y}, grid.Coord{x + w - 1, y + h - 1})
		attr := rng.Intn(fx.g.K())

		// Naive answer from the record-level unbatched path.
		res, err := fx.sched.Do(context.Background(), serve.Query{Rect: r})
		if err != nil {
			t.Fatal(err)
		}
		count := int64(len(res.Records))
		sum, lo, hi := 0.0, math.Inf(1), math.Inf(-1)
		for _, rec := range res.Records {
			v := rec.Values[attr]
			sum += v
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}

		before := reads()
		for _, tc := range []struct {
			op   batch.AggregateOp
			want float64
		}{
			{batch.OpCount, float64(count)},
			{batch.OpSum, sum},
			{batch.OpMin, lo},
			{batch.OpMax, hi},
		} {
			agg, err := fx.eng.Aggregate(context.Background(), batch.AggregateQuery{Rect: r, Op: tc.op, Attr: attr})
			if err != nil {
				t.Fatalf("%v over %v: %v", tc.op, r, err)
			}
			if agg.Count != count {
				t.Fatalf("%v over %v: Count = %d, want %d", tc.op, r, agg.Count, count)
			}
			if agg.Buckets != r.Volume() {
				t.Fatalf("%v over %v: Buckets = %d, want %d", tc.op, r, agg.Buckets, r.Volume())
			}
			var got float64
			switch tc.op {
			case batch.OpCount:
				got = float64(agg.Count)
			case batch.OpSum:
				got = agg.Sum
			case batch.OpMin:
				got = agg.Min
			case batch.OpMax:
				got = agg.Max
			}
			if count == 0 && (tc.op == batch.OpMin || tc.op == batch.OpMax) {
				continue // extrema undefined on empty rects
			}
			if tc.op == batch.OpSum {
				// Summed-area folds reorder float additions; everything
				// else must be exact.
				if math.Abs(got-tc.want) > 1e-9*math.Max(1, math.Abs(tc.want)) {
					t.Fatalf("%v over %v attr %d: %g, want %g", tc.op, r, attr, got, tc.want)
				}
			} else if got != tc.want {
				t.Fatalf("%v over %v attr %d: %g, want %g", tc.op, r, attr, got, tc.want)
			}
		}
		// The aggregate kernel is disk-free: the exec read counter must
		// not move across the four aggregate calls.
		if after := reads(); after != before {
			t.Fatalf("aggregates performed %d bucket reads, want 0", after-before)
		}
	}

	st := fx.eng.Stats()
	if st.AggIssued != 160 || st.AggAnswered != 160 || st.AggFailed != 0 {
		t.Fatalf("aggregate stats = %+v, want 160/160/0", st)
	}
	// Per-disk counts from the corner fold must re-add to the total.
	agg, err := fx.eng.Aggregate(context.Background(), batch.AggregateQuery{Rect: fx.g.FullRect(), Op: batch.OpCount})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != int64(fx.f.Len()) {
		t.Fatalf("full-grid count = %d, want %d", agg.Count, fx.f.Len())
	}
	var perDisk int64
	for _, n := range agg.PerDisk {
		perDisk += n
	}
	if perDisk != agg.Count {
		t.Fatalf("Σ PerDisk = %d, Count = %d", perDisk, agg.Count)
	}
}

func TestAggregateMergeAndErrors(t *testing.T) {
	fx := newFixture(t, false)
	// Split the grid in half vertically; merged halves must equal the
	// whole for every op.
	whole := fx.g.FullRect()
	left := fx.g.MustRect(grid.Coord{0, 0}, grid.Coord{5, 11})
	right := fx.g.MustRect(grid.Coord{6, 0}, grid.Coord{11, 11})
	for _, op := range []batch.AggregateOp{batch.OpCount, batch.OpSum, batch.OpMin, batch.OpMax} {
		q := batch.AggregateQuery{Op: op, Attr: 1}
		q.Rect = whole
		want, err := fx.eng.Aggregate(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		var parts []batch.AggregateResult
		for _, r := range []grid.Rect{left, right} {
			q.Rect = r
			p, err := fx.eng.Aggregate(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			parts = append(parts, p)
		}
		got := batch.MergeAggregates(op, 1, parts)
		if got.Count != want.Count || got.Buckets != want.Buckets ||
			math.Abs(got.Sum-want.Sum) > 1e-9*math.Abs(want.Sum) ||
			got.Min != want.Min || got.Max != want.Max {
			t.Fatalf("%v: merged halves %+v != whole %+v", op, got, want)
		}
	}

	bad := []batch.AggregateQuery{
		{Rect: grid.Rect{Lo: grid.Coord{0}, Hi: grid.Coord{0}}, Op: batch.OpCount},
		{Rect: fx.g.MustRect(grid.Coord{0, 0}, grid.Coord{0, 0}), Op: batch.OpSum, Attr: 5},
		{Rect: grid.Rect{Lo: grid.Coord{3, 3}, Hi: grid.Coord{2, 2}}, Op: batch.OpCount},
	}
	for _, q := range bad {
		if _, err := fx.eng.Aggregate(context.Background(), q); err == nil {
			t.Errorf("aggregate %+v: expected validation error", q)
		}
	}
	st := fx.eng.Stats()
	if st.AggIssued != st.AggAnswered+st.AggFailed {
		t.Fatalf("AggIssued %d != AggAnswered %d + AggFailed %d", st.AggIssued, st.AggAnswered, st.AggFailed)
	}
	if st.AggFailed != uint64(len(bad)) {
		t.Fatalf("AggFailed = %d, want %d", st.AggFailed, len(bad))
	}

	if _, err := batch.ParseAggregateOp("median"); err == nil {
		t.Error("ParseAggregateOp accepted unknown op")
	}
	for _, op := range []batch.AggregateOp{batch.OpCount, batch.OpSum, batch.OpMin, batch.OpMax} {
		back, err := batch.ParseAggregateOp(op.String())
		if err != nil || back != op {
			t.Errorf("op %v does not round-trip: %v, %v", op, back, err)
		}
	}
}

func TestEngineCloseRejectsNewQueries(t *testing.T) {
	fx := newFixture(t, false)
	if _, err := fx.eng.Search(context.Background(), fx.g.MustRect(grid.Coord{0, 0}, grid.Coord{1, 1})); err != nil {
		t.Fatal(err)
	}
	st, err := fx.eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Issued != 1 || st.Answered != 1 {
		t.Fatalf("stats at close = %+v", st)
	}
	if _, err := fx.eng.Search(context.Background(), fx.g.MustRect(grid.Coord{0, 0}, grid.Coord{1, 1})); err != batch.ErrClosed {
		t.Fatalf("post-close search error = %v, want ErrClosed", err)
	}
	if _, err := fx.eng.Close(); err != batch.ErrClosed {
		t.Fatalf("second close error = %v, want ErrClosed", err)
	}
}
