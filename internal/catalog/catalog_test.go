package catalog

import (
	"bytes"
	"strings"
	"testing"

	"decluster/internal/advisor"
	"decluster/internal/datagen"
	"decluster/internal/grid"
	"decluster/internal/query"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero disks accepted")
	}
	c, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Disks() != 8 || len(c.Names()) != 0 {
		t.Error("fresh catalog state wrong")
	}
}

func TestCreateAndGet(t *testing.T) {
	c, _ := New(8)
	g := grid.MustNew(16, 16)
	r, err := c.Create("orders", g, "HCAM", 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "orders" || r.Method().Name() != "HCAM" || r.File() == nil {
		t.Error("relation state wrong")
	}
	got, err := c.Get("orders")
	if err != nil || got != r {
		t.Error("Get failed")
	}
	if _, err := c.Get("nope"); err == nil {
		t.Error("missing relation returned")
	}
}

func TestCreateValidation(t *testing.T) {
	c, _ := New(8)
	g := grid.MustNew(16, 16)
	if _, err := c.Create("", g, "DM", 0); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := c.Create("r", g, "unknown-method", 0); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := c.Create("r", g, "DM", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("r", g, "FX", 0); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestNamesSorted(t *testing.T) {
	c, _ := New(4)
	g := grid.MustNew(8, 8)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := c.Create(n, g, "DM", 0); err != nil {
			t.Fatal(err)
		}
	}
	names := c.Names()
	if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
		t.Fatalf("Names = %v", names)
	}
}

func TestDrop(t *testing.T) {
	c, _ := New(4)
	g := grid.MustNew(8, 8)
	if _, err := c.Create("r", g, "DM", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("r"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("r"); err == nil {
		t.Error("double drop accepted")
	}
	if len(c.Names()) != 0 {
		t.Error("relation survived drop")
	}
}

func TestInsertAndRangeSearch(t *testing.T) {
	c, _ := New(4)
	g := grid.MustNew(16, 16)
	if _, err := c.Create("points", g, "HCAM", 0); err != nil {
		t.Fatal(err)
	}
	recs := datagen.Uniform{K: 2, Seed: 3}.Generate(500)
	if err := c.Insert("points", recs); err != nil {
		t.Fatal(err)
	}
	rs, err := c.RangeSearch("points", []float64{0.2, 0.2}, []float64{0.8, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Records) == 0 {
		t.Fatal("no results")
	}
	if err := c.Insert("missing", recs); err == nil {
		t.Error("insert into missing relation accepted")
	}
	if _, err := c.RangeSearch("missing", []float64{0, 0}, []float64{0.5, 0.5}); err == nil {
		t.Error("query on missing relation accepted")
	}
}

func TestCreateAdvised(t *testing.T) {
	c, _ := New(16)
	g := grid.MustNew(64, 64)
	qs, err := query.Placements(g, []int{1, 32}, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	mix := []advisor.WorkloadClass{{
		Workload: query.Workload{Name: "rows", Queries: qs},
		Weight:   1,
	}}
	r, rec, err := c.CreateAdvised("scans", g, mix, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Method().Name() == "HCAM" {
		t.Error("advisor elected HCAM for row scans; modulo family expected")
	}
	if rec.Best() == "" {
		t.Error("no recommendation")
	}
	// The created relation's method matches the recommendation (modulo
	// the FX* alias resolving to FX or ExFX underneath).
	best := rec.Best()
	if best == "FX*" {
		if n := r.Method().Name(); n != "FX" && n != "ExFX" {
			t.Errorf("FX* resolved to %s", n)
		}
	} else if r.Method().Name() != best {
		t.Errorf("relation method %s != recommendation %s", r.Method().Name(), best)
	}
}

func TestRedecluster(t *testing.T) {
	c, _ := New(8)
	g := grid.MustNew(16, 16)
	if _, err := c.Create("r", g, "DM", 0); err != nil {
		t.Fatal(err)
	}
	recs := datagen.Uniform{K: 2, Seed: 7}.Generate(1000)
	if err := c.Insert("r", recs); err != nil {
		t.Fatal(err)
	}
	before, _ := c.RangeSearch("r", []float64{0.1, 0.1}, []float64{0.6, 0.6})

	moved, err := c.Redecluster("r", "HCAM")
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Error("no buckets moved between DM and HCAM")
	}
	r, _ := c.Get("r")
	if r.Method().Name() != "HCAM" {
		t.Errorf("method after redecluster = %s", r.Method().Name())
	}
	if r.File().Len() != 1000 {
		t.Fatalf("records lost: %d", r.File().Len())
	}
	after, err := c.RangeSearch("r", []float64{0.1, 0.1}, []float64{0.6, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Records) != len(before.Records) {
		t.Fatalf("query results changed: %d vs %d", len(after.Records), len(before.Records))
	}
}

func TestRedeclusterValidation(t *testing.T) {
	c, _ := New(8)
	if _, err := c.Redecluster("missing", "DM"); err == nil {
		t.Error("missing relation accepted")
	}
	g := grid.MustNew(12, 12) // non-pow2
	if _, err := c.Create("r", g, "DM", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Redecluster("r", "ECC"); err == nil {
		t.Error("inapplicable target method accepted")
	}
	// Failure must leave the relation untouched.
	r, _ := c.Get("r")
	if r.Method().Name() != "DM" {
		t.Error("failed redecluster mutated the relation")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c, _ := New(8)
	g1 := grid.MustNew(16, 16)
	g2 := grid.MustNew(8, 8, 8)
	if _, err := c.Create("orders", g1, "HCAM", 64); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("events", g2, "DM", 0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Disks() != 8 {
		t.Error("disks lost")
	}
	names := loaded.Names()
	if len(names) != 2 || names[0] != "events" || names[1] != "orders" {
		t.Fatalf("Names = %v", names)
	}
	orders, _ := loaded.Get("orders")
	if orders.Method().Name() != "HCAM" || orders.File().PageCapacity() != 64 {
		t.Error("orders metadata lost")
	}
	events, _ := loaded.Get("events")
	if events.Method().Grid().K() != 3 {
		t.Error("events grid lost")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("nope")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"version":9,"disks":2}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := Load(strings.NewReader(`{"version":1,"disks":0}`)); err == nil {
		t.Error("zero disks accepted")
	}
}

func TestDumpLoadData(t *testing.T) {
	c, _ := New(4)
	g := grid.MustNew(8, 8)
	if _, err := c.Create("r", g, "HCAM", 0); err != nil {
		t.Fatal(err)
	}
	recs := datagen.Uniform{K: 2, Seed: 13}.Generate(300)
	if err := c.Insert("r", recs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.DumpData("r", &buf); err != nil {
		t.Fatal(err)
	}
	// Restore into a fresh catalog with a different method.
	c2, _ := New(4)
	if _, err := c2.Create("r", g, "DM", 0); err != nil {
		t.Fatal(err)
	}
	if err := c2.LoadData("r", &buf); err != nil {
		t.Fatal(err)
	}
	r2, _ := c2.Get("r")
	if r2.File().Len() != 300 {
		t.Fatalf("restored %d records, want 300", r2.File().Len())
	}
	if err := c.DumpData("missing", &buf); err == nil {
		t.Error("dump of missing relation accepted")
	}
	if err := c2.LoadData("missing", &buf); err == nil {
		t.Error("load into missing relation accepted")
	}
}
