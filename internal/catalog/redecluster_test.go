package catalog

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"decluster/internal/datagen"
	"decluster/internal/exec"
	"decluster/internal/fault"
	"decluster/internal/grid"
)

// sortedIDs flattens a record slice to sorted IDs for set comparison.
func sortedIDs(recs []datagen.Record) []int {
	ids := make([]int, len(recs))
	for i, r := range recs {
		ids[i] = r.ID
	}
	sort.Ints(ids)
	return ids
}

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Redecluster is a physical reorganization only: every range and
// partial-match answer must be identical before and after, even when
// queries run through a fault-injected executor that is retrying
// transient read errors against the migrated file.
func TestRedeclusterDifferential(t *testing.T) {
	c, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	g := grid.MustNew(16, 16)
	if _, err := c.Create("orders", g, "DM", 8); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("orders", (datagen.Uniform{K: 2, Seed: 41}).Generate(4000)); err != nil {
		t.Fatal(err)
	}

	// A fixed workload: value-range queries, partial matches, and exact
	// cell rectangles for the fault-injected executor path.
	rng := rand.New(rand.NewSource(19))
	type rangeQ struct{ lo, hi []float64 }
	var ranges []rangeQ
	for i := 0; i < 25; i++ {
		lo := []float64{rng.Float64(), rng.Float64()}
		hi := []float64{lo[0] + rng.Float64()*(1-lo[0]), lo[1] + rng.Float64()*(1-lo[1])}
		ranges = append(ranges, rangeQ{lo, hi})
	}
	type pmQ struct {
		vals      []float64
		specified []bool
	}
	var pms []pmQ
	for i := 0; i < 25; i++ {
		pms = append(pms, pmQ{
			vals:      []float64{rng.Float64(), rng.Float64()},
			specified: []bool{i%2 == 0, i%2 == 1},
		})
	}
	var rects []grid.Rect
	for i := 0; i < 25; i++ {
		a0, b0 := rng.Intn(16), rng.Intn(16)
		a1, b1 := rng.Intn(16), rng.Intn(16)
		if a0 > b0 {
			a0, b0 = b0, a0
		}
		if a1 > b1 {
			a1, b1 = b1, a1
		}
		rects = append(rects, grid.Rect{Lo: grid.Coord{a0, a1}, Hi: grid.Coord{b0, b1}})
	}

	// snapshot answers the whole workload against the relation's current
	// physical layout — plain searches plus the transient-fault executor.
	snapshot := func() (rangeIDs, pmIDs, faultIDs [][]int) {
		t.Helper()
		rel, err := c.Get("orders")
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range ranges {
			res, err := c.RangeSearch("orders", q.lo, q.hi)
			if err != nil {
				t.Fatal(err)
			}
			rangeIDs = append(rangeIDs, sortedIDs(res.Records))
		}
		for _, q := range pms {
			res, err := rel.File().PartialMatchSearch(q.vals, q.specified)
			if err != nil {
				t.Fatal(err)
			}
			pmIDs = append(pmIDs, sortedIDs(res.Records))
		}
		inj, err := fault.New(fault.Config{Seed: 7, TransientProb: 0.15})
		if err != nil {
			t.Fatal(err)
		}
		e, err := exec.New(rel.File(), exec.WithFaults(inj), exec.WithRetry(exec.DefaultRetry()))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for _, r := range rects {
			res, err := e.RangeSearch(ctx, r)
			if err != nil {
				t.Fatal(err)
			}
			faultIDs = append(faultIDs, sortedIDs(res.Records))
		}
		return rangeIDs, pmIDs, faultIDs
	}

	beforeRange, beforePM, beforeFault := snapshot()

	moved, err := c.Redecluster("orders", "HCAM")
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("DM → HCAM on a populated 16×16 file moved no buckets")
	}
	rel, _ := c.Get("orders")
	if rel.Method().Name() != "HCAM" {
		t.Fatalf("relation method = %q after redecluster", rel.Method().Name())
	}

	afterRange, afterPM, afterFault := snapshot()
	for i := range beforeRange {
		if !sameIDs(beforeRange[i], afterRange[i]) {
			t.Errorf("range query %d answers differ after redecluster", i)
		}
	}
	for i := range beforePM {
		if !sameIDs(beforePM[i], afterPM[i]) {
			t.Errorf("partial-match query %d answers differ after redecluster", i)
		}
	}
	for i := range beforeFault {
		if !sameIDs(beforeFault[i], afterFault[i]) {
			t.Errorf("fault-injected rect query %d answers differ after redecluster", i)
		}
	}

	// Round-trip back to DM must also preserve every answer.
	if _, err := c.Redecluster("orders", "DM"); err != nil {
		t.Fatal(err)
	}
	backRange, _, _ := snapshot()
	for i := range beforeRange {
		if !sameIDs(beforeRange[i], backRange[i]) {
			t.Errorf("range query %d answers differ after round-trip redecluster", i)
		}
	}
}
