// Package catalog manages the declustering metadata of a parallel
// database: one entry per relation, each with its own grid, disk
// count and declustering method. The reproduced paper concludes that
// "since there is no clear winner, parallel database systems must
// support a number of declustering methods" and that the choice should
// follow each relation's query profile — this package is that support:
// create relations with an explicit method or let the advisor elect
// one, store records, route queries, and persist the whole catalog.
package catalog

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"decluster/internal/advisor"
	"decluster/internal/alloc"
	"decluster/internal/datagen"
	"decluster/internal/grid"
	"decluster/internal/gridfile"
	"decluster/internal/recio"
)

// Relation is one declustered relation: metadata plus its storage.
type Relation struct {
	name   string
	method alloc.Method
	file   *gridfile.File
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Method returns the relation's declustering method.
func (r *Relation) Method() alloc.Method { return r.method }

// File returns the relation's grid file.
func (r *Relation) File() *gridfile.File { return r.file }

// Catalog holds the relations of one parallel database instance.
type Catalog struct {
	disks     int
	relations map[string]*Relation
}

// New creates an empty catalog for a system with the given disk count.
func New(disks int) (*Catalog, error) {
	if disks < 1 {
		return nil, fmt.Errorf("catalog: need ≥ 1 disk, got %d", disks)
	}
	return &Catalog{disks: disks, relations: make(map[string]*Relation)}, nil
}

// Disks returns the system disk count.
func (c *Catalog) Disks() int { return c.disks }

// Names lists relation names in sorted order.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.relations))
	for name := range c.relations {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Get returns a relation by name.
func (c *Catalog) Get(name string) (*Relation, error) {
	r, ok := c.relations[name]
	if !ok {
		return nil, fmt.Errorf("catalog: relation %q does not exist", name)
	}
	return r, nil
}

// Create adds a relation declustered by the named method over the given
// grid. PageCapacity 0 selects the grid-file default.
func (c *Catalog) Create(name string, g *grid.Grid, methodName string, pageCapacity int) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: empty relation name")
	}
	if _, exists := c.relations[name]; exists {
		return nil, fmt.Errorf("catalog: relation %q already exists", name)
	}
	m, err := alloc.Build(methodName, g, c.disks)
	if err != nil {
		return nil, fmt.Errorf("catalog: relation %q: %w", name, err)
	}
	f, err := gridfile.New(gridfile.Config{Method: m, PageCapacity: pageCapacity})
	if err != nil {
		return nil, err
	}
	r := &Relation{name: name, method: m, file: f}
	c.relations[name] = r
	return r, nil
}

// CreateAdvised adds a relation whose method is elected by the advisor
// from the expected workload mix — the paper's recommendation in one
// call. Candidates nil selects the advisor default set.
func (c *Catalog) CreateAdvised(name string, g *grid.Grid, mix []advisor.WorkloadClass, candidates []string, pageCapacity int) (*Relation, *advisor.Recommendation, error) {
	rec, err := advisor.Recommend(g, c.disks, mix, candidates)
	if err != nil {
		return nil, nil, fmt.Errorf("catalog: advising %q: %w", name, err)
	}
	r, err := c.Create(name, g, rec.Best(), pageCapacity)
	if err != nil {
		return nil, nil, err
	}
	return r, rec, nil
}

// Drop removes a relation.
func (c *Catalog) Drop(name string) error {
	if _, ok := c.relations[name]; !ok {
		return fmt.Errorf("catalog: relation %q does not exist", name)
	}
	delete(c.relations, name)
	return nil
}

// Insert routes records into a relation.
func (c *Catalog) Insert(relation string, recs []datagen.Record) error {
	r, err := c.Get(relation)
	if err != nil {
		return err
	}
	return r.file.InsertAll(recs)
}

// RangeSearch routes a value-range query to a relation.
func (c *Catalog) RangeSearch(relation string, lo, hi []float64) (*gridfile.ResultSet, error) {
	r, err := c.Get(relation)
	if err != nil {
		return nil, err
	}
	return r.file.RangeSearch(lo, hi)
}

// Redecluster rebuilds a relation under a different method (same grid,
// same disks), migrating every record, and returns the number of
// buckets whose disk changed — the I/O bill of the reorganization. The
// paper's conclusion implies exactly this operation: when the query
// profile drifts, the relation must move to the method that now fits.
func (c *Catalog) Redecluster(relation, newMethod string) (moved int, err error) {
	r, err := c.Get(relation)
	if err != nil {
		return 0, err
	}
	g := r.method.Grid()
	nm, err := alloc.Build(newMethod, g, c.disks)
	if err != nil {
		return 0, fmt.Errorf("catalog: redecluster %q: %w", relation, err)
	}
	oldTable := alloc.Table(r.method)
	newTable := alloc.Table(nm)
	for b := range oldTable {
		if oldTable[b] != newTable[b] && r.file.BucketLen(b) > 0 {
			moved++
		}
	}
	nf, err := gridfile.New(gridfile.Config{Method: nm, PageCapacity: r.file.PageCapacity()})
	if err != nil {
		return 0, err
	}
	full, err := r.file.CellRangeSearch(g.FullRect())
	if err != nil {
		return 0, err
	}
	if err := nf.InsertAll(full.Records); err != nil {
		return 0, err
	}
	r.method = nm
	r.file = nf
	return moved, nil
}

// DumpData streams a relation's full record population to w as JSON
// Lines (the recio format) — the data companion to Save's metadata.
func (c *Catalog) DumpData(relation string, w io.Writer) error {
	r, err := c.Get(relation)
	if err != nil {
		return err
	}
	full, err := r.file.CellRangeSearch(r.method.Grid().FullRect())
	if err != nil {
		return err
	}
	return recio.WriteRecords(w, full.Records)
}

// LoadData streams a JSONL record population into a relation.
func (c *Catalog) LoadData(relation string, rd io.Reader) error {
	r, err := c.Get(relation)
	if err != nil {
		return err
	}
	recs, err := recio.ReadRecords(rd)
	if err != nil {
		return err
	}
	return r.file.InsertAll(recs)
}

// savedCatalog is the JSON persistence schema. Only metadata persists;
// records live in the storage layer (here: reloaded by the caller).
type savedCatalog struct {
	Version   int             `json:"version"`
	Disks     int             `json:"disks"`
	Relations []savedRelation `json:"relations"`
}

type savedRelation struct {
	Name         string `json:"name"`
	Dims         []int  `json:"dims"`
	Method       string `json:"method"`
	PageCapacity int    `json:"page_capacity"`
}

const formatVersion = 1

// Save writes the catalog's metadata as JSON.
func (c *Catalog) Save(w io.Writer) error {
	doc := savedCatalog{Version: formatVersion, Disks: c.disks}
	for _, name := range c.Names() {
		r := c.relations[name]
		doc.Relations = append(doc.Relations, savedRelation{
			Name:         name,
			Dims:         r.method.Grid().Dims(),
			Method:       r.method.Name(),
			PageCapacity: r.file.PageCapacity(),
		})
	}
	if err := json.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("catalog: encode: %w", err)
	}
	return nil
}

// Load reconstructs a catalog (empty relations with the saved grids and
// methods) from JSON written by Save.
func Load(r io.Reader) (*Catalog, error) {
	var doc savedCatalog
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("catalog: decode: %w", err)
	}
	if doc.Version != formatVersion {
		return nil, fmt.Errorf("catalog: unsupported format version %d", doc.Version)
	}
	c, err := New(doc.Disks)
	if err != nil {
		return nil, err
	}
	for _, sr := range doc.Relations {
		g, err := grid.New(sr.Dims...)
		if err != nil {
			return nil, fmt.Errorf("catalog: relation %q: %w", sr.Name, err)
		}
		if _, err := c.Create(sr.Name, g, sr.Method, sr.PageCapacity); err != nil {
			return nil, err
		}
	}
	return c, nil
}
