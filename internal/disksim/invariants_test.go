package disksim

import (
	"math/rand"
	"testing"
	"time"

	"decluster/internal/gridfile"
)

// randomTrace builds a trace with random accesses over the given disks.
func randomTrace(rng *rand.Rand, disks int) gridfile.Trace {
	t := gridfile.Trace{PerDisk: make([][]gridfile.Access, disks)}
	for d := 0; d < disks; d++ {
		n := rng.Intn(5)
		for i := 0; i < n; i++ {
			t.PerDisk[d] = append(t.PerDisk[d], gridfile.Access{
				Bucket: rng.Intn(100),
				Pages:  1 + rng.Intn(4),
			})
		}
	}
	return t
}

// Parallel response never exceeds serial time, and serial time never
// exceeds disks × response (work conservation bounds).
func TestResponseSerialBounds(t *testing.T) {
	s, _ := New(testModel())
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		tr := randomTrace(rng, 1+rng.Intn(8))
		rt := s.ResponseTime(tr)
		serial := s.SerialTime(tr)
		if rt > serial {
			t.Fatalf("response %v exceeds serial %v", rt, serial)
		}
		if bound := time.Duration(len(tr.PerDisk)) * rt; serial > bound {
			t.Fatalf("serial %v exceeds disks×response %v", serial, bound)
		}
	}
}

// Batch makespan of a set never beats the largest single makespan and
// never exceeds the sum of all makespans.
func TestBatchBounds(t *testing.T) {
	s, _ := New(testModel())
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		var traces []gridfile.Trace
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			traces = append(traces, randomTrace(rng, 4))
		}
		batch := s.BatchResponseTime(traces)
		var maxSingle, sumSingle int64
		for _, tr := range traces {
			rt := int64(s.ResponseTime(tr))
			if rt > maxSingle {
				maxSingle = rt
			}
			sumSingle += rt
		}
		if int64(batch) < maxSingle {
			t.Fatalf("batch %v below largest single %v", batch, maxSingle)
		}
		if int64(batch) > sumSingle {
			t.Fatalf("batch %v above sum of singles %v (max-of-sums ≤ sum-of-maxes)", batch, sumSingle)
		}
	}
}

// Adding pages to any access can only slow the trace down.
func TestMonotoneInPages(t *testing.T) {
	s, _ := New(testModel())
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		tr := randomTrace(rng, 4)
		base := s.ResponseTime(tr)
		// Inflate one random access.
		d := rng.Intn(4)
		if len(tr.PerDisk[d]) == 0 {
			continue
		}
		tr.PerDisk[d][rng.Intn(len(tr.PerDisk[d]))].Pages += 3
		if s.ResponseTime(tr) < base {
			t.Fatal("adding pages reduced response time")
		}
	}
}
