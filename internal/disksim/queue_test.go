package disksim

import (
	"testing"
	"time"

	"decluster/internal/gridfile"
)

func sampleTraces() []gridfile.Trace {
	// Two traces over 2 disks: one balanced, one lopsided.
	return []gridfile.Trace{
		{PerDisk: [][]gridfile.Access{
			{{Bucket: 0, Pages: 1}},
			{{Bucket: 1, Pages: 1}},
		}},
		{PerDisk: [][]gridfile.Access{
			{{Bucket: 2, Pages: 3}},
			nil,
		}},
	}
}

func TestSimulateOpenValidation(t *testing.T) {
	s, _ := New(testModel())
	if _, err := s.SimulateOpen(nil, 1, 10, 1); err == nil {
		t.Error("empty traces accepted")
	}
	if _, err := s.SimulateOpen(sampleTraces(), 0, 10, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := s.SimulateOpen(sampleTraces(), 1, 0, 1); err == nil {
		t.Error("zero queries accepted")
	}
	empty := []gridfile.Trace{{}}
	if _, err := s.SimulateOpen(empty, 1, 10, 1); err == nil {
		t.Error("diskless traces accepted")
	}
}

func TestSimulateOpenLightLoad(t *testing.T) {
	s, _ := New(testModel())
	// Very light load: responses ≈ standalone service times, no queueing.
	res, err := s.SimulateOpen(sampleTraces(), 0.1, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 200 {
		t.Fatalf("completed %d", res.Completed)
	}
	// Standalone responses: balanced trace 16ms, lopsided 18ms.
	if res.MeanResponse < 15*time.Millisecond || res.MeanResponse > 19*time.Millisecond {
		t.Fatalf("light-load mean response %v; want ≈16–18ms", res.MeanResponse)
	}
	if res.Utilization > 0.05 {
		t.Fatalf("light-load utilization %v; want ≈0", res.Utilization)
	}
	if res.P95Response < res.MeanResponse/2 {
		t.Fatalf("p95 %v below half the mean %v", res.P95Response, res.MeanResponse)
	}
}

func TestSimulateOpenHeavyLoadQueues(t *testing.T) {
	s, _ := New(testModel())
	light, err := s.SimulateOpen(sampleTraces(), 0.1, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Offered work per query ≈ 17ms; at 100 qps the system saturates.
	heavy, err := s.SimulateOpen(sampleTraces(), 100, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.MeanResponse <= 2*light.MeanResponse {
		t.Fatalf("heavy load mean %v not clearly above light %v", heavy.MeanResponse, light.MeanResponse)
	}
	if heavy.Utilization < 0.5 {
		t.Fatalf("heavy load utilization %v; want high", heavy.Utilization)
	}
	if heavy.Utilization > 1.0+1e-9 {
		t.Fatalf("utilization %v exceeds 1", heavy.Utilization)
	}
}

func TestSimulateOpenDeterministic(t *testing.T) {
	s, _ := New(testModel())
	a, _ := s.SimulateOpen(sampleTraces(), 5, 100, 42)
	b, _ := s.SimulateOpen(sampleTraces(), 5, 100, 42)
	if a != b {
		t.Fatal("same seed produced different results")
	}
	c, _ := s.SimulateOpen(sampleTraces(), 5, 100, 43)
	if a == c {
		t.Fatal("different seeds produced identical results")
	}
}

func TestPercentileDuration(t *testing.T) {
	xs := []time.Duration{5, 1, 4, 2, 3}
	if got := percentileDuration(xs, 1.0); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := percentileDuration(xs, 0.2); got != 1 {
		t.Errorf("p20 = %v", got)
	}
	if got := percentileDuration(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("percentileDuration mutated input")
	}
}
