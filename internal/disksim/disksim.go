// Package disksim replays grid-file access traces against a simple
// parallel disk model and reports wall-clock response times. The paper
// measures declustering quality in bucket accesses on the busiest disk
// — an abstract, hardware-free metric — and this simulator is the
// strictly additive realism layer: it converts the same traces into
// milliseconds under a period-appropriate disk model so end-to-end
// examples can report times a practitioner would recognize.
//
// Model: each disk serves its accesses independently and in elevator
// (ascending bucket) order. An access to a bucket that is not the
// immediate successor of the previously read bucket pays an average
// seek plus average rotational latency; a bucket adjacent to the
// previous one is read sequentially and pays transfer time only. Every
// page read pays the per-page transfer time. The response time of a
// query is the maximum completion time across disks (disks work in
// parallel); disks are idle before the query and serve nothing else.
package disksim

import (
	"fmt"
	"sort"
	"time"

	"decluster/internal/gridfile"
)

// Model holds the physical disk parameters.
type Model struct {
	// Seek is the average seek time paid on each non-sequential access.
	Seek time.Duration
	// Rotation is the average rotational latency paid with each seek.
	Rotation time.Duration
	// PageTransfer is the transfer time per page.
	PageTransfer time.Duration
}

// Default1993 returns parameters typical of the study's era (a 3.5"
// SCSI drive of the early 1990s): 12 ms average seek, 3600 rpm → 8.3 ms
// average rotational latency, ~2 MB/s sustained transfer → 2 ms per
// 4 KiB page.
func Default1993() Model {
	return Model{
		Seek:         12 * time.Millisecond,
		Rotation:     8300 * time.Microsecond,
		PageTransfer: 2 * time.Millisecond,
	}
}

// Modern returns parameters of a 2000s-era 7200 rpm drive, for ablation
// against Default1993: 8.5 ms seek, 4.17 ms rotational latency,
// ~80 MB/s transfer → 50 µs per 4 KiB page.
func Modern() Model {
	return Model{
		Seek:         8500 * time.Microsecond,
		Rotation:     4170 * time.Microsecond,
		PageTransfer: 50 * time.Microsecond,
	}
}

// Validate rejects non-positive transfer times and negative latencies.
func (m Model) Validate() error {
	if m.PageTransfer <= 0 {
		return fmt.Errorf("disksim: page transfer time must be positive, got %v", m.PageTransfer)
	}
	if m.Seek < 0 || m.Rotation < 0 {
		return fmt.Errorf("disksim: negative latency (seek %v, rotation %v)", m.Seek, m.Rotation)
	}
	return nil
}

// Simulator replays traces under a model.
type Simulator struct {
	model Model
}

// New constructs a simulator, validating the model.
func New(m Model) (*Simulator, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{model: m}, nil
}

// Model returns the simulator's disk parameters.
func (s *Simulator) Model() Model { return s.model }

// DiskTimes returns each disk's completion time for the trace.
func (s *Simulator) DiskTimes(t gridfile.Trace) []time.Duration {
	out := make([]time.Duration, len(t.PerDisk))
	for d, accesses := range t.PerDisk {
		out[d] = s.serveDisk(accesses)
	}
	return out
}

// serveDisk serves one disk's access list in elevator order.
func (s *Simulator) serveDisk(accesses []gridfile.Access) time.Duration {
	if len(accesses) == 0 {
		return 0
	}
	sorted := make([]gridfile.Access, len(accesses))
	copy(sorted, accesses)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Bucket < sorted[j].Bucket })
	var total time.Duration
	prev := -2 // sentinel: first access always seeks
	for _, a := range sorted {
		if a.Bucket != prev+1 {
			total += s.model.Seek + s.model.Rotation
		}
		total += time.Duration(a.Pages) * s.model.PageTransfer
		prev = a.Bucket
	}
	return total
}

// ResponseTime returns the query's parallel response time: the maximum
// disk completion time.
func (s *Simulator) ResponseTime(t gridfile.Trace) time.Duration {
	var max time.Duration
	for _, dt := range s.DiskTimes(t) {
		if dt > max {
			max = dt
		}
	}
	return max
}

// SerialTime returns the time a single disk holding all the data would
// need: the sum of all disks' completion times. The ratio
// SerialTime/ResponseTime is the speedup the declustering achieved.
func (s *Simulator) SerialTime(t gridfile.Trace) time.Duration {
	var sum time.Duration
	for _, dt := range s.DiskTimes(t) {
		sum += dt
	}
	return sum
}

// Speedup returns SerialTime/ResponseTime as a float (1.0 when the
// trace is empty).
func (s *Simulator) Speedup(t gridfile.Trace) float64 {
	rt := s.ResponseTime(t)
	if rt == 0 {
		return 1
	}
	return float64(s.SerialTime(t)) / float64(rt)
}

// BatchResponseTime serves a sequence of queries back to back (each
// query's accesses queued after the previous query's on every disk) and
// returns the total makespan: the maximum across disks of the summed
// service times.
func (s *Simulator) BatchResponseTime(traces []gridfile.Trace) time.Duration {
	perDisk := map[int]time.Duration{}
	for _, t := range traces {
		for d, accesses := range t.PerDisk {
			perDisk[d] += s.serveDisk(accesses)
		}
	}
	var max time.Duration
	for _, v := range perDisk {
		if v > max {
			max = v
		}
	}
	return max
}
