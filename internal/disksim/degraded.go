package disksim

import (
	"sort"
	"time"

	"decluster/internal/fault"
	"decluster/internal/gridfile"
)

// DegradedDiskTimes replays the trace under an injection scenario: a
// fail-stop disk with pending accesses makes the trace unservable (a
// *fault.UnavailableError listing its buckets), and straggler disks
// have their completion times scaled by their latency multiplier. A nil
// injector degenerates to DiskTimes.
func (s *Simulator) DegradedDiskTimes(t gridfile.Trace, inj *fault.Injector) ([]time.Duration, error) {
	if inj == nil {
		return s.DiskTimes(t), nil
	}
	out := make([]time.Duration, len(t.PerDisk))
	var lost []int
	var downDisks []int
	for d, accesses := range t.PerDisk {
		if inj.DiskFailed(d) {
			if len(accesses) > 0 {
				for _, a := range accesses {
					lost = append(lost, a.Bucket)
				}
				downDisks = append(downDisks, d)
			}
			continue
		}
		dt := s.serveDisk(accesses)
		if f := inj.SlowFactor(d); f != 1 {
			dt = time.Duration(float64(dt) * f)
		}
		out[d] = dt
	}
	if len(lost) > 0 {
		sort.Ints(lost)
		return nil, &fault.UnavailableError{Buckets: lost, FailedDisks: downDisks}
	}
	return out, nil
}

// DegradedResponseTime returns the query's parallel response time under
// the injection scenario: the maximum surviving-disk completion time,
// stragglers included. It errors like DegradedDiskTimes when a failed
// disk holds part of the trace.
func (s *Simulator) DegradedResponseTime(t gridfile.Trace, inj *fault.Injector) (time.Duration, error) {
	times, err := s.DegradedDiskTimes(t, inj)
	if err != nil {
		return 0, err
	}
	var max time.Duration
	for _, dt := range times {
		if dt > max {
			max = dt
		}
	}
	return max, nil
}
