package disksim

import (
	"errors"
	"testing"
	"time"

	"decluster/internal/fault"
	"decluster/internal/gridfile"
)

func degradedTrace() gridfile.Trace {
	return gridfile.Trace{PerDisk: [][]gridfile.Access{
		{{Bucket: 0, Pages: 2}, {Bucket: 1, Pages: 1}},
		{{Bucket: 7, Pages: 3}},
		{},
	}}
}

func TestDegradedNilInjector(t *testing.T) {
	s, _ := New(Default1993())
	tr := degradedTrace()
	times, err := s.DegradedDiskTimes(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := s.DiskTimes(tr)
	for d := range times {
		if times[d] != want[d] {
			t.Fatalf("nil-injector times %v != DiskTimes %v", times, want)
		}
	}
	rt, err := s.DegradedResponseTime(tr, nil)
	if err != nil || rt != s.ResponseTime(tr) {
		t.Fatalf("nil-injector RT %v (%v) != %v", rt, err, s.ResponseTime(tr))
	}
}

func TestDegradedFailStop(t *testing.T) {
	s, _ := New(Default1993())
	tr := degradedTrace()
	inj, _ := fault.New(fault.Config{FailDisks: []int{1}})
	_, err := s.DegradedDiskTimes(tr, inj)
	if !errors.Is(err, fault.ErrUnavailable) {
		t.Fatalf("got %v, want ErrUnavailable", err)
	}
	var ue *fault.UnavailableError
	if !errors.As(err, &ue) || len(ue.Buckets) != 1 || ue.Buckets[0] != 7 {
		t.Fatalf("unavailability details wrong: %v", err)
	}
	// Failing an idle disk is harmless.
	idle, _ := fault.New(fault.Config{FailDisks: []int{2}})
	times, err := s.DegradedDiskTimes(tr, idle)
	if err != nil {
		t.Fatalf("idle failed disk errored: %v", err)
	}
	if times[2] != 0 {
		t.Error("idle failed disk reports time")
	}
}

func TestDegradedStraggler(t *testing.T) {
	s, _ := New(Default1993())
	tr := degradedTrace()
	base := s.DiskTimes(tr)
	inj, _ := fault.New(fault.Config{Stragglers: map[int]float64{0: 3}})
	times, err := s.DegradedDiskTimes(tr, inj)
	if err != nil {
		t.Fatal(err)
	}
	if times[0] != time.Duration(float64(base[0])*3) {
		t.Errorf("straggler time %v, want 3× %v", times[0], base[0])
	}
	if times[1] != base[1] {
		t.Errorf("healthy disk time changed: %v vs %v", times[1], base[1])
	}
	// A straggler can move the response time: it becomes the max.
	rt, err := s.DegradedResponseTime(tr, inj)
	if err != nil {
		t.Fatal(err)
	}
	if rt < times[0] {
		t.Errorf("RT %v below straggler completion %v", rt, times[0])
	}
}
