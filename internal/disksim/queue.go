package disksim

import (
	"fmt"
	"math/rand"
	"time"

	"decluster/internal/gridfile"
)

// QueueResult summarizes an open-system simulation run.
type QueueResult struct {
	// ArrivalRate is the offered load in queries per second.
	ArrivalRate float64
	// Completed counts queries simulated.
	Completed int
	// MeanResponse and P95Response are arrival-to-completion times.
	MeanResponse time.Duration
	P95Response  time.Duration
	// Utilization is the busiest disk's busy fraction of the makespan.
	Utilization float64
}

// SimulateOpen runs an open queueing simulation: n queries arrive as a
// Poisson process of the given rate (deterministic under seed), each
// drawing its access trace uniformly from traces. Every disk serves its
// per-query access batches FIFO in arrival order; a query completes
// when all its disks finish its batch, and its response time is
// completion minus arrival. This is the multi-user view of
// declustering quality — the regime of the multiuser studies the
// reproduced paper cites — where imbalanced per-query disk loads
// inflate responses long before the system saturates.
func (s *Simulator) SimulateOpen(traces []gridfile.Trace, rate float64, n int, seed int64) (QueueResult, error) {
	if len(traces) == 0 {
		return QueueResult{}, fmt.Errorf("disksim: no traces to sample")
	}
	if rate <= 0 {
		return QueueResult{}, fmt.Errorf("disksim: arrival rate must be positive, got %v", rate)
	}
	if n < 1 {
		return QueueResult{}, fmt.Errorf("disksim: need ≥ 1 queries, got %d", n)
	}
	disks := 0
	for _, t := range traces {
		if len(t.PerDisk) > disks {
			disks = len(t.PerDisk)
		}
	}
	if disks == 0 {
		return QueueResult{}, fmt.Errorf("disksim: traces carry no disks")
	}

	rng := rand.New(rand.NewSource(seed))
	diskFree := make([]time.Duration, disks) // when each disk next idles
	busy := make([]time.Duration, disks)     // accumulated busy time
	responses := make([]time.Duration, 0, n)

	var now time.Duration
	var makespan time.Duration
	for i := 0; i < n; i++ {
		// Exponential inter-arrival with mean 1/rate seconds.
		gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		now += gap
		tr := traces[rng.Intn(len(traces))]

		var completion time.Duration
		for d, accesses := range tr.PerDisk {
			if len(accesses) == 0 {
				continue
			}
			svc := s.serveDisk(accesses)
			start := now
			if diskFree[d] > start {
				start = diskFree[d]
			}
			end := start + svc
			diskFree[d] = end
			busy[d] += svc
			if end > completion {
				completion = end
			}
		}
		if completion == 0 {
			completion = now // empty trace: instantaneous
		}
		responses = append(responses, completion-now)
		if completion > makespan {
			makespan = completion
		}
	}

	res := QueueResult{ArrivalRate: rate, Completed: n}
	var sum time.Duration
	for _, r := range responses {
		sum += r
	}
	res.MeanResponse = sum / time.Duration(n)
	res.P95Response = percentileDuration(responses, 0.95)
	if makespan > 0 {
		maxBusy := time.Duration(0)
		for _, b := range busy {
			if b > maxBusy {
				maxBusy = b
			}
		}
		res.Utilization = float64(maxBusy) / float64(makespan)
	}
	return res, nil
}

// percentileDuration returns the p-quantile (0 < p ≤ 1) by sorting a
// copy.
func percentileDuration(xs []time.Duration, p float64) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(xs))
	copy(sorted, xs)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(p*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
