package disksim

import (
	"testing"
	"time"

	"decluster/internal/gridfile"
)

func testModel() Model {
	return Model{Seek: 10 * time.Millisecond, Rotation: 5 * time.Millisecond, PageTransfer: time.Millisecond}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Model{}); err == nil {
		t.Error("zero transfer accepted")
	}
	if _, err := New(Model{Seek: -1, PageTransfer: 1}); err == nil {
		t.Error("negative seek accepted")
	}
	if _, err := New(Model{Rotation: -1, PageTransfer: 1}); err == nil {
		t.Error("negative rotation accepted")
	}
	s, err := New(testModel())
	if err != nil {
		t.Fatal(err)
	}
	if s.Model() != testModel() {
		t.Error("model not stored")
	}
}

func TestPresetModelsValid(t *testing.T) {
	if err := Default1993().Validate(); err != nil {
		t.Error(err)
	}
	if err := Modern().Validate(); err != nil {
		t.Error(err)
	}
	if Modern().PageTransfer >= Default1993().PageTransfer {
		t.Error("modern disk not faster")
	}
}

func TestEmptyTrace(t *testing.T) {
	s, _ := New(testModel())
	tr := gridfile.Trace{PerDisk: make([][]gridfile.Access, 4)}
	if s.ResponseTime(tr) != 0 || s.SerialTime(tr) != 0 {
		t.Error("empty trace has nonzero time")
	}
	if s.Speedup(tr) != 1 {
		t.Error("empty trace speedup != 1")
	}
}

func TestSingleAccess(t *testing.T) {
	s, _ := New(testModel())
	tr := gridfile.Trace{PerDisk: [][]gridfile.Access{
		{{Bucket: 3, Pages: 2}},
	}}
	// seek 10 + rot 5 + 2 pages × 1 = 17ms
	want := 17 * time.Millisecond
	if got := s.ResponseTime(tr); got != want {
		t.Fatalf("ResponseTime = %v, want %v", got, want)
	}
}

func TestSequentialAdjacencySkipsSeek(t *testing.T) {
	s, _ := New(testModel())
	// Buckets 5 and 6 on one disk: second access is sequential.
	tr := gridfile.Trace{PerDisk: [][]gridfile.Access{
		{{Bucket: 5, Pages: 1}, {Bucket: 6, Pages: 1}},
	}}
	// seek+rot (15) + 1 + 1 = 17
	want := 17 * time.Millisecond
	if got := s.ResponseTime(tr); got != want {
		t.Fatalf("ResponseTime = %v, want %v", got, want)
	}
	// Buckets 5 and 7: both pay seek.
	tr2 := gridfile.Trace{PerDisk: [][]gridfile.Access{
		{{Bucket: 5, Pages: 1}, {Bucket: 7, Pages: 1}},
	}}
	want2 := 32 * time.Millisecond
	if got := s.ResponseTime(tr2); got != want2 {
		t.Fatalf("ResponseTime = %v, want %v", got, want2)
	}
}

func TestElevatorOrdering(t *testing.T) {
	s, _ := New(testModel())
	// Accesses arrive out of order; elevator order makes them
	// sequential: 4,5,6 → one seek.
	tr := gridfile.Trace{PerDisk: [][]gridfile.Access{
		{{Bucket: 6, Pages: 1}, {Bucket: 4, Pages: 1}, {Bucket: 5, Pages: 1}},
	}}
	want := 18 * time.Millisecond // 15 + 3×1
	if got := s.ResponseTime(tr); got != want {
		t.Fatalf("ResponseTime = %v, want %v", got, want)
	}
}

func TestParallelResponseIsMax(t *testing.T) {
	s, _ := New(testModel())
	tr := gridfile.Trace{PerDisk: [][]gridfile.Access{
		{{Bucket: 0, Pages: 1}},                          // 16ms
		{{Bucket: 10, Pages: 5}},                         // 20ms
		{{Bucket: 20, Pages: 1}, {Bucket: 30, Pages: 1}}, // 32ms
	}}
	if got := s.ResponseTime(tr); got != 32*time.Millisecond {
		t.Fatalf("ResponseTime = %v, want 32ms", got)
	}
	if got := s.SerialTime(tr); got != 68*time.Millisecond {
		t.Fatalf("SerialTime = %v, want 68ms", got)
	}
	speedup := s.Speedup(tr)
	if speedup < 2.1 || speedup > 2.2 { // 68/32 = 2.125
		t.Fatalf("Speedup = %v, want 2.125", speedup)
	}
}

func TestDiskTimesPerDisk(t *testing.T) {
	s, _ := New(testModel())
	tr := gridfile.Trace{PerDisk: [][]gridfile.Access{
		nil,
		{{Bucket: 1, Pages: 3}},
	}}
	times := s.DiskTimes(tr)
	if len(times) != 2 {
		t.Fatalf("DiskTimes has %d entries", len(times))
	}
	if times[0] != 0 {
		t.Error("idle disk has nonzero time")
	}
	if times[1] != 18*time.Millisecond {
		t.Errorf("disk 1 time = %v, want 18ms", times[1])
	}
}

func TestBatchResponseTime(t *testing.T) {
	s, _ := New(testModel())
	q1 := gridfile.Trace{PerDisk: [][]gridfile.Access{
		{{Bucket: 0, Pages: 1}}, // disk0: 16
		{{Bucket: 1, Pages: 1}}, // disk1: 16
	}}
	q2 := gridfile.Trace{PerDisk: [][]gridfile.Access{
		{{Bucket: 2, Pages: 1}}, // disk0: +16
		nil,
	}}
	got := s.BatchResponseTime([]gridfile.Trace{q1, q2})
	if got != 32*time.Millisecond {
		t.Fatalf("BatchResponseTime = %v, want 32ms", got)
	}
	if s.BatchResponseTime(nil) != 0 {
		t.Error("empty batch nonzero")
	}
}

func TestServeDoesNotMutateTrace(t *testing.T) {
	s, _ := New(testModel())
	accesses := []gridfile.Access{{Bucket: 9, Pages: 1}, {Bucket: 2, Pages: 1}}
	tr := gridfile.Trace{PerDisk: [][]gridfile.Access{accesses}}
	s.ResponseTime(tr)
	if accesses[0].Bucket != 9 || accesses[1].Bucket != 2 {
		t.Fatal("simulator reordered the caller's trace")
	}
}
