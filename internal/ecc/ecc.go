// Package ecc implements the binary linear codes underlying the
// error-correcting-code declustering method of Faloutsos & Metaxas
// (IEEE ToC 1991). A bucket's coordinate bits, concatenated into an
// n-bit word x, are assigned to disk H·x where H is the r×n
// parity-check matrix of a binary code and M = 2^r is the number of
// disks. Buckets sharing a disk then form a coset of the code, so the
// code's minimum distance lower-bounds how many coordinate bits must
// differ between two buckets on the same disk — which is exactly the
// declustering guarantee.
//
// The original paper takes its parity-check equations from the tables
// in Reza, "An Introduction to Information Theory" (1961). Those tables
// describe shortened Hamming codes; this package constructs equivalent
// matrices programmatically (distinct nonzero columns while they last),
// which yields the same minimum distance 3 whenever n ≤ 2^r − 1.
package ecc

import (
	"fmt"

	"decluster/internal/gf2"
)

// Code is a binary linear [n, n−r] code in parity-check form.
type Code struct {
	h *gf2.Matrix // r×n parity-check matrix
	n int         // code length (bits)
	r int         // parity bits; 2^r syndromes
}

// NewShortenedHamming constructs a code of length n with r parity bits
// whose parity-check columns cycle through the nonzero vectors of
// GF(2)^r — distinct while they last, so for n ≤ 2^r−1 this is a
// shortened Hamming code with minimum distance 3. Columns are issued
// unit vectors first (1, 2, 4, …, 2^(r−1)) and then the remaining
// values ascending: when the declustering layout interleaves coordinate
// bits least-significant first, the unit columns land on the
// fastest-varying bits, so grid-adjacent buckets receive distinct
// syndromes — measurably better range-query spread than the plain
// 1, 2, 3, … cycle (see the ECC ablation benchmark).
func NewShortenedHamming(n, r int) (*Code, error) {
	if r < 1 || r >= gf2.MaxBits {
		return nil, fmt.Errorf("ecc: need 1 ≤ r < %d parity bits, got %d", gf2.MaxBits, r)
	}
	if n < 1 || n > gf2.MaxBits {
		return nil, fmt.Errorf("ecc: need 1 ≤ n ≤ %d code bits, got %d", gf2.MaxBits, n)
	}
	h, err := gf2.NewMatrix(r, n)
	if err != nil {
		return nil, err
	}
	seq := columnSequence(r)
	for c := 0; c < n; c++ {
		h.SetColumn(c, seq[c%len(seq)])
	}
	return &Code{h: h, n: n, r: r}, nil
}

// columnSequence lists the nonzero vectors of GF(2)^r, unit vectors
// first, then the rest ascending.
func columnSequence(r int) []gf2.Vec {
	nonzero := (1 << uint(r)) - 1
	seq := make([]gf2.Vec, 0, nonzero)
	for v := 1; v <= nonzero; v++ {
		if v&(v-1) == 0 {
			seq = append(seq, gf2.Vec(v))
		}
	}
	for v := 1; v <= nonzero; v++ {
		if v&(v-1) != 0 {
			seq = append(seq, gf2.Vec(v))
		}
	}
	return seq
}

// NewFromParityCheck wraps an explicit parity-check matrix, for callers
// supplying their own code (e.g. transcribed from published tables).
func NewFromParityCheck(h *gf2.Matrix) (*Code, error) {
	if h.NumRows() < 1 || h.Cols < 1 {
		return nil, fmt.Errorf("ecc: parity-check matrix must be non-empty")
	}
	return &Code{h: h.Clone(), n: h.Cols, r: h.NumRows()}, nil
}

// Length returns the code length n in bits.
func (c *Code) Length() int { return c.n }

// ParityBits returns the number of parity bits r.
func (c *Code) ParityBits() int { return c.r }

// Syndromes returns the number of distinct syndromes, 2^r — the number
// of cosets the word space splits into (= number of disks when used for
// declustering).
func (c *Code) Syndromes() int { return 1 << uint(c.r) }

// ParityCheck returns a copy of the parity-check matrix.
func (c *Code) ParityCheck() *gf2.Matrix { return c.h.Clone() }

// Syndrome returns H·x: the coset identifier of word x, in
// [0, Syndromes()).
func (c *Code) Syndrome(x gf2.Vec) int { return int(c.h.MulVec(x)) }

// IsCodeword reports whether x has syndrome zero.
func (c *Code) IsCodeword(x gf2.Vec) bool { return c.Syndrome(x) == 0 }

// MinDistance computes the code's exact minimum distance by nullspace
// enumeration (see gf2.Matrix.MinDistance). It returns 0 for the
// trivial code {0}.
func (c *Code) MinDistance() int { return c.h.MinDistance() }

// CosetLeader returns a minimum-weight word with the given syndrome —
// the standard-array coset leader. Cost is O(2^n) in the worst case but
// terminates at the first weight level that covers the syndrome;
// intended for the short codes used in declustering and decoding.
func (c *Code) CosetLeader(syndrome int) (gf2.Vec, error) {
	if syndrome < 0 || syndrome >= c.Syndromes() {
		return 0, fmt.Errorf("ecc: syndrome %d out of [0,%d)", syndrome, c.Syndromes())
	}
	if syndrome == 0 {
		return 0, nil
	}
	// Search words by increasing Hamming weight.
	for w := 1; w <= c.n; w++ {
		if leader, ok := c.searchWeight(gf2.Vec(0), 0, w, syndrome); ok {
			return leader, nil
		}
	}
	return 0, fmt.Errorf("ecc: syndrome %d unreachable (parity-check matrix not full rank)", syndrome)
}

// searchWeight enumerates words of exactly `left` additional set bits
// at positions ≥ from, returning the first whose syndrome matches.
func (c *Code) searchWeight(prefix gf2.Vec, from, left, want int) (gf2.Vec, bool) {
	if left == 0 {
		if c.Syndrome(prefix) == want {
			return prefix, true
		}
		return 0, false
	}
	for i := from; i <= c.n-left; i++ {
		if v, ok := c.searchWeight(prefix|1<<uint(i), i+1, left-1, want); ok {
			return v, true
		}
	}
	return 0, false
}

// Correct performs nearest-codeword (syndrome) decoding: it returns the
// received word with its coset leader subtracted, which corrects up to
// ⌊(d−1)/2⌋ bit errors for a code of minimum distance d.
func (c *Code) Correct(received gf2.Vec) (gf2.Vec, error) {
	leader, err := c.CosetLeader(c.Syndrome(received))
	if err != nil {
		return 0, err
	}
	return received ^ leader, nil
}
