package ecc

import (
	"testing"
	"testing/quick"

	"decluster/internal/gf2"
)

func TestNewShortenedHammingValidation(t *testing.T) {
	cases := []struct {
		n, r int
		ok   bool
	}{
		{7, 3, true},
		{4, 2, true},
		{1, 1, true},
		{0, 3, false},
		{65, 3, false},
		{7, 0, false},
		{7, 64, false},
	}
	for _, tc := range cases {
		_, err := NewShortenedHamming(tc.n, tc.r)
		if (err == nil) != tc.ok {
			t.Errorf("NewShortenedHamming(%d,%d) err=%v, want ok=%v", tc.n, tc.r, err, tc.ok)
		}
	}
}

func TestHamming74Properties(t *testing.T) {
	c, err := NewShortenedHamming(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Length() != 7 || c.ParityBits() != 3 || c.Syndromes() != 8 {
		t.Fatal("shape accessors wrong")
	}
	if d := c.MinDistance(); d != 3 {
		t.Fatalf("MinDistance = %d, want 3 (Hamming(7,4))", d)
	}
	// Codeword count: 2^(n-r) = 16.
	count := 0
	for x := gf2.Vec(0); x < 128; x++ {
		if c.IsCodeword(x) {
			count++
		}
	}
	if count != 16 {
		t.Fatalf("codeword count = %d, want 16", count)
	}
}

func TestShortenedDistance3(t *testing.T) {
	// Shortened Hamming: n=5 ≤ 2^3−1 → distance still 3.
	c, _ := NewShortenedHamming(5, 3)
	if d := c.MinDistance(); d != 3 {
		t.Fatalf("MinDistance = %d, want 3", d)
	}
}

func TestColumnsDistinctWhilePossible(t *testing.T) {
	c, _ := NewShortenedHamming(7, 3)
	h := c.ParityCheck()
	seen := make(map[gf2.Vec]bool)
	for col := 0; col < 7; col++ {
		v := h.Column(col)
		if v == 0 {
			t.Fatalf("column %d is zero", col)
		}
		if seen[v] {
			t.Fatalf("column %d = %v repeated before exhausting nonzero vectors", col, v)
		}
		seen[v] = true
	}
}

func TestColumnsRepeatPastLimit(t *testing.T) {
	// n=10 > 2^3−1=7: columns must repeat but never be zero.
	c, _ := NewShortenedHamming(10, 3)
	h := c.ParityCheck()
	for col := 0; col < 10; col++ {
		if h.Column(col) == 0 {
			t.Fatalf("column %d is zero", col)
		}
	}
}

// Cosets partition the word space evenly when H has full row rank.
func TestCosetsPartitionEvenly(t *testing.T) {
	c, _ := NewShortenedHamming(6, 2)
	counts := make([]int, c.Syndromes())
	for x := gf2.Vec(0); x < 64; x++ {
		counts[c.Syndrome(x)]++
	}
	for s, n := range counts {
		if n != 16 {
			t.Fatalf("syndrome %d has %d words, want 16", s, n)
		}
	}
}

func TestSyndromeLinearity(t *testing.T) {
	c, _ := NewShortenedHamming(8, 3)
	f := func(a, b uint8) bool {
		x, y := gf2.Vec(a), gf2.Vec(b)
		return c.Syndrome(x^y) == c.Syndrome(x)^c.Syndrome(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCosetLeaderWeightOne(t *testing.T) {
	// Hamming(7,4): every nonzero syndrome has a weight-1 coset leader.
	c, _ := NewShortenedHamming(7, 3)
	for s := 1; s < 8; s++ {
		leader, err := c.CosetLeader(s)
		if err != nil {
			t.Fatal(err)
		}
		if leader.Weight() != 1 {
			t.Errorf("syndrome %d: leader weight %d, want 1", s, leader.Weight())
		}
		if c.Syndrome(leader) != s {
			t.Errorf("syndrome %d: leader has syndrome %d", s, c.Syndrome(leader))
		}
	}
	if leader, err := c.CosetLeader(0); err != nil || leader != 0 {
		t.Error("zero syndrome must have zero leader")
	}
}

func TestCosetLeaderValidation(t *testing.T) {
	c, _ := NewShortenedHamming(7, 3)
	if _, err := c.CosetLeader(-1); err == nil {
		t.Error("negative syndrome accepted")
	}
	if _, err := c.CosetLeader(8); err == nil {
		t.Error("overflow syndrome accepted")
	}
}

func TestCosetLeaderUnreachable(t *testing.T) {
	// Zero parity-check row → syndromes with that bit set are unreachable.
	h := gf2.MustMatrix(3, gf2.Vec(0b111), gf2.Vec(0))
	c, err := NewFromParityCheck(h)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CosetLeader(0b10); err == nil {
		t.Error("unreachable syndrome accepted")
	}
}

// Correct must fix every single-bit error in a distance-3 code.
func TestCorrectSingleErrors(t *testing.T) {
	c, _ := NewShortenedHamming(7, 3)
	for x := gf2.Vec(0); x < 128; x++ {
		if !c.IsCodeword(x) {
			continue
		}
		for bit := 0; bit < 7; bit++ {
			corrupted := x ^ 1<<uint(bit)
			fixed, err := c.Correct(corrupted)
			if err != nil {
				t.Fatal(err)
			}
			if fixed != x {
				t.Fatalf("codeword %07b, error bit %d: corrected to %07b", x, bit, fixed)
			}
		}
	}
}

func TestCorrectLeavesCodewordsAlone(t *testing.T) {
	c, _ := NewShortenedHamming(7, 3)
	for x := gf2.Vec(0); x < 128; x++ {
		if c.IsCodeword(x) {
			fixed, err := c.Correct(x)
			if err != nil || fixed != x {
				t.Fatalf("codeword %07b altered to %07b (err %v)", x, fixed, err)
			}
		}
	}
}

func TestNewFromParityCheckValidation(t *testing.T) {
	if _, err := NewFromParityCheck(gf2.MustMatrix(0)); err == nil {
		t.Error("empty matrix accepted")
	}
	h := gf2.MustMatrix(4, gf2.Vec(0b1111))
	c, err := NewFromParityCheck(h)
	if err != nil {
		t.Fatal(err)
	}
	// Even-weight words are codewords of the single-parity-check code.
	if !c.IsCodeword(0b0011) || c.IsCodeword(0b0111) {
		t.Error("single-parity-check code misclassified words")
	}
	if d := c.MinDistance(); d != 2 {
		t.Errorf("single-parity-check MinDistance = %d, want 2", d)
	}
}

func TestNewFromParityCheckClones(t *testing.T) {
	h := gf2.MustMatrix(3, gf2.Vec(0b111))
	c, _ := NewFromParityCheck(h)
	h.Set(0, 0, 0) // mutate the caller's matrix
	if c.Syndrome(0b001) != 1 {
		t.Fatal("Code shares caller's parity-check matrix")
	}
}

// Property: corrected words are always codewords (full-rank H).
func TestQuickCorrectYieldsCodeword(t *testing.T) {
	c, _ := NewShortenedHamming(7, 3)
	f := func(a uint8) bool {
		fixed, err := c.Correct(gf2.Vec(a & 0x7F))
		return err == nil && c.IsCodeword(fixed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
