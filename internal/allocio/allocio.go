// Package allocio serializes declustering allocations. Allocation
// tables are the natural exchange format between this library and a
// database system's catalog: a method is materialized once at relation
// creation time and the bucket→disk table persists with the relation's
// metadata. The format is JSON with explicit grid shape and disk count
// so a loaded table can be validated structurally.
package allocio

import (
	"encoding/json"
	"fmt"
	"io"

	"decluster/internal/alloc"
	"decluster/internal/grid"
)

// formatVersion guards against schema drift in persisted files.
const formatVersion = 1

// savedAllocation is the on-disk JSON schema.
type savedAllocation struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	Dims    []int  `json:"dims"`
	Disks   int    `json:"disks"`
	// Table maps row-major bucket number to disk.
	Table []int `json:"table"`
}

// Save materializes the method's full allocation and writes it as JSON.
func Save(w io.Writer, m alloc.Method) error {
	doc := savedAllocation{
		Version: formatVersion,
		Name:    m.Name(),
		Dims:    m.Grid().Dims(),
		Disks:   m.Disks(),
		Table:   alloc.Table(m),
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("allocio: encode: %w", err)
	}
	return nil
}

// Load reads a JSON allocation and reconstructs it as a table-backed
// method, validating version, grid shape, disk count and every table
// entry.
func Load(r io.Reader) (*alloc.TableAlloc, error) {
	var doc savedAllocation
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("allocio: decode: %w", err)
	}
	if doc.Version != formatVersion {
		return nil, fmt.Errorf("allocio: unsupported format version %d (want %d)", doc.Version, formatVersion)
	}
	g, err := grid.New(doc.Dims...)
	if err != nil {
		return nil, fmt.Errorf("allocio: invalid grid: %w", err)
	}
	ta, err := alloc.NewTable(doc.Name, g, doc.Disks, doc.Table)
	if err != nil {
		return nil, fmt.Errorf("allocio: invalid table: %w", err)
	}
	return ta, nil
}
