package allocio

import (
	"bytes"
	"strings"
	"testing"

	"decluster/internal/alloc"
	"decluster/internal/grid"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := grid.MustNew(8, 8)
	for _, name := range []string{"DM", "FX", "ECC", "HCAM"} {
		m, err := alloc.Build(name, g, 4)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Name() != m.Name() || loaded.Disks() != 4 {
			t.Fatalf("%s: metadata lost: %s/%d", name, loaded.Name(), loaded.Disks())
		}
		g.Each(func(c grid.Coord) bool {
			if loaded.DiskOf(c) != m.DiskOf(c) {
				t.Fatalf("%s: allocation diverges at %v", name, c)
			}
			return true
		})
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	doc := `{"version":99,"name":"x","dims":[2,2],"disks":2,"table":[0,1,0,1]}`
	if _, err := Load(strings.NewReader(doc)); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestLoadRejectsBadGrid(t *testing.T) {
	doc := `{"version":1,"name":"x","dims":[0],"disks":2,"table":[]}`
	if _, err := Load(strings.NewReader(doc)); err == nil {
		t.Error("invalid grid accepted")
	}
}

func TestLoadRejectsBadTable(t *testing.T) {
	// Table entry out of disk range.
	doc := `{"version":1,"name":"x","dims":[2,2],"disks":2,"table":[0,1,2,0]}`
	if _, err := Load(strings.NewReader(doc)); err == nil {
		t.Error("out-of-range table entry accepted")
	}
	// Table too short.
	doc2 := `{"version":1,"name":"x","dims":[2,2],"disks":2,"table":[0,1]}`
	if _, err := Load(strings.NewReader(doc2)); err == nil {
		t.Error("short table accepted")
	}
}

func TestSavedFormatIsStable(t *testing.T) {
	g := grid.MustNew(2, 2)
	m, _ := alloc.NewDM(g, 2)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"version":1`, `"name":"DM"`, `"dims":[2,2]`, `"disks":2`, `"table":[0,1,1,0]`} {
		if !strings.Contains(out, want) {
			t.Errorf("serialized form missing %s:\n%s", want, out)
		}
	}
}
