package hilbert

import "testing"

// FuzzIndexRoundTrip drives Index/Coords with fuzzed curve shapes and
// positions.
func FuzzIndexRoundTrip(f *testing.F) {
	f.Add(uint8(2), uint8(4), uint32(7))
	f.Add(uint8(3), uint8(3), uint32(100))
	f.Add(uint8(1), uint8(8), uint32(255))
	f.Fuzz(func(t *testing.T, nRaw, bRaw uint8, pick uint32) {
		n := int(nRaw%5) + 1
		b := int(bRaw%5) + 1
		c, err := New(n, b)
		if err != nil {
			t.Fatalf("valid shape rejected: %v", err)
		}
		idx := int64(pick) % c.Points()
		coords, err := c.Coords(idx, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range coords {
			if v < 0 || v >= c.Side() {
				t.Fatalf("Coords(%d)[%d] = %d out of range", idx, i, v)
			}
		}
		back, err := c.Index(coords)
		if err != nil {
			t.Fatal(err)
		}
		if back != idx {
			t.Fatalf("round trip %d → %v → %d (n=%d b=%d)", idx, coords, back, n, b)
		}
	})
}
