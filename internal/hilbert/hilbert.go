// Package hilbert implements the d-dimensional Hilbert space-filling
// curve. The curve visits every point of a 2^b × … × 2^b hypercube
// exactly once without crossing itself, and nearby points along the
// curve are nearby in space — the clustering property (Jagadish 1990)
// that the HCAM declustering method (Faloutsos & Bhagwat 1993) exploits.
//
// The implementation follows John Skilling, "Programming the Hilbert
// curve" (AIP Conf. Proc. 707, 2004): coordinates are converted to and
// from a "transposed" index representation with O(b·n) bit operations,
// then packed into a single integer by bit interleaving.
package hilbert

import (
	"fmt"
	"sort"

	"decluster/internal/grid"
)

// Curve is a Hilbert curve over an n-dimensional hypercube with 2^b
// points per side. The zero value is not usable; construct with New.
type Curve struct {
	n int // dimensions
	b int // bits per dimension
}

// New constructs a Hilbert curve over n dimensions with b bits per
// dimension. The total index space n·b must fit in 63 bits.
func New(n, b int) (*Curve, error) {
	if n < 1 {
		return nil, fmt.Errorf("hilbert: need n ≥ 1 dimensions, got %d", n)
	}
	if b < 1 {
		return nil, fmt.Errorf("hilbert: need b ≥ 1 bits, got %d", b)
	}
	if n*b > 63 {
		return nil, fmt.Errorf("hilbert: index space n·b = %d exceeds 63 bits", n*b)
	}
	return &Curve{n: n, b: b}, nil
}

// MustNew is New, panicking on error.
func MustNew(n, b int) *Curve {
	c, err := New(n, b)
	if err != nil {
		panic(err)
	}
	return c
}

// Dims returns the number of dimensions.
func (c *Curve) Dims() int { return c.n }

// Bits returns the bits per dimension.
func (c *Curve) Bits() int { return c.b }

// Side returns the hypercube side length 2^b.
func (c *Curve) Side() int { return 1 << uint(c.b) }

// Points returns the total number of points on the curve, 2^(n·b).
func (c *Curve) Points() int64 { return 1 << uint(c.n*c.b) }

// axesToTranspose converts coordinates (in-place) to the transposed
// Hilbert index representation. Skilling 2004, AxestoTranspose.
func (c *Curve) axesToTranspose(x []uint64) {
	m := uint64(1) << uint(c.b-1)
	// Inverse undo of the excess work transposeToAxes performs.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < c.n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < c.n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint64
	for q := m; q > 1; q >>= 1 {
		if x[c.n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < c.n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes converts a transposed Hilbert index (in-place) back
// to coordinates. Skilling 2004, TransposetoAxes.
func (c *Curve) transposeToAxes(x []uint64) {
	n := uint64(2) << uint(c.b-1)
	// Gray decode by H ^ (H/2).
	t := x[c.n-1] >> 1
	for i := c.n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint64(2); q != n; q <<= 1 {
		p := q - 1
		for i := c.n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// interleave packs the transposed representation into a single index:
// the most significant index bit is bit b-1 of x[0], then bit b-1 of
// x[1], …, descending through bit positions.
func (c *Curve) interleave(x []uint64) int64 {
	var idx int64
	for bit := c.b - 1; bit >= 0; bit-- {
		for i := 0; i < c.n; i++ {
			idx = idx<<1 | int64(x[i]>>uint(bit)&1)
		}
	}
	return idx
}

// deinterleave unpacks an index into the transposed representation.
func (c *Curve) deinterleave(idx int64, x []uint64) {
	for i := range x {
		x[i] = 0
	}
	pos := c.n*c.b - 1
	for bit := c.b - 1; bit >= 0; bit-- {
		for i := 0; i < c.n; i++ {
			x[i] |= uint64(idx>>uint(pos)&1) << uint(bit)
			pos--
		}
	}
}

// Index returns the position of the point along the curve, in
// [0, 2^(n·b)). It returns an error if the coordinate count or any
// coordinate value is out of range.
func (c *Curve) Index(coords []int) (int64, error) {
	if len(coords) != c.n {
		return 0, fmt.Errorf("hilbert: %d coordinates for %d-dimensional curve", len(coords), c.n)
	}
	x := make([]uint64, c.n)
	side := c.Side()
	for i, v := range coords {
		if v < 0 || v >= side {
			return 0, fmt.Errorf("hilbert: coordinate %d = %d out of [0,%d)", i, v, side)
		}
		x[i] = uint64(v)
	}
	c.axesToTranspose(x)
	return c.interleave(x), nil
}

// MustIndex is Index, panicking on error.
func (c *Curve) MustIndex(coords []int) int64 {
	idx, err := c.Index(coords)
	if err != nil {
		panic(err)
	}
	return idx
}

// Coords returns the point at position idx along the curve, writing
// into dst if it has length n (allocating otherwise).
func (c *Curve) Coords(idx int64, dst []int) ([]int, error) {
	if idx < 0 || idx >= c.Points() {
		return nil, fmt.Errorf("hilbert: index %d out of [0,%d)", idx, c.Points())
	}
	x := make([]uint64, c.n)
	c.deinterleave(idx, x)
	c.transposeToAxes(x)
	if len(dst) != c.n {
		dst = make([]int, c.n)
	}
	for i, v := range x {
		dst[i] = int(v)
	}
	return dst, nil
}

// ForGrid returns the smallest curve that encloses g: dimensions equal
// to g.K() and enough bits for the largest axis.
func ForGrid(g *grid.Grid) (*Curve, error) {
	b := 1
	for _, ab := range g.BitsPerAxis() {
		if ab > b {
			b = ab
		}
	}
	return New(g.K(), b)
}

// RankTable computes, for every bucket of g (indexed by row-major
// bucket number), its rank in the Hilbert-curve ordering restricted to
// the grid: the bucket visited first by the curve has rank 0, and so
// on. For grids that exactly fill the curve's hypercube the rank equals
// the curve index. This is the ordering HCAM assigns disks along.
func RankTable(g *grid.Grid) ([]int, error) {
	c, err := ForGrid(g)
	if err != nil {
		return nil, err
	}
	type entry struct {
		bucket int
		idx    int64
	}
	entries := make([]entry, 0, g.Buckets())
	coords := make([]int, g.K())
	var iterErr error
	g.Each(func(co grid.Coord) bool {
		for i, v := range co {
			coords[i] = v
		}
		idx, err := c.Index(coords)
		if err != nil {
			iterErr = err
			return false
		}
		entries = append(entries, entry{g.Linearize(co), idx})
		return true
	})
	if iterErr != nil {
		return nil, iterErr
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].idx < entries[j].idx })
	ranks := make([]int, g.Buckets())
	for rank, e := range entries {
		ranks[e.bucket] = rank
	}
	return ranks, nil
}
