package hilbert

import (
	"testing"
	"testing/quick"

	"decluster/internal/grid"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		n, b int
		ok   bool
	}{
		{2, 5, true},
		{0, 3, false},
		{2, 0, false},
		{8, 8, false}, // 64 bits > 63
		{7, 9, true},  // 63 bits exactly
		{1, 1, true},
	}
	for _, tc := range cases {
		_, err := New(tc.n, tc.b)
		if (err == nil) != tc.ok {
			t.Errorf("New(%d,%d) err=%v, want ok=%v", tc.n, tc.b, err, tc.ok)
		}
	}
}

func TestAccessors(t *testing.T) {
	c := MustNew(3, 4)
	if c.Dims() != 3 || c.Bits() != 4 || c.Side() != 16 {
		t.Error("accessors wrong")
	}
	if c.Points() != 1<<12 {
		t.Errorf("Points = %d, want %d", c.Points(), 1<<12)
	}
}

// The 2-D order-1 Hilbert curve visits (0,0) (0,1) (1,1) (1,0).
func TestOrder1Curve2D(t *testing.T) {
	c := MustNew(2, 1)
	want := [][]int{{0, 0}, {0, 1}, {1, 1}, {1, 0}}
	for idx, coords := range want {
		got, err := c.Coords(int64(idx), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != coords[0] || got[1] != coords[1] {
			t.Errorf("Coords(%d) = %v, want %v", idx, got, coords)
		}
	}
}

func TestIndexCoordsInverse(t *testing.T) {
	for _, tc := range []struct{ n, b int }{{1, 6}, {2, 4}, {3, 3}, {4, 2}, {5, 2}} {
		c := MustNew(tc.n, tc.b)
		coords := make([]int, tc.n)
		for idx := int64(0); idx < c.Points(); idx++ {
			coords, _ = c.Coords(idx, coords)
			back, err := c.Index(coords)
			if err != nil {
				t.Fatal(err)
			}
			if back != idx {
				t.Fatalf("n=%d b=%d: Index(Coords(%d)) = %d", tc.n, tc.b, idx, back)
			}
		}
	}
}

// The curve must visit every point exactly once.
func TestCurveIsBijection(t *testing.T) {
	c := MustNew(2, 3)
	seen := make(map[[2]int]bool)
	for idx := int64(0); idx < c.Points(); idx++ {
		coords, err := c.Coords(idx, nil)
		if err != nil {
			t.Fatal(err)
		}
		key := [2]int{coords[0], coords[1]}
		if seen[key] {
			t.Fatalf("point %v visited twice", coords)
		}
		seen[key] = true
	}
	if len(seen) != 64 {
		t.Fatalf("visited %d points, want 64", len(seen))
	}
}

// Consecutive curve positions must be adjacent in space (the defining
// continuity property — this is what gives HCAM its clustering).
func TestCurveContinuity(t *testing.T) {
	for _, tc := range []struct{ n, b int }{{2, 4}, {3, 3}} {
		c := MustNew(tc.n, tc.b)
		prev, _ := c.Coords(0, nil)
		for idx := int64(1); idx < c.Points(); idx++ {
			cur, _ := c.Coords(idx, nil)
			dist := 0
			for i := range cur {
				d := cur[i] - prev[i]
				if d < 0 {
					d = -d
				}
				dist += d
			}
			if dist != 1 {
				t.Fatalf("n=%d b=%d: positions %d→%d jump distance %d (from %v to %v)",
					tc.n, tc.b, idx-1, idx, dist, prev, cur)
			}
			prev = cur
		}
	}
}

func TestIndexErrors(t *testing.T) {
	c := MustNew(2, 2)
	if _, err := c.Index([]int{1}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := c.Index([]int{4, 0}); err == nil {
		t.Error("out-of-range coordinate accepted")
	}
	if _, err := c.Index([]int{0, -1}); err == nil {
		t.Error("negative coordinate accepted")
	}
	if _, err := c.Coords(-1, nil); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := c.Coords(16, nil); err == nil {
		t.Error("overflow index accepted")
	}
}

func TestMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustIndex did not panic")
		}
	}()
	MustNew(2, 2).MustIndex([]int{9, 9})
}

func TestForGrid(t *testing.T) {
	g := grid.MustNew(8, 3) // bits: 3 and 2 → need 3
	c, err := ForGrid(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.Dims() != 2 || c.Bits() != 3 {
		t.Fatalf("ForGrid(8×3) = %d dims, %d bits", c.Dims(), c.Bits())
	}
}

func TestRankTablePermutation(t *testing.T) {
	for _, dims := range [][]int{{8, 8}, {4, 8}, {5, 7}, {4, 4, 4}, {3, 5, 2}} {
		g := grid.MustNew(dims...)
		ranks, err := RankTable(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(ranks) != g.Buckets() {
			t.Fatalf("grid %v: table size %d, want %d", g, len(ranks), g.Buckets())
		}
		seen := make([]bool, len(ranks))
		for _, r := range ranks {
			if r < 0 || r >= len(ranks) || seen[r] {
				t.Fatalf("grid %v: ranks are not a permutation", g)
			}
			seen[r] = true
		}
	}
}

// For a grid that exactly fills the hypercube, rank equals curve index.
func TestRankTableMatchesIndexOnCube(t *testing.T) {
	g := grid.MustNew(8, 8)
	ranks, err := RankTable(g)
	if err != nil {
		t.Fatal(err)
	}
	c := MustNew(2, 3)
	g.Each(func(co grid.Coord) bool {
		idx := c.MustIndex([]int{co[0], co[1]})
		if ranks[g.Linearize(co)] != int(idx) {
			t.Fatalf("bucket %v: rank %d != index %d", co, ranks[g.Linearize(co)], idx)
		}
		return true
	})
}

// Ranks restricted to a subgrid preserve the curve's visiting order:
// consecutive ranks correspond to increasing curve indexes.
func TestRankTableOrderPreserving(t *testing.T) {
	g := grid.MustNew(5, 6)
	ranks, err := RankTable(g)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := ForGrid(g)
	byRank := make([]int64, g.Buckets())
	g.Each(func(co grid.Coord) bool {
		byRank[ranks[g.Linearize(co)]] = c.MustIndex([]int{co[0], co[1]})
		return true
	})
	for i := 1; i < len(byRank); i++ {
		if byRank[i] <= byRank[i-1] {
			t.Fatalf("rank %d has curve index %d ≤ previous %d", i, byRank[i], byRank[i-1])
		}
	}
}

// Property: Coords∘Index is the identity on random valid coordinates.
func TestQuickIndexInverse(t *testing.T) {
	c := MustNew(3, 5)
	side := c.Side()
	f := func(a, b, d uint) bool {
		coords := []int{int(a % uint(side)), int(b % uint(side)), int(d % uint(side))}
		idx, err := c.Index(coords)
		if err != nil {
			return false
		}
		back, err := c.Coords(idx, nil)
		if err != nil {
			return false
		}
		return back[0] == coords[0] && back[1] == coords[1] && back[2] == coords[2]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
