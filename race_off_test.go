//go:build !race

package decluster_test

const raceEnabled = false
