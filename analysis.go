package decluster

import (
	"io"

	"decluster/internal/allocio"
	"decluster/internal/analysis"
)

// HeatMap holds the response time of one query shape at every placement
// on the grid — the spatial structure beneath a workload average.
type HeatMap = analysis.HeatMap

// ScoredQuery is a query with its response time, optimum and ratio.
type ScoredQuery = analysis.ScoredQuery

// NewHeatMap evaluates the query shape at every placement under m.
func NewHeatMap(m Method, sides []int) (*HeatMap, error) {
	return analysis.NewHeatMap(m, sides)
}

// WorstQueries returns the k worst queries (largest deviation from
// optimal) among all rectangles of volume at most maxVolume.
func WorstQueries(m Method, maxVolume, k int) ([]ScoredQuery, error) {
	return analysis.WorstQueries(m, maxVolume, k)
}

// SaveAllocation materializes m's bucket→disk table and writes it as
// JSON.
func SaveAllocation(w io.Writer, m Method) error { return allocio.Save(w, m) }

// LoadAllocation reads a JSON allocation written by SaveAllocation and
// reconstructs it as a table-backed method.
func LoadAllocation(r io.Reader) (Method, error) { return allocio.Load(r) }
