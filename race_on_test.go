//go:build race

package decluster_test

// raceEnabled reports that the race runtime is active; its goroutine
// and channel bookkeeping allocates, so allocation-count assertions
// only hold in plain builds (CI runs them in a dedicated no-race step).
const raceEnabled = true
