package decluster_test

import (
	"context"
	"errors"
	"testing"

	decluster "decluster"
)

// The full durability lifecycle through the facade: a checksummed
// two-copy store suffers seeded silent corruption and a permanent disk
// loss; read-repair, a scrub sweep, and a background rebuild restore
// two verified-clean replicas of every bucket while the scheduler keeps
// answering correctly.
func TestFacadeRepairLifecycle(t *testing.T) {
	f, m, r := faultFixture(t)
	ctx := context.Background()

	rep, err := decluster.NewChained(m)
	if err != nil {
		t.Fatal(err)
	}
	store, err := decluster.NewReplicaStore(f, rep)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := decluster.NewFaultInjector(decluster.FaultConfig{Seed: 9, CorruptProb: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if n := decluster.SeedCorruption(store, inj); n == 0 {
		t.Fatal("seeded no corruption at p=0.05")
	}

	// Healthy baseline for the workload.
	plain, err := decluster.NewExecutor(f)
	if err != nil {
		t.Fatal(err)
	}
	base, err := plain.RangeSearch(ctx, r)
	if err != nil {
		t.Fatal(err)
	}

	// A raw verified read of a corrupt page classifies via errors.Is.
	var sawCorrupt bool
	for b := 0; b < f.Grid().Buckets() && !sawCorrupt; b++ {
		for _, d := range store.Holders(b) {
			if _, err := store.ReadVerified(d, b); errors.Is(err, decluster.ErrCorruptPage) {
				var ce *decluster.CorruptPageError
				if !errors.As(err, &ce) {
					t.Fatalf("corrupt read error %v is not a CorruptPageError", err)
				}
				sawCorrupt = true
				break
			}
		}
	}
	if !sawCorrupt {
		t.Fatal("no corrupt page observable through ReadVerified")
	}

	var tracker decluster.RepairTracker
	rr := decluster.NewReadRepairer(store, &tracker, inj)
	sched, err := decluster.Serve(f,
		decluster.WithServeReader(decluster.StoreReader(store)),
		decluster.WithServeFaults(inj),
		decluster.WithServeFailover(rep),
		decluster.WithReadRepair(rr),
	)
	if err != nil {
		t.Fatal(err)
	}

	check := func(phase string) {
		t.Helper()
		res, err := sched.Search(ctx, r)
		if err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
		if len(res.Records) != len(base.Records) {
			t.Fatalf("%s: %d records, want %d", phase, len(res.Records), len(base.Records))
		}
	}
	check("corrupt")

	// Scrub the residue, then lose a disk for good and rebuild it.
	srep, err := decluster.Scrub(ctx, store, inj)
	if err != nil {
		t.Fatal(err)
	}
	if srep.Unrepairable != 0 {
		t.Fatalf("scrub left %d unrepairable copies", srep.Unrepairable)
	}
	if bad := store.VerifyAll(); len(bad) != 0 {
		t.Fatalf("%d corrupt pages survived scrub", len(bad))
	}

	const lost = 2
	inj.FailPermanent(lost)
	rrep, err := decluster.Rebuild(ctx, store, sched, inj, lost)
	if err != nil {
		t.Fatal(err)
	}
	if rrep.Buckets == 0 || rrep.Elapsed <= 0 {
		t.Fatalf("rebuild report = %+v", rrep)
	}
	if missing := store.MissingOn(lost); len(missing) != 0 {
		t.Fatalf("disk %d still missing %d buckets", lost, len(missing))
	}
	if inj.DiskFailed(lost) {
		t.Fatal("rebuilt disk still out of service")
	}
	check("recovered")
	if _, err := sched.Close(); err != nil {
		t.Fatal(err)
	}
}

// Facade surface sanity: warning accessor, timer floor, and the
// background-priority constant.
func TestFacadeRepairSurface(t *testing.T) {
	if decluster.TimerFloor() <= 0 {
		t.Error("timer floor must be positive")
	}
	if decluster.RebuildBackgroundPriority >= 0 {
		t.Error("background rebuild priority must rank below foreground 0")
	}
	f, _, _ := faultFixture(t)
	sched, err := decluster.Serve(f, decluster.WithSimulatedLatency(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	warns := decluster.ServeWarnings(sched)
	if len(warns) != 1 {
		t.Fatalf("1ns base latency produced %d warnings, want 1 (clamp)", len(warns))
	}
}
