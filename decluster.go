package decluster

import (
	"decluster/internal/alloc"
	"decluster/internal/cost"
	"decluster/internal/grid"
)

// Grid describes a Cartesian product file: the number of partitions on
// each attribute. See NewGrid.
type Grid = grid.Grid

// Coord is a bucket coordinate vector <i_1, …, i_k>.
type Coord = grid.Coord

// Rect is an axis-aligned rectangle of buckets — the bucket set a range
// query touches.
type Rect = grid.Rect

// Method maps grid buckets to disks. All declustering schemes implement
// it.
type Method = alloc.Method

// Result aggregates a method's performance over one workload.
type Result = cost.Result

// NewGrid constructs a grid with the given partition counts, one per
// attribute.
func NewGrid(dims ...int) (*Grid, error) { return grid.New(dims...) }

// UniformGrid constructs a k-dimensional grid with side partitions per
// attribute.
func UniformGrid(k, side int) (*Grid, error) { return grid.Uniform(k, side) }

// NewDM constructs the disk modulo (DM/CMD) method: disk =
// (i_1 + … + i_k) mod M.
func NewDM(g *Grid, disks int) (Method, error) { return alloc.NewDM(g, disks) }

// NewGDM constructs the generalized disk modulo method with explicit
// per-attribute coefficients: disk = (a_1 i_1 + … + a_k i_k) mod M.
func NewGDM(g *Grid, disks int, coeffs []int) (Method, error) {
	return alloc.NewGDM(g, disks, coeffs)
}

// NewBDM constructs the binary disk modulo method (DM restricted to
// binary attribute grids).
func NewBDM(g *Grid, disks int) (Method, error) { return alloc.NewBDM(g, disks) }

// NewFX constructs the field-wise XOR method: disk =
// (bits(i_1) ⊕ … ⊕ bits(i_k)) mod M.
func NewFX(g *Grid, disks int) (Method, error) { return alloc.NewFX(g, disks) }

// NewExFX constructs the extended field-wise XOR method for grids whose
// attribute domains are narrower than the disk count.
func NewExFX(g *Grid, disks int) (Method, error) { return alloc.NewExFX(g, disks) }

// NewFXAuto applies the paper's selection rule: FX when every attribute
// has more partitions than disks, ExFX otherwise.
func NewFXAuto(g *Grid, disks int) (Method, error) { return alloc.NewFXAuto(g, disks) }

// NewECC constructs the error-correcting-code method over a
// power-of-two grid.
func NewECC(g *Grid, disks int) (Method, error) { return alloc.NewECC(g, disks) }

// NewHCAM constructs the Hilbert-curve allocation method.
func NewHCAM(g *Grid, disks int) (Method, error) { return alloc.NewHCAM(g, disks) }

// NewZCAM constructs the Z-order (Morton) curve allocation — HCAM's
// mechanism on a weaker curve, provided for ablation.
func NewZCAM(g *Grid, disks int) (Method, error) { return alloc.NewZCAM(g, disks) }

// NewGCAM constructs the Gray-code curve allocation — HCAM's mechanism
// on a weaker curve, provided for ablation.
func NewGCAM(g *Grid, disks int) (Method, error) { return alloc.NewGCAM(g, disks) }

// NewRandom constructs a balanced pseudo-random baseline allocation.
func NewRandom(g *Grid, disks int, seed int64) (Method, error) {
	return alloc.NewRandom(g, disks, seed)
}

// NewTable wraps an explicit bucket→disk table as a method.
func NewTable(name string, g *Grid, disks int, table []int) (Method, error) {
	return alloc.NewTable(name, g, disks, table)
}

// Build constructs a method by registry name (DM, CMD, GDM, BDM, FX,
// ExFX, FX*, ECC, HCAM, Random; case-insensitive).
func Build(name string, g *Grid, disks int) (Method, error) {
	return alloc.Build(name, g, disks)
}

// MethodNames lists the registered method names.
func MethodNames() []string { return alloc.Names() }

// PaperSet constructs the four methods the reproduced paper compares
// (DM/CMD, FX with the ExFX rule, ECC, HCAM), skipping any whose
// structural preconditions the configuration violates.
func PaperSet(g *Grid, disks int) []Method { return alloc.PaperSet(g, disks) }

// AllocationTable materializes a method's full bucket→disk mapping,
// indexed by row-major bucket number.
func AllocationTable(m Method) []int { return alloc.Table(m) }

// LoadHistogram counts buckets per disk under a method.
func LoadHistogram(m Method) []int { return alloc.LoadHistogram(m) }

// IsBalanced reports whether per-disk bucket counts differ by at most
// one.
func IsBalanced(m Method) bool { return alloc.IsBalanced(m) }

// Evaluator is the table-walk response-time kernel: the allocation
// materializes into a flat table once, and each query walks its
// buckets. Not safe for concurrent use; create one per goroutine.
type Evaluator = cost.Evaluator

// PrefixEvaluator is the summed-area response-time kernel: per-disk
// k-dimensional prefix tables answer any rectangle in O(M·2^k) bucket
// lookups regardless of its volume. Not safe for concurrent use; Clone
// shares the immutable tables across goroutines.
type PrefixEvaluator = cost.PrefixEvaluator

// EvalKernel selects how response times are computed: KernelAuto,
// KernelWalk, or KernelPrefix.
type EvalKernel = cost.Kernel

// RTEvaluator is the interface every response-time kernel satisfies.
type RTEvaluator = cost.RTEvaluator

// Kernel choices for NewKernelEvaluator.
const (
	// KernelAuto picks prefix tables when they fit the memory budget,
	// the table walk otherwise.
	KernelAuto = cost.KernelAuto
	// KernelWalk forces the table-walk Evaluator.
	KernelWalk = cost.KernelWalk
	// KernelPrefix forces the summed-area PrefixEvaluator.
	KernelPrefix = cost.KernelPrefix
)

// NewEvaluator materializes the table-walk kernel for m.
func NewEvaluator(m Method) *Evaluator { return cost.NewEvaluator(m) }

// NewPrefixEvaluator materializes the summed-area kernel for m.
func NewPrefixEvaluator(m Method) (*PrefixEvaluator, error) { return cost.NewPrefixEvaluator(m) }

// NewKernelEvaluator builds the chosen kernel for m; tableBudget caps
// prefix-table memory under KernelAuto (≤ 0 = cost.DefaultTableBudget).
func NewKernelEvaluator(m Method, k EvalKernel, tableBudget int64) (RTEvaluator, error) {
	return cost.NewKernelEvaluator(m, k, tableBudget)
}

// ParseKernel parses a kernel name: auto, walk, or prefix.
func ParseKernel(s string) (EvalKernel, error) { return cost.ParseKernel(s) }

// PrefixTableBytes estimates the memory of a PrefixEvaluator's tables
// for the grid and disk count — the quantity KernelAuto budgets.
func PrefixTableBytes(g *Grid, disks int) int64 { return cost.PrefixTableBytes(g, disks) }

// ResponseTime returns the parallel response time of query r under
// method m, in bucket accesses: the maximum per-disk load.
func ResponseTime(m Method, r Rect) int { return cost.ResponseTime(m, r) }

// DiskLoads returns per-disk bucket loads for query r under method m.
func DiskLoads(m Method, r Rect) []int { return cost.DiskLoads(m, r) }

// OptimalRT returns the lower bound ⌈volume/disks⌉ on any allocation's
// response time.
func OptimalRT(volume, disks int) int { return cost.OptimalRT(volume, disks) }

// IsOptimalFor reports whether m achieves the optimal response time on
// query r.
func IsOptimalFor(m Method, r Rect) bool { return cost.IsOptimalFor(m, r) }
