package decluster_test

import (
	"context"
	"sync"
	"testing"

	"decluster"
	"decluster/internal/alloc"
	"decluster/internal/grid"
)

// TestResultNoAliasing is the audit of the result-pooling ownership
// rules: a Result a caller holds without releasing must stay immutable
// while (a) other queries churn the executor's pools with Release-driven
// reuse, concurrently, and (b) the file itself grows, reallocating and
// appending to the bucket storage the zero-copy read path serves views
// of. Any aliasing of pooled scratch or bucket storage into
// Result.Records shows up here as a corrupted snapshot — and, under
// -race (CI runs this package with it), as a data race.
func TestResultNoAliasing(t *testing.T) {
	g := grid.MustNew(16, 16)
	m, err := alloc.NewHCAM(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := decluster.NewGridFile(decluster.GridFileConfig{Method: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.InsertAll(decluster.UniformRecords{K: 2, Seed: 21}.Generate(3000)); err != nil {
		t.Fatal(err)
	}
	e, err := decluster.NewExecutor(f)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	held, err := e.RangeSearch(ctx, g.MustRect(grid.Coord{2, 2}, grid.Coord{13, 13}))
	if err != nil {
		t.Fatal(err)
	}
	// Deep snapshot of the held result, taken before any churn.
	want := make([][]float64, len(held.Records))
	for i, rec := range held.Records {
		want[i] = append([]float64(nil), rec.Values...)
	}

	// Churn 1: concurrent queries that release their results back to
	// the pool, recycling whatever scratch a buggy merge would have
	// aliased into the held result.
	rects := []decluster.Rect{
		g.MustRect(grid.Coord{0, 0}, grid.Coord{15, 15}),
		g.MustRect(grid.Coord{2, 2}, grid.Coord{13, 13}),
		g.MustRect(grid.Coord{7, 1}, grid.Coord{9, 14}),
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				res, err := e.RangeSearch(ctx, rects[(w+i)%len(rects)])
				if err != nil {
					t.Error(err)
					return
				}
				res.Release()
			}
		}(w)
	}
	wg.Wait()

	// Churn 2: grow the file. The read path serves read-only views of
	// bucket storage; if the merge had kept views instead of copies,
	// these appends would scribble over the held records.
	if err := f.InsertAll(decluster.UniformRecords{K: 2, Seed: 22}.Generate(3000)); err != nil {
		t.Fatal(err)
	}

	if len(held.Records) != len(want) {
		t.Fatalf("held result length changed under churn: %d, want %d", len(held.Records), len(want))
	}
	for i, rec := range held.Records {
		for a, v := range rec.Values {
			if v != want[i][a] {
				t.Fatalf("held record %d attribute %d changed under churn: %v, want %v", i, a, v, want[i][a])
			}
		}
	}
}

// TestResultReleaseIsTerminal pins the double-release contract: Release
// is idempotent, and a second call must not hand the same Result to the
// pool twice (which would let two queries share one Result).
func TestResultReleaseIsTerminal(t *testing.T) {
	g := grid.MustNew(8, 8)
	m, err := alloc.NewHCAM(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := decluster.NewGridFile(decluster.GridFileConfig{Method: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.InsertAll(decluster.UniformRecords{K: 2, Seed: 9}.Generate(500)); err != nil {
		t.Fatal(err)
	}
	e, err := decluster.NewExecutor(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RangeSearch(context.Background(), g.FullRect())
	if err != nil {
		t.Fatal(err)
	}
	res.Release()
	res.Release() // must be a no-op, not a second pool put

	// The pool can now hand the released Result to a new query; two
	// back-to-back queries must get distinct live results.
	r1, err := e.RangeSearch(context.Background(), g.FullRect())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.RangeSearch(context.Background(), g.FullRect())
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Fatal("double release handed one Result to two queries")
	}
	r1.Release()
	r2.Release()
}
