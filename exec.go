package decluster

import (
	"context"

	"decluster/internal/exec"
)

// Executor runs grid-file searches with real per-disk concurrency: one
// worker goroutine per disk, reading the buckets its disk holds — the
// fan-out a parallel I/O subsystem performs, as live Go code rather
// than a timing model.
type Executor = exec.Executor

// ExecResult is the outcome of a parallel search: records in
// deterministic order plus per-disk bucket counts.
type ExecResult = exec.Result

// NewExecutor constructs a parallel executor over the grid file.
func NewExecutor(f *GridFile, opts ...ExecOption) (*Executor, error) {
	return exec.New(f, opts...)
}

// ExecOption configures an Executor.
type ExecOption = exec.Option

// WithMaxParallel bounds the number of disk workers running at once.
func WithMaxParallel(n int) ExecOption { return exec.WithMaxParallel(n) }

// ParallelRangeSearch is a convenience wrapper: build an executor and
// run one concurrent cell-range search.
func ParallelRangeSearch(ctx context.Context, f *GridFile, r Rect) (*ExecResult, error) {
	e, err := exec.New(f)
	if err != nil {
		return nil, err
	}
	return e.RangeSearch(ctx, r)
}
