package decluster

import (
	"context"

	"decluster/internal/cluster"
)

// ShardMap partitions a grid's bucket space into contiguous
// rectangular shards, one primary per node, and places replica copies
// with a node-level declustering stride — the paper's disk-declustering
// idea lifted one level up, so losing a node loses no shard entirely.
type ShardMap = cluster.ShardMap

// Shard is one contiguous rectangle of buckets plus the nodes that
// host it (Nodes[0] is the primary).
type Shard = cluster.Shard

// SubQuery is one shard-local piece of a decomposed range query.
type SubQuery = cluster.SubQuery

// NewShardMap builds a shard map with an explicit replica placement
// stride (1 = chain).
func NewShardMap(g *Grid, nodes, replicas, stride int) (*ShardMap, error) {
	return cluster.NewShardMap(g, nodes, replicas, stride)
}

// NewChainShardMap places each shard's replicas on consecutive nodes.
func NewChainShardMap(g *Grid, nodes, replicas int) (*ShardMap, error) {
	return cluster.NewChainShardMap(g, nodes, replicas)
}

// NewOffsetShardMap places replicas offset nodes apart, spreading a
// lost node's recovery load across distant peers.
func NewOffsetShardMap(g *Grid, nodes, replicas, offset int) (*ShardMap, error) {
	return cluster.NewOffsetShardMap(g, nodes, replicas, offset)
}

// ClusterNode is one cluster member: a grid file plus a Scheduler
// serving its hosted shards over HTTP.
type ClusterNode = cluster.Node

// ClusterNodeConfig configures a cluster node.
type ClusterNodeConfig = cluster.NodeConfig

// NewClusterNode builds a node holding its hosted slice of the records.
func NewClusterNode(cfg ClusterNodeConfig) (*ClusterNode, error) { return cluster.NewNode(cfg) }

// Router is the robust scatter/gather client: it decomposes a range
// query into per-shard sub-rectangles, fans them out with per-node
// deadlines, retries across replicas, hedges stragglers, trips
// per-node circuit breakers, and degrades to typed partial results
// when coverage is truly lost.
type Router = cluster.Router

// RouterConfig configures a Router.
type RouterConfig = cluster.RouterConfig

// NewRouter validates the configuration and builds a router.
func NewRouter(cfg RouterConfig) (*Router, error) { return cluster.NewRouter(cfg) }

// RouterResult reports one scatter/gather: merged records plus
// coverage and robustness counters.
type RouterResult = cluster.Result

// PartialError reports exactly which sub-rectangles a degraded query
// could not cover; the records that were gathered are still returned.
type PartialError = cluster.PartialError

// Sentinel errors for errors.Is classification of cluster outcomes.
var (
	// ErrPartial matches degraded queries that lost coverage.
	ErrPartial = cluster.ErrPartial
	// ErrNotHosted matches sub-queries sent to a node that does not
	// host the rectangle.
	ErrNotHosted = cluster.ErrNotHosted
	// ErrStaleEpoch matches requests refused for carrying an outdated
	// shard-map epoch; the full *StaleEpochError carries the newer map.
	ErrStaleEpoch = cluster.ErrStaleEpoch
	// ErrNoDonor matches rebuilds and migration fetches that found
	// every replica holder of some bucket hard-down.
	ErrNoDonor = cluster.ErrNoDonor
)

// ClusterErrorCode maps any error to its stable wire code, the same
// mapping nodes use to encode HTTP error envelopes.
func ClusterErrorCode(err error) string { return cluster.ErrorCode(err) }

// DecodeClusterError reverses the wire encoding: the returned error
// matches the original sentinel under errors.Is.
func DecodeClusterError(code, msg string) error { return cluster.DecodeError(code, msg) }

// ClusterHarness is an in-process multi-node cluster — real HTTP over
// loopback listeners — for tests, benchmarks, and chaos experiments.
type ClusterHarness = cluster.Harness

// ClusterHarnessConfig configures an in-process cluster.
type ClusterHarnessConfig = cluster.HarnessConfig

// StartClusterHarness boots nodes on loopback and a router over them.
func StartClusterHarness(cfg ClusterHarnessConfig) (*ClusterHarness, error) {
	return cluster.StartHarness(cfg)
}

// MigrationPlan is one membership change compiled to minimal bucket
// moves: the From and To maps (To's epoch is From's plus one) and the
// coalesced rectangles each destination must receive.
type MigrationPlan = cluster.MigrationPlan

// Move is one planned transfer: a rectangle of buckets bound for one
// destination member, with the From-epoch replica holders as donors.
type Move = cluster.Move

// PlanClusterJoin plans growing the cluster by one member: the joiner
// gets the next free member ID and takes over its share of every
// shard's replica set, moving as few buckets as the placement allows.
func PlanClusterJoin(from *ShardMap) (*MigrationPlan, error) {
	return cluster.PlanJoin(from)
}

// PlanClusterLeave plans retiring one member: its hosted buckets move
// to the surviving replicas' nodes.
func PlanClusterLeave(from *ShardMap, member int) (*MigrationPlan, error) {
	return cluster.PlanLeave(from, member)
}

// ClusterMigrateConfig drives one online membership change.
type ClusterMigrateConfig = cluster.MigrateConfig

// ClusterMigrateStats summarises an executed migration.
type ClusterMigrateStats = cluster.MigrateStats

// ClusterMigrateEvent is one migration progress observation.
type ClusterMigrateEvent = cluster.MigrateEvent

// MigrateCluster executes a membership change online — prepare, copy,
// cutover, adopt — with reads flowing throughout: the old epoch stays
// authoritative until every member promotes, and a failure before the
// first cutover ack rolls the whole change back.
func MigrateCluster(ctx context.Context, cfg ClusterMigrateConfig) (ClusterMigrateStats, error) {
	return cluster.Migrate(ctx, cfg)
}

// StaleEpochError is a node's reply to a request stamped with a
// shard-map epoch it no longer serves; it carries the node's current
// map, which is how routers learn of completed migrations.
type StaleEpochError = cluster.StaleEpochError

// NodeRebuildConfig configures a cross-node shard rebuild.
type NodeRebuildConfig = cluster.RebuildConfig

// NodeRebuildStats reports what a cross-node rebuild restored.
type NodeRebuildStats = cluster.RebuildStats

// RebuildClusterNode restores a node's hosted shards by streaming
// buckets from replica holders at background priority, paced by the
// repair throttle so foreground queries keep their latency budget.
func RebuildClusterNode(ctx context.Context, cfg NodeRebuildConfig, target *ClusterNode) (NodeRebuildStats, error) {
	return cluster.RebuildNode(ctx, cfg, target)
}
