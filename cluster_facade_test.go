package decluster_test

import (
	"context"
	"errors"
	"testing"
	"time"

	decluster "decluster"
)

// TestClusterFacade drives the whole cluster surface through the root
// package: shard map construction, an in-process HTTP cluster, robust
// scatter/gather, typed degradation, and the wire error taxonomy.
func TestClusterFacade(t *testing.T) {
	g, err := decluster.UniformGrid(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := decluster.NewChainShardMap(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sm.PlacementName() != "chain" {
		t.Errorf("placement = %q", sm.PlacementName())
	}
	method, err := decluster.NewFX(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	recs := decluster.UniformRecords{K: 2, Seed: 9}.Generate(400)

	h, err := decluster.StartClusterHarness(decluster.ClusterHarnessConfig{
		Map:     sm,
		Method:  method,
		Records: recs,
		Router: decluster.RouterConfig{
			NodeDeadline: time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	res, err := h.Router().Search(context.Background(), g.FullRect())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 400 {
		t.Errorf("full-grid search returned %d of 400 records", len(res.Records))
	}
	if res.Covered != res.SubQueries {
		t.Errorf("covered %d of %d sub-queries", res.Covered, res.SubQueries)
	}

	// Typed degradation survives the facade: crash enough nodes that a
	// shard loses both copies, and the router must say exactly what is
	// missing.
	h.Faults().Crash(0)
	h.Faults().Crash(1)
	res, err = h.Router().Search(context.Background(), g.FullRect())
	if !errors.Is(err, decluster.ErrPartial) {
		t.Fatalf("want ErrPartial with both replicas down, got %v", err)
	}
	var pe *decluster.PartialError
	if !errors.As(err, &pe) || len(pe.Uncovered) == 0 {
		t.Fatalf("partial error carries no uncovered rects: %v", err)
	}
	if res == nil || len(res.Records) == 0 {
		t.Error("partial result should still carry the gathered records")
	}

	// Wire taxonomy round-trips through the facade.
	code := decluster.ClusterErrorCode(err)
	if code != "partial" {
		t.Errorf("ClusterErrorCode = %q", code)
	}
	if !errors.Is(decluster.DecodeClusterError(code, "x"), decluster.ErrPartial) {
		t.Error("decoded wire error lost its sentinel")
	}
}

// TestClusterFacadeMigration drives the elastic surface through the
// root package: plan a join, execute it online against a harness with
// a standby, and watch the router land on the new epoch.
func TestClusterFacadeMigration(t *testing.T) {
	g, err := decluster.UniformGrid(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := decluster.NewChainShardMap(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	method, err := decluster.NewFX(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	recs := decluster.UniformRecords{K: 2, Seed: 9}.Generate(400)
	h, err := decluster.StartClusterHarness(decluster.ClusterHarnessConfig{
		Map:      sm,
		Method:   method,
		Records:  recs,
		Standbys: 1,
		Router:   decluster.RouterConfig{NodeDeadline: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	plan, err := decluster.PlanClusterJoin(sm)
	if err != nil {
		t.Fatal(err)
	}
	if plan.To.Epoch() != sm.Epoch()+1 || len(plan.Moves) == 0 {
		t.Fatalf("join plan: epoch %d→%d, %d moves", sm.Epoch(), plan.To.Epoch(), len(plan.Moves))
	}
	var events []decluster.ClusterMigrateEvent
	st, err := decluster.MigrateCluster(context.Background(), decluster.ClusterMigrateConfig{
		Plan:      plan,
		Endpoints: h.URLs(),
		Router:    h.Router(),
		Progress:  func(ev decluster.ClusterMigrateEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Buckets == 0 || st.Aborted {
		t.Fatalf("migration stats: %+v", st)
	}
	if len(events) == 0 || events[len(events)-1].Phase != "adopt" {
		t.Fatalf("progress events end with %v", events)
	}
	if got := h.Router().Epoch(); got != plan.To.Epoch() {
		t.Errorf("router epoch after adopt = %d, want %d", got, plan.To.Epoch())
	}
	res, err := h.Router().Search(context.Background(), g.FullRect())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 400 {
		t.Errorf("post-join search returned %d of 400 records", len(res.Records))
	}

	// The elastic error taxonomy is visible at the root.
	if !errors.Is(&decluster.StaleEpochError{RequestEpoch: 1, NodeEpoch: 2}, decluster.ErrStaleEpoch) {
		t.Error("StaleEpochError does not match ErrStaleEpoch")
	}
	if decluster.ErrNoDonor == nil {
		t.Error("ErrNoDonor is nil")
	}
}

// TestClusterFacadeNodeFaultSchedules checks the node-level fault API
// exposed at the root: deterministic schedules and injector state.
func TestClusterFacadeNodeFaultSchedules(t *testing.T) {
	a := decluster.NodeLossSchedule(5, 4, time.Second)
	b := decluster.NodeLossSchedule(5, 4, time.Second)
	if a.String() != b.String() {
		t.Errorf("same seed, different schedules:\n%s\n%s", a, b)
	}
	in := decluster.NewNodeInjector()
	in.Crash(2)
	if got := in.CrashedNodes(); len(got) != 1 || got[0] != 2 {
		t.Errorf("CrashedNodes = %v", got)
	}
	in.Restart(2)
	if got := in.CrashedNodes(); len(got) != 0 {
		t.Errorf("CrashedNodes after restart = %v", got)
	}
}
