package decluster

import (
	"decluster/internal/domain"
	"decluster/internal/partition"
)

// Scaler maps one attribute's typed values into the normalized [0, 1)
// axis the grid partitions.
type Scaler = domain.Scaler

// Schema binds one scaler per attribute of a relation: build normalized
// records from typed tuples and translate typed range predicates.
type Schema = domain.Schema

// IntAttr scales int64 values from an inclusive range.
type IntAttr = domain.Ints

// FloatAttr scales float64 values from a half-open range.
type FloatAttr = domain.Floats

// TimeAttr scales time.Time values from a half-open interval.
type TimeAttr = domain.Times

// EnumAttr scales an ordered categorical attribute.
type EnumAttr = domain.Enum

// HashAttr scales arbitrary strings by hashing (unordered: point and
// partial-match predicates only).
type HashAttr = domain.Hash

// NewSchema builds a schema from per-attribute scalers.
func NewSchema(scalers ...Scaler) (*Schema, error) { return domain.NewSchema(scalers...) }

// NewEnumAttr builds an ordered categorical scaler.
func NewEnumAttr(values ...string) (*EnumAttr, error) { return domain.NewEnum(values...) }

// EquiDepth computes per-axis equi-depth (quantile) partition
// boundaries from a sample, for use as GridFileConfig.Boundaries —
// keeping bucket occupancy balanced under skewed data.
func EquiDepth(sample [][]float64, dims []int) ([][]float64, error) {
	return partition.EquiDepth(sample, dims)
}

// UniformBoundaries returns the equal-width interior boundaries for an
// axis with d partitions — for mixing with equi-depth axes (e.g. a
// low-cardinality categorical axis whose quantiles would collapse).
func UniformBoundaries(d int) []float64 { return partition.Uniform(d) }
