package decluster_test

import (
	"context"
	"testing"

	"decluster"
	"decluster/internal/alloc"
	"decluster/internal/grid"
)

// newAllocFixture builds the small fixture the allocation-budget tests
// share: a 32×32 grid over 8 disks with a few thousand records.
func newAllocFixture(t testing.TB) *decluster.GridFile {
	t.Helper()
	g := grid.MustNew(32, 32)
	m, err := alloc.NewHCAM(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	f, err := decluster.NewGridFile(decluster.GridFileConfig{Method: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.InsertAll(decluster.UniformRecords{K: 2, Seed: 7}.Generate(4000)); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestRangeSearchZeroAllocs is the hot-path allocation budget: a full
// RangeSearch — admission-free executor path with a nil obs sink — must
// not allocate once its pools are warm, provided the caller recycles
// results with Release. This is the machine-independent half of the PR
// 10 bar (the ns/op half lives in BENCH_PR10.json); CI runs it on every
// push, so a regression cannot land silently.
func TestRangeSearchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates in goroutine bookkeeping; the alloc gate runs in the no-race CI step")
	}
	f := newAllocFixture(t)
	e, err := decluster.NewExecutor(f)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	r := f.Grid().MustRect(decluster.Coord{4, 4}, decluster.Coord{27, 27})

	query := func() {
		res, err := e.RangeSearch(ctx, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) == 0 {
			t.Fatal("no records")
		}
		res.Release()
	}
	// Warm every pool: query state, parked disk workers, the result
	// buffers, and the records backing array.
	for i := 0; i < 8; i++ {
		query()
	}
	if avg := testing.AllocsPerRun(100, query); avg > 0 {
		t.Fatalf("RangeSearch allocates %.2f times per query; the hot-path budget is 0", avg)
	}
}

// TestRangeSearchZeroAllocsParallelLimit covers the semaphore-limited
// variant of the same path — fewer permitted workers than active disks
// exercises the permit channel, which must also be allocation-free.
func TestRangeSearchZeroAllocsParallelLimit(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates in goroutine bookkeeping; the alloc gate runs in the no-race CI step")
	}
	f := newAllocFixture(t)
	e, err := decluster.NewExecutor(f, decluster.WithMaxParallel(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	r := f.Grid().MustRect(decluster.Coord{0, 0}, decluster.Coord{31, 31})
	query := func() {
		res, err := e.RangeSearch(ctx, r)
		if err != nil {
			t.Fatal(err)
		}
		res.Release()
	}
	for i := 0; i < 8; i++ {
		query()
	}
	if avg := testing.AllocsPerRun(100, query); avg > 0 {
		t.Fatalf("limited RangeSearch allocates %.2f times per query; budget is 0", avg)
	}
}
