package decluster

import (
	"decluster/internal/replica"
)

// Replicated is a two-copy declustering: each bucket lives on a primary
// and a backup disk (chained, Hsiao & DeWitt 1990) and each query reads
// every bucket from whichever replica minimizes the busiest disk — an
// exact min-makespan schedule. This is the replication extension the
// reproduced paper flags as open.
type Replicated = replica.Replicated

// NewChained builds the chained replication of a base method: backup =
// (primary + 1) mod M.
func NewChained(base Method) (*Replicated, error) { return replica.NewChained(base) }

// NewOffsetReplication builds a replication with backup = (primary +
// offset) mod M; offset must not be ≡ 0 (mod M).
func NewOffsetReplication(base Method, offset int) (*Replicated, error) {
	return replica.NewOffset(base, offset)
}
