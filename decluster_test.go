package decluster_test

import (
	"testing"

	"decluster"
)

func TestPublicAPIQuickstart(t *testing.T) {
	g, err := decluster.NewGrid(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	m, err := decluster.Build("HCAM", g, 16)
	if err != nil {
		t.Fatal(err)
	}
	r := g.MustRect(decluster.Coord{0, 0}, decluster.Coord{3, 3})
	rt := decluster.ResponseTime(m, r)
	opt := decluster.OptimalRT(16, 16)
	if rt < opt || rt > 16 {
		t.Fatalf("RT %d outside [%d, 16]", rt, opt)
	}
	if decluster.IsOptimalFor(m, r) != (rt == opt) {
		t.Error("IsOptimalFor disagrees with ResponseTime")
	}
}

func TestPublicConstructorsAgreeWithRegistry(t *testing.T) {
	g, _ := decluster.NewGrid(16, 16)
	direct := map[string]func() (decluster.Method, error){
		"DM":   func() (decluster.Method, error) { return decluster.NewDM(g, 8) },
		"FX":   func() (decluster.Method, error) { return decluster.NewFX(g, 8) },
		"ExFX": func() (decluster.Method, error) { return decluster.NewExFX(g, 8) },
		"ECC":  func() (decluster.Method, error) { return decluster.NewECC(g, 8) },
		"HCAM": func() (decluster.Method, error) { return decluster.NewHCAM(g, 8) },
	}
	for name, ctor := range direct {
		md, err := ctor()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mr, err := decluster.Build(name, g, 8)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		g.Each(func(c decluster.Coord) bool {
			if md.DiskOf(c) != mr.DiskOf(c) {
				t.Fatalf("%s: direct and registry constructions diverge at %v", name, c)
			}
			return true
		})
	}
}

func TestPublicWorkloadsAndEvaluation(t *testing.T) {
	g, _ := decluster.NewGrid(32, 32)
	ws, err := decluster.SizeSweep(g, []int{4, 16}, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	methods := decluster.PaperSet(g, 8)
	if len(methods) != 4 {
		t.Fatalf("PaperSet returned %d methods", len(methods))
	}
	for _, w := range ws {
		for _, res := range decluster.EvaluateAll(methods, w) {
			if res.Ratio < 1 {
				t.Fatalf("%s on %s: ratio %v < 1", res.Method, res.Workload, res.Ratio)
			}
		}
	}
}

func TestPublicTheoremSurface(t *testing.T) {
	g, _ := decluster.NewGrid(6, 6)
	res := decluster.SearchStrictlyOptimal(g, 6, 1_000_000)
	if res.Outcome != decluster.SearchImpossible {
		t.Fatalf("M=6 outcome %v, want impossible (paper theorem)", res.Outcome)
	}
	g5, _ := decluster.NewGrid(5, 5)
	res5 := decluster.SearchStrictlyOptimal(g5, 5, 1_000_000)
	if res5.Outcome != decluster.SearchFound {
		t.Fatalf("M=5 outcome %v, want found", res5.Outcome)
	}
	ta, err := decluster.NewTable("opt5", g5, 5, res5.Table)
	if err != nil {
		t.Fatal(err)
	}
	if v := decluster.CheckStrictlyOptimal(ta); v != nil {
		t.Fatalf("returned allocation not strictly optimal: %v", v)
	}
}

func TestPublicTable1(t *testing.T) {
	g, _ := decluster.NewGrid(16, 16)
	reports := decluster.Table1(g, 8)
	if len(reports) != 5 {
		t.Fatalf("Table1 returned %d rows", len(reports))
	}
	for _, r := range reports {
		if r.Applies && !r.Holds {
			t.Errorf("condition %q violated: %v", r.Condition, r.Violation)
		}
	}
}

func TestPublicStorageRoundTrip(t *testing.T) {
	g, _ := decluster.NewGrid(16, 16)
	m, _ := decluster.NewHCAM(g, 4)
	f, err := decluster.NewGridFile(decluster.GridFileConfig{Method: m})
	if err != nil {
		t.Fatal(err)
	}
	recs := decluster.UniformRecords{K: 2, Seed: 1}.Generate(1000)
	if err := f.InsertAll(recs); err != nil {
		t.Fatal(err)
	}
	rs, err := f.RangeSearch([]float64{0.2, 0.2}, []float64{0.7, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range rs.Records {
		for _, v := range rec.Values {
			if v < 0.2 || v > 0.7 {
				t.Fatalf("record %v outside bounds", rec.Values)
			}
		}
	}
	sim, err := decluster.NewDiskSimulator(decluster.DiskModel1993())
	if err != nil {
		t.Fatal(err)
	}
	if sim.ResponseTime(rs.Trace) <= 0 {
		t.Error("non-positive simulated response time")
	}
	if sim.Speedup(rs.Trace) < 1 {
		t.Error("speedup below 1")
	}
}

func TestPublicAdvisor(t *testing.T) {
	g, _ := decluster.NewGrid(32, 32)
	qs, err := decluster.Placements(g, []int{1, 8}, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := decluster.Recommend(g, 8, []decluster.WorkloadClass{
		{Workload: decluster.Workload{Name: "rows", Queries: qs}, Weight: 1},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best() == "" {
		t.Fatal("no recommendation")
	}
	if rec.Ranking[0].Score > rec.Ranking[len(rec.Ranking)-1].Score {
		t.Fatal("ranking not sorted")
	}
}

func TestPublicClassify(t *testing.T) {
	g, _ := decluster.NewGrid(8, 8)
	if k := decluster.ClassifyQuery(g, g.MustRect(decluster.Coord{1, 1}, decluster.Coord{1, 1})); k != decluster.PointQuery {
		t.Errorf("point classified as %v", k)
	}
	if k := decluster.ClassifyQuery(g, g.MustRect(decluster.Coord{1, 0}, decluster.Coord{1, 7})); k != decluster.PartialMatchQuery {
		t.Errorf("PM classified as %v", k)
	}
	if k := decluster.ClassifyQuery(g, g.MustRect(decluster.Coord{1, 2}, decluster.Coord{3, 4})); k != decluster.RangeQuery {
		t.Errorf("range classified as %v", k)
	}
}

func TestPublicBalanceHelpers(t *testing.T) {
	g, _ := decluster.NewGrid(16, 16)
	m, _ := decluster.NewHCAM(g, 5)
	if !decluster.IsBalanced(m) {
		t.Error("HCAM unbalanced")
	}
	h := decluster.LoadHistogram(m)
	total := 0
	for _, v := range h {
		total += v
	}
	if total != 256 {
		t.Errorf("histogram total %d", total)
	}
	tab := decluster.AllocationTable(m)
	if len(tab) != 256 {
		t.Errorf("table length %d", len(tab))
	}
}
