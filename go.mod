module decluster

go 1.22
