package decluster_test

import (
	"context"
	"errors"
	"testing"
	"time"

	decluster "decluster"
)

// faultFixture builds a populated 16×16 HCAM grid file on 8 disks plus
// the query rectangle the acceptance scenario reads.
func faultFixture(t *testing.T) (*decluster.GridFile, decluster.Method, decluster.Rect) {
	t.Helper()
	g, err := decluster.NewGrid(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	m, err := decluster.NewHCAM(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	f, err := decluster.NewGridFile(decluster.GridFileConfig{Method: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.InsertAll(decluster.UniformRecords{K: 2, Seed: 11}.Generate(3000)); err != nil {
		t.Fatal(err)
	}
	r, err := g.NewRect(decluster.Coord{2, 2}, decluster.Coord{9, 9})
	if err != nil {
		t.Fatal(err)
	}
	return f, m, r
}

// The ISSUE acceptance scenario, run entirely through the facade:
// seeded fail-stop of one disk, chained replication completes the
// query correctly with bounded degraded load, while the unreplicated
// executor returns a typed unavailability.
func TestFacadeFaultInjection(t *testing.T) {
	f, m, r := faultFixture(t)
	ctx := context.Background()

	healthy, err := decluster.ParallelRangeSearch(ctx, f, r)
	if err != nil {
		t.Fatal(err)
	}

	inj, err := decluster.NewFaultInjector(decluster.FaultConfig{
		Seed:          42,
		FailDisks:     []int{3},
		TransientProb: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := decluster.NewChained(m)
	if err != nil {
		t.Fatal(err)
	}
	e, err := decluster.NewExecutor(f,
		decluster.WithFaults(inj),
		decluster.WithFailover(rep),
		decluster.WithRetry(decluster.RetryPolicy{MaxAttempts: 12, BaseBackoff: time.Microsecond, MaxBackoff: 4 * time.Microsecond}),
		decluster.WithQueryDeadline(time.Minute),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RangeSearch(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Rerouted == 0 {
		t.Errorf("degraded run not flagged: degraded=%v rerouted=%d", res.Degraded, res.Rerouted)
	}
	if res.Retries == 0 {
		t.Error("no transient retries recorded at p=0.3")
	}
	if len(res.Records) != len(healthy.Records) {
		t.Fatalf("degraded run returned %d records, healthy %d", len(res.Records), len(healthy.Records))
	}
	for i := range res.Records {
		if res.Records[i].ID != healthy.Records[i].ID {
			t.Fatalf("record %d diverges from the fault-free run", i)
		}
	}
	if res.BucketsPerDisk[3] != 0 {
		t.Errorf("failed disk 3 served %d buckets", res.BucketsPerDisk[3])
	}
	maxLoad := func(loads []int) int {
		m := 0
		for _, l := range loads {
			if l > m {
				m = l
			}
		}
		return m
	}
	if d, h := maxLoad(res.BucketsPerDisk), maxLoad(healthy.BucketsPerDisk); d > 2*h {
		t.Errorf("degraded busiest disk %d exceeds 2× fault-free %d", d, h)
	}

	// Without replication the same failure is a typed unavailability.
	bare, err := decluster.NewExecutor(f, decluster.WithFaults(inj))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bare.RangeSearch(ctx, r); !errors.Is(err, decluster.ErrUnavailable) {
		t.Fatalf("unreplicated run: got %v, want ErrUnavailable", err)
	} else {
		var ue *decluster.UnavailableError
		if !errors.As(err, &ue) || len(ue.Buckets) == 0 {
			t.Errorf("unavailability lists no buckets: %v", err)
		}
	}
}

func TestFacadeDegradedCost(t *testing.T) {
	_, m, r := faultFixture(t)
	rt0, err := decluster.DegradedResponseTime(m, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := decluster.ResponseTime(m, r); rt0 != want {
		t.Errorf("healthy degraded RT %d != ResponseTime %d", rt0, want)
	}
	if _, err := decluster.DegradedResponseTime(m, r, []int{2}); !errors.Is(err, decluster.ErrUnavailable) {
		t.Errorf("unreplicated failure: got %v, want ErrUnavailable", err)
	}
	loads, unreachable, err := decluster.DegradedDiskLoads(m, r, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if loads[2] != 0 || len(unreachable) == 0 {
		t.Errorf("degraded loads %v, unreachable %v", loads, unreachable)
	}
}

func TestFacadeFaultDefaults(t *testing.T) {
	p := decluster.DefaultRetry()
	if p.MaxAttempts < 2 || p.BaseBackoff <= 0 || p.MaxBackoff < p.BaseBackoff {
		t.Errorf("implausible default retry policy %+v", p)
	}
	if _, err := decluster.NewFaultInjector(decluster.FaultConfig{TransientProb: 1.5}); err == nil {
		t.Error("probability 1.5 accepted")
	}
}
