package decluster_test

import (
	"testing"

	"decluster"
)

// FuzzDynamicEvaluatorMaintenance is the end-to-end differential proof
// of delta maintenance: an evaluator attached to a live dynamic grid
// file — fed only the observer's CellMoved/GridReshaped stream as
// inserts trigger splits and directory doublings — must hold summed-area
// tables bit-identical to a from-scratch rebuild over the file's
// current directory at every checkpoint. This closes the gap the
// cost-package fuzz leaves open: there the move stream is synthetic;
// here it is whatever the real split machinery emits, in its real
// order, interleaved with reshapes.
func FuzzDynamicEvaluatorMaintenance(f *testing.F) {
	f.Add(uint8(2), uint8(4), uint8(3), int64(1), uint16(300))
	f.Add(uint8(1), uint8(2), uint8(1), int64(7), uint16(120))
	f.Add(uint8(3), uint8(7), uint8(6), int64(42), uint16(500))
	f.Fuzz(func(t *testing.T, k, disks, capacity uint8, seed int64, n uint16) {
		kk := int(k)%3 + 1
		nd := int(disks)%8 + 1
		cap := int(capacity)%8 + 2
		file, err := decluster.NewDynamicGridFile(decluster.DynamicConfig{
			K: kk, Disks: nd, Capacity: cap,
		})
		if err != nil {
			t.Fatal(err)
		}
		me, err := decluster.NewDynamicEvaluator(file, "dyn", decluster.KernelPrefix, 0)
		if err != nil {
			t.Fatal(err)
		}
		check := func(when string) {
			pe := me.Prefix()
			if pe == nil {
				t.Fatalf("%s: forced prefix kernel degraded to walk", when)
			}
			rebuilt, err := decluster.NewPrefixEvaluator(file.AsMethod("rebuild"))
			if err != nil {
				t.Fatalf("%s: rebuild: %v", when, err)
			}
			if !pe.TablesEqual(rebuilt) {
				t.Fatalf("%s: maintained tables diverge from rebuild (%d buckets, %d splits, %d doublings)",
					when, file.NumBuckets(), file.Splits(), file.DirectoryDoublings())
			}
		}
		recs := decluster.UniformRecords{K: kk, Seed: seed}.Generate(int(n)%800 + 1)
		for i, rec := range recs {
			if err := file.Insert(rec); err != nil {
				t.Fatal(err)
			}
			if (i+1)%100 == 0 {
				check("mid-stream")
			}
		}
		check("end of stream")
	})
}
