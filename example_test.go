package decluster_test

import (
	"fmt"

	"decluster"
)

// Declustering one query: build a method and measure a range query
// against the optimal lower bound.
func ExampleResponseTime() {
	g, _ := decluster.NewGrid(64, 64)
	m, _ := decluster.NewHCAM(g, 16)
	q := g.MustRect(decluster.Coord{0, 0}, decluster.Coord{3, 3})
	fmt.Printf("RT=%d optimal=%d\n",
		decluster.ResponseTime(m, q), decluster.OptimalRT(q.Volume(), 16))
	// Output: RT=1 optimal=1
}

// Methods are also constructible by registry name.
func ExampleBuild() {
	g, _ := decluster.NewGrid(16, 16)
	m, _ := decluster.Build("dm", g, 5)
	fmt.Println(m.Name(), m.DiskOf(decluster.Coord{3, 4}))
	// Output: DM 2
}

// The paper's theorem, verified constructively: strictly optimal
// allocations exist for 5 disks but not for 6.
func ExampleSearchStrictlyOptimal() {
	g5, _ := decluster.NewGrid(5, 5)
	g6, _ := decluster.NewGrid(6, 6)
	fmt.Println("M=5:", decluster.SearchStrictlyOptimal(g5, 5, 0).Outcome)
	fmt.Println("M=6:", decluster.SearchStrictlyOptimal(g6, 6, 0).Outcome)
	// Output:
	// M=5: found
	// M=6: impossible
}

// DM answers every 1×j row query optimally — the classic modulo-family
// property.
func ExampleEvaluate() {
	g, _ := decluster.NewGrid(16, 16)
	m, _ := decluster.NewDM(g, 8)
	qs, _ := decluster.Placements(g, []int{1, 8}, 0, 1)
	res := decluster.Evaluate(m, decluster.Workload{Name: "rows", Queries: qs})
	fmt.Printf("ratio=%.1f optimal-on=%.0f%%\n", res.Ratio, res.FracOptimal*100)
	// Output: ratio=1.0 optimal-on=100%
}

// GDM coefficient search rediscovers the strictly optimal diagonal
// allocation for five disks.
func ExampleOptimizeGDM() {
	g, _ := decluster.NewGrid(10, 10)
	qs, _ := decluster.Placements(g, []int{2, 2}, 0, 1)
	res, _ := decluster.OptimizeGDM(g, 5, decluster.Workload{Name: "squares", Queries: qs}, 0)
	fmt.Printf("ratio=%.1f\n", res.Eval.Ratio)
	// Output: ratio=1.0
}
