package decluster

import (
	"io"

	"decluster/internal/catalog"
)

// Catalog manages the declustering metadata of a parallel database
// instance: one entry per relation, each with its own grid and
// declustering method — the paper's conclusion ("parallel database
// systems must support a number of declustering methods") as a
// component.
type Catalog = catalog.Catalog

// Relation is one declustered relation in a catalog.
type Relation = catalog.Relation

// NewCatalog creates an empty catalog for a system with the given disk
// count.
func NewCatalog(disks int) (*Catalog, error) { return catalog.New(disks) }

// LoadCatalog reconstructs a catalog's metadata from JSON written by
// Catalog.Save.
func LoadCatalog(r io.Reader) (*Catalog, error) { return catalog.Load(r) }
