package decluster

import (
	"context"
	"time"

	"decluster/internal/serve"
)

// Scheduler is the overload-safe multi-query serving layer: admission
// control with a bounded priority queue, per-disk circuit breakers fed
// by an EWMA health tracker, hedged reads against live replicas, and
// graceful drain. It wraps the parallel Executor, so everything the
// executor does (fault injection, retry, failover routing) composes
// with the serving policies.
type Scheduler = serve.Scheduler

// ServeOption configures a Scheduler.
type ServeOption = serve.Option

// ServeQuery is one unit of admission: a cell rectangle plus the
// priority that orders queueing and decides eviction.
type ServeQuery = serve.Query

// ServeStats is a snapshot of a scheduler's lifetime counters.
type ServeStats = serve.Stats

// ServeSnapshot is the final report Close returns: counters plus
// per-disk health at drain time.
type ServeSnapshot = serve.Snapshot

// AdmissionConfig bounds concurrency and queueing.
type AdmissionConfig = serve.AdmissionConfig

// BreakerConfig tunes the per-disk health tracker and circuit breakers.
type BreakerConfig = serve.BreakerConfig

// BreakerState is one of the circuit-breaker states.
type BreakerState = serve.BreakerState

// Circuit-breaker states: closed serves normally, open is routed
// around, half-open is probing its way back.
const (
	BreakerClosed   = serve.BreakerClosed
	BreakerOpen     = serve.BreakerOpen
	BreakerHalfOpen = serve.BreakerHalfOpen
)

// HedgeConfig tunes speculative backup reads.
type HedgeConfig = serve.HedgeConfig

// DiskHealth is one disk's health snapshot.
type DiskHealth = serve.DiskHealth

// OverloadedError reports one shed query with the load that shed it.
type OverloadedError = serve.OverloadedError

// Sentinel errors for errors.Is classification of serving outcomes.
var (
	// ErrOverloaded matches queries shed by admission control.
	ErrOverloaded = serve.ErrOverloaded
	// ErrSchedulerClosed matches queries submitted to (or queued in) a
	// draining scheduler.
	ErrSchedulerClosed = serve.ErrClosed
)

// Serve builds an overload-safe scheduler over the grid file.
func Serve(f *GridFile, opts ...ServeOption) (*Scheduler, error) {
	return serve.New(f, opts...)
}

// WithAdmission sets the admission-control bounds and drop policy.
func WithAdmission(a AdmissionConfig) ServeOption { return serve.WithAdmission(a) }

// WithBreaker tunes the per-disk health tracker and circuit breakers.
func WithBreaker(b BreakerConfig) ServeOption { return serve.WithBreaker(b) }

// WithHedging enables speculative backup reads after h.After; requires
// WithServeFailover for the backup replicas.
func WithHedging(h HedgeConfig) ServeOption { return serve.WithHedging(h) }

// WithDrainTimeout bounds how long Close waits for in-flight queries
// (default 5s).
func WithDrainTimeout(d time.Duration) ServeOption { return serve.WithDrainTimeout(d) }

// WithServeFaults attaches a fault injector to the scheduler's
// executor; the scheduler also consults it to skip hedging onto
// fail-stop disks.
func WithServeFaults(inj *FaultInjector) ServeOption { return serve.WithFaults(inj) }

// WithServeFailover attaches the replica scheme used for degraded
// routing, breaker avoidance, and hedge targets.
func WithServeFailover(r *Replicated) ServeOption { return serve.WithFailover(r) }

// WithServeRetry sets the transient-error retry policy of the
// scheduler's executor.
func WithServeRetry(p RetryPolicy) ServeOption { return serve.WithRetry(p) }

// WithServeDeadline bounds each admitted query's execution wall-clock
// time (queue wait excluded; bound that with the caller's context).
func WithServeDeadline(d time.Duration) ServeOption { return serve.WithDeadline(d) }

// WithServeMaxParallel bounds each query's concurrent disk workers.
func WithServeMaxParallel(n int) ServeOption { return serve.WithMaxParallel(n) }

// WithServeReader replaces the scheduler's base grid-file reader.
func WithServeReader(r BucketReader) ServeOption { return serve.WithBucketReader(r) }

// WithSimulatedLatency inserts a simulated per-read service time of d ×
// the injector's straggler multiplier, giving soak runs over the
// in-memory grid file a realistic latency surface.
func WithSimulatedLatency(d time.Duration) ServeOption { return serve.WithBaseLatency(d) }

// ServeRangeSearch is a convenience wrapper: build a scheduler with
// default policies, run one search, and drain.
func ServeRangeSearch(ctx context.Context, f *GridFile, r Rect) (*ExecResult, error) {
	s, err := serve.New(f)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Search(ctx, r)
}
