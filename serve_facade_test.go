package decluster_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	decluster "decluster"
)

// The serving layer, end to end through the facade: a scheduler with
// faults, failover, hedging, breakers, and admission control answers a
// concurrent workload correctly and drains cleanly.
func TestFacadeServe(t *testing.T) {
	f, m, r := faultFixture(t)
	ctx := context.Background()

	healthy, err := decluster.ParallelRangeSearch(ctx, f, r)
	if err != nil {
		t.Fatal(err)
	}

	inj, err := decluster.NewFaultInjector(decluster.FaultConfig{
		Seed:          9,
		TransientProb: 0.2,
		Stragglers:    map[int]float64{2: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := decluster.NewOffsetReplication(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := decluster.Serve(f,
		decluster.WithServeFaults(inj),
		decluster.WithServeFailover(rep),
		decluster.WithServeRetry(decluster.RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Microsecond, MaxBackoff: 8 * time.Microsecond}),
		decluster.WithSimulatedLatency(100*time.Microsecond),
		decluster.WithHedging(decluster.HedgeConfig{After: 250 * time.Microsecond, OnError: true}),
		decluster.WithBreaker(decluster.BreakerConfig{ErrorThreshold: 4, Cooldown: 10 * time.Millisecond}),
		decluster.WithAdmission(decluster.AdmissionConfig{MaxInFlight: 4, MaxQueue: 32}),
		decluster.WithDrainTimeout(10*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res, err := s.Do(ctx, decluster.ServeQuery{Rect: r, Priority: c % 2})
			if err != nil {
				t.Errorf("client %d: %v", c, err)
				return
			}
			if len(res.Records) != len(healthy.Records) {
				t.Errorf("client %d got %d records, want %d", c, len(res.Records), len(healthy.Records))
			}
		}(c)
	}
	wg.Wait()

	snap, err := s.Close()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if snap.Stats.Completed != 8 {
		t.Errorf("completed %d of 8", snap.Stats.Completed)
	}
	if snap.Stats.HedgesIssued == 0 {
		t.Error("a ×20 straggler provoked no hedges")
	}
	if len(snap.Disks) != f.Disks() {
		t.Errorf("snapshot covers %d disks, want %d", len(snap.Disks), f.Disks())
	}
	if _, err := s.Search(ctx, r); !errors.Is(err, decluster.ErrSchedulerClosed) {
		t.Errorf("post-close query: got %v, want ErrSchedulerClosed", err)
	}
}

func TestFacadeServeOverload(t *testing.T) {
	f, _, r := faultFixture(t)
	s, err := decluster.Serve(f,
		decluster.WithSimulatedLatency(200*time.Microsecond),
		decluster.WithAdmission(decluster.AdmissionConfig{MaxInFlight: 1, MaxQueue: -1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	var sheds, done int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Search(ctx, r)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				done++
			case errors.Is(err, decluster.ErrOverloaded):
				sheds++
				var oe *decluster.OverloadedError
				if !errors.As(err, &oe) {
					t.Errorf("shed lacks typed detail: %v", err)
				}
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if done == 0 || sheds == 0 {
		t.Errorf("want a mix of served and shed, got done=%d sheds=%d", done, sheds)
	}
	if got := s.Stats().Shed(); got != uint64(sheds) {
		t.Errorf("stats count %d shed, clients saw %d", got, sheds)
	}
}

func TestFacadeServeConvenience(t *testing.T) {
	f, _, r := faultFixture(t)
	res, err := decluster.ServeRangeSearch(context.Background(), f, r)
	if err != nil {
		t.Fatal(err)
	}
	want, err := decluster.ParallelRangeSearch(context.Background(), f, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(want.Records) {
		t.Errorf("ServeRangeSearch returned %d records, want %d", len(res.Records), len(want.Records))
	}
	if decluster.BreakerOpen.String() != "open" || decluster.BreakerClosed.String() != "closed" {
		t.Error("breaker state names wrong through the facade")
	}
}
