package decluster

import (
	"context"

	"decluster/internal/autopilot"
	"decluster/internal/cluster"
)

// Autopilot is the load-driven membership controller: it watches a
// live cluster's windowed per-node p99 latency, admission-queue depth,
// and shed rate, and grows the cluster onto standby nodes (or drains
// the most recent joiner) through the same online migration the manual
// path uses. Hysteresis, safety fuses (open breakers, suspected
// partitions, migrations in flight, the node envelope), and a
// post-migration cool-down keep a flapping signal from flapping the
// membership — the thrash counter stays at zero under adversarial
// schedules.
type Autopilot = autopilot.Controller

// AutopilotConfig wires an Autopilot to a live cluster.
type AutopilotConfig = autopilot.Config

// AutopilotPolicy sets the controller's thresholds, hysteresis depths,
// cool-down, thrash window, and node envelope.
type AutopilotPolicy = autopilot.Policy

// AutopilotSignals is one tick's observed cluster state — the
// machine's entire input.
type AutopilotSignals = autopilot.Signals

// AutopilotStats snapshots the controller's lifetime accounting:
// ticks, joins, leaves, aborts, fuse vetoes, thrash, and migration
// cost in buckets and records.
type AutopilotStats = autopilot.Stats

// AutopilotState is the controller state machine's position: steady,
// scale-up-pending, scale-down-pending, migrating, or cool-down.
type AutopilotState = autopilot.State

// AutopilotDecision is one machine step's outcome, including the fuse
// that vetoed an otherwise-ready action.
type AutopilotDecision = autopilot.Decision

// AutopilotMachine is the pure decision core — no clocks, no I/O —
// usable on its own for deterministic policy simulation.
type AutopilotMachine = autopilot.Machine

// NewAutopilot validates the wiring and builds a controller in the
// steady state; run it with Start/Stop or Run.
func NewAutopilot(cfg AutopilotConfig) (*Autopilot, error) { return autopilot.New(cfg) }

// NewAutopilotMachine builds the bare state machine over a policy.
func NewAutopilotMachine(p AutopilotPolicy) *AutopilotMachine { return autopilot.NewMachine(p) }

// ClusterHealth is one node's health-probe reply: identity, hosted
// shards, migration pressure, and live backpressure readings.
type ClusterHealth = cluster.Health

// ProbeClusterHealth fetches one node's /v1/health; standby nodes
// answer with State "standby", which is how the autopilot discovers
// join capacity.
func ProbeClusterHealth(ctx context.Context, base string) (ClusterHealth, error) {
	return cluster.ProbeHealth(ctx, nil, base)
}
