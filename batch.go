package decluster

import (
	"context"
	"time"

	"decluster/internal/batch"
	"decluster/internal/serve"
)

// BatchEngine groups in-flight range queries inside a small time/size
// window, dedupes their shared bucket demand so each distinct bucket is
// read once physically and fanned out to every covering query, and
// dispatches the deduped reads through the Scheduler's admission path.
// Abandoning one query never cancels a read another query still needs.
// The engine also answers aggregate queries (COUNT/SUM/MIN/MAX over a
// rectangle) from per-disk summed-area tables with zero bucket reads.
type BatchEngine = batch.Engine

// BatchOption configures a BatchEngine.
type BatchOption = batch.Option

// BatchQuery is one logical unit of batching: a cell rectangle plus
// the admission priority its group's physical reads inherit.
type BatchQuery = batch.Query

// BatchAnswer is one logical query's result; Records are bit-identical
// to the same rectangle issued unbatched.
type BatchAnswer = batch.Answer

// BatchStats is a snapshot of an engine's lifetime counters.
type BatchStats = batch.Stats

// BatchPolicy orders a batch group's physical reads.
type BatchPolicy = batch.Policy

// Read-ordering policies: FIFO dispatches in first-demand order,
// shared-work-first dispatches the most-shared buckets first.
const (
	BatchFIFO            = batch.PolicyFIFO
	BatchSharedWorkFirst = batch.PolicySharedWorkFirst
)

// AggregateOp selects the aggregate a query computes.
type AggregateOp = batch.AggregateOp

// Aggregate operators, answered without any bucket reads.
const (
	AggCount = batch.OpCount
	AggSum   = batch.OpSum
	AggMin   = batch.OpMin
	AggMax   = batch.OpMax
)

// AggregateQuery asks for one aggregate over a cell rectangle.
type AggregateQuery = batch.AggregateQuery

// AggregateResult is an aggregate answer.
type AggregateResult = batch.AggregateResult

// ErrBatchClosed matches queries submitted to a closed engine.
var ErrBatchClosed = batch.ErrClosed

// NewBatchEngine layers a batch engine over a scheduler: each group's
// deduped bucket reads are admitted through s like any other query.
// Build it after loading the file — it snapshots the records into the
// aggregate index.
func NewBatchEngine(f *GridFile, s *Scheduler, opts ...BatchOption) (*BatchEngine, error) {
	return batch.New(f, func(ctx context.Context, buckets []int, prio int) (*ExecResult, error) {
		return s.DoBuckets(ctx, serve.BucketQuery{Buckets: buckets, Priority: prio})
	}, opts...)
}

// MergeAggregates folds partial aggregate results of the same
// (op, attr) — e.g. per-shard answers — into one.
func MergeAggregates(op AggregateOp, attr int, parts []AggregateResult) AggregateResult {
	return batch.MergeAggregates(op, attr, parts)
}

// WithBatchWindow sets the batching window: a group dispatches when
// its oldest member has waited this long (default 2ms).
func WithBatchWindow(d time.Duration) BatchOption { return batch.WithWindow(d) }

// WithBatchMax caps a group's size; a full group dispatches without
// waiting out the window (default 16).
func WithBatchMax(n int) BatchOption { return batch.WithMaxBatch(n) }

// WithBatchWave bounds the buckets per physical dispatch (0, the
// default, dispatches a group's whole plan as one read).
func WithBatchWave(n int) BatchOption { return batch.WithWave(n) }

// WithBatchPolicy selects the read-ordering policy (default FIFO).
func WithBatchPolicy(p BatchPolicy) BatchOption { return batch.WithPolicy(p) }

// WithBatchObserver attaches an observability sink: batch.* metric
// families plus a span tree per group when tracing.
func WithBatchObserver(s *Sink) BatchOption { return batch.WithObserver(s) }
