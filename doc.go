// Package decluster is a library of grid-based multi-attribute record
// declustering methods for parallel database systems, reproducing the
// study "Performance Evaluation of Grid Based Multi-Attribute Record
// Declustering Methods" (Himatsingka & Srivastava, ICDE 1994).
//
// A Cartesian product file divides a k-attribute space into a grid of
// buckets; a declustering method assigns each bucket to one of M disks
// so range queries can fan out across the disk array. The package
// provides:
//
//   - The declustering methods the paper compares: disk modulo (DM /
//     CMD) and generalizations (GDM, BDM), field-wise XOR (FX / ExFX),
//     error-correcting codes (ECC) and the Hilbert-curve allocation
//     method (HCAM), plus random and explicit-table baselines.
//   - The evaluation metric: parallel response time in bucket accesses
//     against the ⌈|Q|/M⌉ lower bound, with workload generators for
//     range, partial-match and point query classes.
//   - The theory: strict-optimality checking and a complete search
//     that verifies the paper's theorem — no strictly optimal
//     declustering for range queries exists when M > 5.
//   - A storage substrate (multi-disk grid file + disk simulator) for
//     end-to-end timings, and an advisor that picks a method from a
//     workload description, operationalizing the paper's conclusion.
//   - Experiment harnesses regenerating every table and figure of the
//     paper's evaluation (see the bench_test.go benchmarks and
//     cmd/declustersim).
//
// Quick start:
//
//	g, _ := decluster.NewGrid(64, 64)
//	m, _ := decluster.Build("HCAM", g, 16)
//	rt := decluster.ResponseTime(m, g.MustRect(
//	    decluster.Coord{0, 0}, decluster.Coord{3, 3}))
//	fmt.Printf("4×4 query: %d bucket accesses (optimal %d)\n",
//	    rt, decluster.OptimalRT(16, 16))
package decluster
