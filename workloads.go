package decluster

import (
	"decluster/internal/cost"
	"decluster/internal/query"
)

// Workload is a named set of queries evaluated together.
type Workload = query.Workload

// QueryKind classifies a query as range, partial-match or point.
type QueryKind = query.Kind

// Query kind values.
const (
	RangeQuery        = query.Range
	PartialMatchQuery = query.PartialMatch
	PointQuery        = query.Point
)

// ClassifyQuery returns the most specific kind describing r on g.
func ClassifyQuery(g *Grid, r Rect) QueryKind { return query.Classify(g, r) }

// Placements enumerates every position of a rectangle with the given
// side lengths on g, sampling down to limit placements (limit > 0) with
// the given seed.
func Placements(g *Grid, sides []int, limit int, seed int64) ([]Rect, error) {
	return query.Placements(g, sides, limit, seed)
}

// SizeSweep builds one workload per query area: all placements of the
// most-square shape of that area.
func SizeSweep(g *Grid, areas []int, limit int, seed int64) ([]Workload, error) {
	return query.SizeSweep(g, areas, limit, seed)
}

// ShapeSweep builds one workload per shape of a fixed area on a
// 2-attribute grid, ordered square to line.
func ShapeSweep(g *Grid, area, limit int, seed int64) ([]Workload, error) {
	return query.ShapeSweep(g, area, limit, seed)
}

// RandomRange generates n range queries with sides drawn uniformly from
// [minSide, maxSide] and uniform placement.
func RandomRange(g *Grid, minSide, maxSide, n int, seed int64) (Workload, error) {
	return query.RandomRange(g, minSide, maxSide, n, seed)
}

// HotRegion generates n range queries concentrated (with probability
// heat) in a hot sub-rectangle — the skewed query loci of interactive
// workloads.
func HotRegion(g *Grid, hot Rect, heat float64, minSide, maxSide, n int, seed int64) (Workload, error) {
	return query.HotRegion(g, hot, heat, minSide, maxSide, n, seed)
}

// PartialMatch enumerates partial match queries for an
// unspecified-attribute pattern (true = unspecified).
func PartialMatch(g *Grid, unspecified []bool, limit int, seed int64) (Workload, error) {
	return query.PartialMatchWorkload(g, unspecified, limit, seed)
}

// Points enumerates point queries (all attributes specified).
func Points(g *Grid, limit int, seed int64) (Workload, error) {
	return query.PointWorkload(g, limit, seed)
}

// Evaluate measures method m over workload w: mean response time, mean
// optimal response time, their ratio, worst case and the fraction of
// queries answered optimally.
func Evaluate(m Method, w Workload) Result { return cost.Evaluate(m, w) }

// EvaluateAll measures every method over the same workload, preserving
// method order.
func EvaluateAll(methods []Method, w Workload) []Result {
	return cost.EvaluateAll(methods, w)
}
