// Benchmarks regenerating every table and figure of the reproduced
// paper's evaluation (one Benchmark per artifact, E1–E10 in DESIGN.md),
// plus ablation benchmarks for the design choices DESIGN.md calls out
// and micro-benchmarks of the allocation hot paths.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark regenerates its artifact per iteration and
// logs the rendered table (visible with -v); cmd/declustersim prints
// the same tables directly.
package decluster_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"decluster"
	"decluster/internal/alloc"
	"decluster/internal/cost"
	"decluster/internal/ecc"
	"decluster/internal/experiments"
	"decluster/internal/gf2"
	"decluster/internal/grid"
	"decluster/internal/hilbert"
	"decluster/internal/optimality"
	"decluster/internal/query"
)

// benchOpt keeps the per-iteration work bounded so the full suite runs
// in minutes while preserving the paper's regimes.
func benchOpt() experiments.Options {
	return experiments.Options{Seed: 1, SampleLimit: 300}
}

// BenchmarkTable1Conditions regenerates E1: the paper's Table 1 of
// partial-match optimality conditions, verified empirically.
func BenchmarkTable1Conditions(b *testing.B) {
	var reports []decluster.ConditionReport
	g, _ := decluster.NewGrid(16, 16)
	for i := 0; i < b.N; i++ {
		reports = decluster.Table1(g, 8)
	}
	for _, r := range reports {
		b.Log(r.String())
	}
}

// BenchmarkTheoremSearch regenerates E2: the strict-optimality
// existence table for M = 1..8, whose M > 5 band is the paper's
// theorem.
func BenchmarkTheoremSearch(b *testing.B) {
	var res *experiments.TheoremResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Theorem(experiments.TheoremConfig{MaxDisks: 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	if !res.HoldsPaperTheorem() {
		b.Fatal("theorem violated")
	}
	b.Log("\n" + res.Table().String())
}

// BenchmarkExpQuerySize regenerates E3: Experiment 1, the effect of
// query size (area 1 → 1024).
func BenchmarkExpQuerySize(b *testing.B) {
	var e *experiments.Experiment
	for i := 0; i < b.N; i++ {
		var err error
		e, err = experiments.QuerySize(experiments.SizeConfig{}, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + e.Table(experiments.MeanRT).String())
	b.Log("\n" + e.Table(experiments.Ratio).String())
}

// BenchmarkExpQueryShape regenerates E4: Experiment 2, the effect of
// query shape (square → line at fixed area).
func BenchmarkExpQueryShape(b *testing.B) {
	var e *experiments.Experiment
	for i := 0; i < b.N; i++ {
		var err error
		e, err = experiments.QueryShape(experiments.ShapeConfig{}, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + e.Table(experiments.Ratio).String())
}

// BenchmarkExpAttributes regenerates E5: Experiment 3, the effect of
// the number of attributes (3-attribute grid).
func BenchmarkExpAttributes(b *testing.B) {
	var e *experiments.Experiment
	for i := 0; i < b.N; i++ {
		var err error
		e, err = experiments.Attributes(experiments.AttrsConfig{}, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + e.Table(experiments.Ratio).String())
}

// benchDisksCfg trims the disk sweep for bench iterations while keeping
// the crossover region.
func benchDisksCfg() experiments.DisksConfig {
	return experiments.DisksConfig{Disks: []int{4, 8, 16, 24, 32}}
}

// BenchmarkExpDisksSmall regenerates E6: Figure 5(a), response time vs
// disks for small queries.
func BenchmarkExpDisksSmall(b *testing.B) {
	var e *experiments.Experiment
	for i := 0; i < b.N; i++ {
		var err error
		e, err = experiments.DisksSmall(benchDisksCfg(), benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + e.Table(experiments.MeanRT).String())
}

// BenchmarkExpDisksLarge regenerates E7: Figure 5(b), response time vs
// disks for large queries.
func BenchmarkExpDisksLarge(b *testing.B) {
	var e *experiments.Experiment
	for i := 0; i < b.N; i++ {
		var err error
		e, err = experiments.DisksLarge(benchDisksCfg(), benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + e.Table(experiments.MeanRT).String())
}

// BenchmarkExpDatabaseSize regenerates E8: the database-size axis.
func BenchmarkExpDatabaseSize(b *testing.B) {
	var e *experiments.Experiment
	for i := 0; i < b.N; i++ {
		var err error
		e, err = experiments.DatabaseSize(experiments.DBSizeConfig{Sides: []int{16, 32, 64, 128}}, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + e.Table(experiments.Ratio).String())
}

// BenchmarkExpPartialMatch regenerates E9: partial-match performance by
// unspecified pattern.
func BenchmarkExpPartialMatch(b *testing.B) {
	var e *experiments.Experiment
	for i := 0; i < b.N; i++ {
		var err error
		e, err = experiments.PartialMatch(experiments.PMConfig{}, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + e.Table(experiments.Ratio).String())
}

// BenchmarkExpEndToEnd regenerates E10: wall-clock response times
// through the grid file and the 1993 disk model.
func BenchmarkExpEndToEnd(b *testing.B) {
	cfg := experiments.EndToEndConfig{GridSide: 32, Disks: 8, Records: 20000}
	opt := experiments.Options{Seed: 1, SampleLimit: 50}
	var res *experiments.EndToEndResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.EndToEnd(cfg, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + res.Table().String())
}

// BenchmarkExpBatch regenerates E11: multi-user batch makespans.
func BenchmarkExpBatch(b *testing.B) {
	cfg := experiments.BatchConfig{GridSide: 16, Disks: 4, Records: 10000, BatchSizes: []int{1, 4, 16}}
	var res *experiments.BatchResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Batch(cfg, experiments.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + res.Table().String())
}

// BenchmarkExpSkew regenerates E12: response times across data
// populations.
func BenchmarkExpSkew(b *testing.B) {
	cfg := experiments.SkewConfig{GridSide: 16, Disks: 4, Records: 10000}
	var res *experiments.SkewResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Skew(cfg, experiments.Options{Seed: 1, SampleLimit: 30})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + res.Table().String())
}

// BenchmarkExpDrift regenerates E13: the workload-drift study (penalty
// of a stale method and the reorganization bill of switching).
func BenchmarkExpDrift(b *testing.B) {
	var res *experiments.DriftResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Drift(experiments.DriftConfig{}, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + res.Table().String())
}

// BenchmarkExpReplication regenerates E14: chained replication vs
// single-copy methods, healthy and degraded.
func BenchmarkExpReplication(b *testing.B) {
	cfg := experiments.ReplicationConfig{GridSide: 32, Disks: 8}
	opt := experiments.Options{Seed: 1, SampleLimit: 60}
	var res *experiments.ReplicationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Replication(cfg, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + res.Table().String())
}

// BenchmarkExpLoad regenerates E15: the open-system load sweep (mean
// response vs arrival rate).
func BenchmarkExpLoad(b *testing.B) {
	cfg := experiments.LoadConfig{
		GridSide: 16, Disks: 4, Records: 10000,
		Rates: []float64{1, 10, 50}, Queries: 200,
	}
	opt := experiments.Options{Seed: 1, SampleLimit: 60}
	var res *experiments.LoadResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Load(cfg, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + res.Table().String())
}

// --- Ablations -------------------------------------------------------

// BenchmarkAblationECCColumnOrder compares the shipped parity-check
// column order (unit vectors first) against the naive ascending cycle
// on the large-query workload that exposed the difference; the shipped
// order must not regress.
func BenchmarkAblationECCColumnOrder(b *testing.B) {
	g := grid.MustNew(64, 64)
	w, err := query.RandomRange(g, 16, 48, 300, 1)
	if err != nil {
		b.Fatal(err)
	}
	shipped, err := alloc.NewECC(g, 32)
	if err != nil {
		b.Fatal(err)
	}
	// Naive variant: columns cycle 1, 2, 3, … .
	n, r := shipped.Code().Length(), shipped.Code().ParityBits()
	h, _ := gf2.NewMatrix(r, n)
	nonzero := (1 << uint(r)) - 1
	for c := 0; c < n; c++ {
		h.SetColumn(c, gf2.Vec(c%nonzero+1))
	}
	naiveCode, err := ecc.NewFromParityCheck(h)
	if err != nil {
		b.Fatal(err)
	}
	naive, err := alloc.NewECCWithCode(g, 32, naiveCode)
	if err != nil {
		b.Fatal(err)
	}
	var rs, rn cost.Result
	for i := 0; i < b.N; i++ {
		rs = cost.Evaluate(shipped, w)
		rn = cost.Evaluate(naive, w)
	}
	b.Logf("shipped column order: ratio %.3f; naive ascending: ratio %.3f", rs.Ratio, rn.Ratio)
	if rs.Ratio > rn.Ratio {
		b.Fatalf("shipped ECC order regressed: %.3f > %.3f", rs.Ratio, rn.Ratio)
	}
}

// BenchmarkAblationGDMDiagonal compares plain DM against the GDM(1,2)
// diagonal on 2×2 squares over 5 disks — the configuration where
// GDM(1,2) is provably strictly optimal and DM is not.
func BenchmarkAblationGDMDiagonal(b *testing.B) {
	g := grid.MustNew(20, 20)
	dm, _ := alloc.NewDM(g, 5)
	gdm, _ := alloc.NewGDM(g, 5, []int{1, 2})
	qs, err := query.Placements(g, []int{2, 2}, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	w := query.Workload{Name: "2×2", Queries: qs}
	var rd, rg cost.Result
	for i := 0; i < b.N; i++ {
		rd = cost.Evaluate(dm, w)
		rg = cost.Evaluate(gdm, w)
	}
	b.Logf("DM ratio %.3f; GDM(1,2) ratio %.3f", rd.Ratio, rg.Ratio)
	if rg.Ratio != 1 {
		b.Fatalf("GDM(1,2) mod 5 not strictly optimal on 2×2 squares: %.3f", rg.Ratio)
	}
}

// BenchmarkAblationExFXvsFX compares ExFX against plain FX on a grid
// whose fields are narrower than the disk count — the regime ExFX
// exists for.
func BenchmarkAblationExFXvsFX(b *testing.B) {
	g := grid.MustNew(8, 8)
	fx, _ := alloc.NewFX(g, 16)
	exfx, _ := alloc.NewExFX(g, 16)
	qs, err := query.Placements(g, []int{4, 4}, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	w := query.Workload{Name: "4×4", Queries: qs}
	var rf, re cost.Result
	for i := 0; i < b.N; i++ {
		rf = cost.Evaluate(fx, w)
		re = cost.Evaluate(exfx, w)
	}
	b.Logf("FX ratio %.3f; ExFX ratio %.3f (narrow fields, M=16)", rf.Ratio, re.Ratio)
	if re.Ratio > rf.Ratio {
		b.Fatalf("ExFX regressed below plain FX: %.3f > %.3f", re.Ratio, rf.Ratio)
	}
}

// BenchmarkAblationCurves compares Hilbert (HCAM) against the Z-order
// and Gray-code curve allocations — the ablation behind HCAM's choice
// of curve. The trade-off is regime-dependent (Z-order is exactly
// aligned to dyadic blocks, Hilbert is continuous): the bench reports a
// mixed small-query band at prime M and pins the two facts the unit
// tests verify — Hilbert beats Gray here, and Hilbert beats Z-order on
// the non-dyadic 5×5 shape at power-of-two M.
func BenchmarkAblationCurves(b *testing.B) {
	g := grid.MustNew(32, 32)
	h7, _ := alloc.NewHCAM(g, 7)
	z7, _ := alloc.NewZCAM(g, 7)
	g7, _ := alloc.NewGCAM(g, 7)
	band, err := query.RandomRange(g, 1, 6, 400, 1)
	if err != nil {
		b.Fatal(err)
	}
	h8, _ := alloc.NewHCAM(g, 8)
	z8, _ := alloc.NewZCAM(g, 8)
	qs55, err := query.Placements(g, []int{5, 5}, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	w55 := query.Workload{Name: "5×5", Queries: qs55}
	var rh, rz, rg, rh55, rz55 cost.Result
	for i := 0; i < b.N; i++ {
		rh = cost.Evaluate(h7, band)
		rz = cost.Evaluate(z7, band)
		rg = cost.Evaluate(g7, band)
		rh55 = cost.Evaluate(h8, w55)
		rz55 = cost.Evaluate(z8, w55)
	}
	b.Logf("M=7 mixed band: HCAM %.3f, ZCAM %.3f, GCAM %.3f (mean RT)", rh.MeanRT, rz.MeanRT, rg.MeanRT)
	b.Logf("M=8 5×5 (non-dyadic): HCAM %.3f vs ZCAM %.3f", rh55.MeanRT, rz55.MeanRT)
	if rh.MeanRT > rg.MeanRT {
		b.Fatalf("HCAM fell below GCAM on the mixed band: %.3f > %.3f", rh.MeanRT, rg.MeanRT)
	}
	if rh55.MeanRT >= rz55.MeanRT {
		b.Fatalf("HCAM lost the non-dyadic 5×5 regime: %.3f ≥ %.3f", rh55.MeanRT, rz55.MeanRT)
	}
}

// BenchmarkSearchImpossibleM6 measures the theorem witness search.
func BenchmarkSearchImpossibleM6(b *testing.B) {
	g := grid.MustNew(6, 6)
	for i := 0; i < b.N; i++ {
		res := optimality.SearchStrictlyOptimal(g, 6, 0)
		if res.Outcome != optimality.Impossible {
			b.Fatal("unexpected outcome")
		}
	}
}

// --- Micro-benchmarks of the allocation hot paths --------------------

func benchDiskOf(b *testing.B, m alloc.Method) {
	g := m.Grid()
	c := grid.Coord{3, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c[0] = i & 63
		_ = m.DiskOf(c)
	}
	_ = g
}

func BenchmarkDiskOfDM(b *testing.B) {
	m, _ := alloc.NewDM(grid.MustNew(64, 64), 16)
	benchDiskOf(b, m)
}

func BenchmarkDiskOfFX(b *testing.B) {
	m, _ := alloc.NewFX(grid.MustNew(64, 64), 16)
	benchDiskOf(b, m)
}

func BenchmarkDiskOfExFX(b *testing.B) {
	m, _ := alloc.NewExFX(grid.MustNew(64, 64), 16)
	benchDiskOf(b, m)
}

func BenchmarkDiskOfECC(b *testing.B) {
	m, _ := alloc.NewECC(grid.MustNew(64, 64), 16)
	benchDiskOf(b, m)
}

func BenchmarkDiskOfHCAM(b *testing.B) {
	m, _ := alloc.NewHCAM(grid.MustNew(64, 64), 16)
	benchDiskOf(b, m)
}

func BenchmarkHilbertIndex(b *testing.B) {
	c := hilbert.MustNew(2, 6)
	coords := []int{13, 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coords[0] = i & 63
		if _, err := c.Index(coords); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHCAMConstruction(b *testing.B) {
	g := grid.MustNew(64, 64)
	for i := 0; i < b.N; i++ {
		if _, err := alloc.NewHCAM(g, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridFileInsert(b *testing.B) {
	g := grid.MustNew(64, 64)
	m, _ := alloc.NewHCAM(g, 16)
	recs := decluster.UniformRecords{K: 2, Seed: 1}.Generate(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := decluster.NewGridFile(decluster.GridFileConfig{Method: m})
		if err != nil {
			b.Fatal(err)
		}
		if err := f.InsertAll(recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridFileRangeSearch(b *testing.B) {
	g := grid.MustNew(64, 64)
	m, _ := alloc.NewHCAM(g, 16)
	f, _ := decluster.NewGridFile(decluster.GridFileConfig{Method: m})
	if err := f.InsertAll(decluster.UniformRecords{K: 2, Seed: 1}.Generate(50000)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.RangeSearch([]float64{0.2, 0.2}, []float64{0.7, 0.7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRangeSearch measures one executor range search — the
// scheduler-free baseline BenchmarkServeSoak layers policies onto.
func BenchmarkRangeSearch(b *testing.B) {
	g := grid.MustNew(64, 64)
	m, _ := alloc.NewHCAM(g, 16)
	f, _ := decluster.NewGridFile(decluster.GridFileConfig{Method: m})
	if err := f.InsertAll(decluster.UniformRecords{K: 2, Seed: 1}.Generate(50000)); err != nil {
		b.Fatal(err)
	}
	e, err := decluster.NewExecutor(f)
	if err != nil {
		b.Fatal(err)
	}
	r := g.MustRect(decluster.Coord{8, 8}, decluster.Coord{55, 55})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.RangeSearch(ctx, r)
		if err != nil {
			b.Fatal(err)
		}
		// Recycle per the facade ownership rules; a caller that keeps
		// the result simply skips this and pays the allocation.
		res.Release()
	}
}

// BenchmarkObsOverhead prices the observability layer on the executor
// hot path: the exact BenchmarkRangeSearch workload run through two
// executors over the same grid file, one with no sink ("off") and one
// with a live sink counting every disk read and attempt ("on"). The
// acceptance bar is <5% overhead on ns/op; scripts/bench_json.sh
// renders the comparison into BENCH_PR4.json and CI runs a one-shot
// smoke of both sub-benchmarks.
func BenchmarkObsOverhead(b *testing.B) {
	g := grid.MustNew(64, 64)
	m, _ := alloc.NewHCAM(g, 16)
	f, _ := decluster.NewGridFile(decluster.GridFileConfig{Method: m})
	if err := f.InsertAll(decluster.UniformRecords{K: 2, Seed: 1}.Generate(50000)); err != nil {
		b.Fatal(err)
	}
	r := g.MustRect(decluster.Coord{8, 8}, decluster.Coord{55, 55})
	ctx := context.Background()
	for _, mode := range []struct {
		name string
		opts []decluster.ExecOption
	}{
		{"off", nil},
		{"on", []decluster.ExecOption{decluster.WithExecObserver(decluster.NewSink())}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			e, err := decluster.NewExecutor(f, mode.opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.RangeSearch(ctx, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeSoak measures the serving layer under concurrent load:
// parallel clients pushing queries through admission control, health
// observation, and hedging against a replicated file. The overhead vs
// BenchmarkRangeSearch is the price of the overload policies.
func BenchmarkServeSoak(b *testing.B) {
	g := grid.MustNew(64, 64)
	m, _ := alloc.NewHCAM(g, 16)
	f, _ := decluster.NewGridFile(decluster.GridFileConfig{Method: m})
	if err := f.InsertAll(decluster.UniformRecords{K: 2, Seed: 1}.Generate(50000)); err != nil {
		b.Fatal(err)
	}
	rep, err := decluster.NewOffsetReplication(m, 8)
	if err != nil {
		b.Fatal(err)
	}
	s, err := decluster.Serve(f,
		decluster.WithServeFailover(rep),
		decluster.WithHedging(decluster.HedgeConfig{After: time.Millisecond}),
		decluster.WithAdmission(decluster.AdmissionConfig{MaxQueue: 1024}),
	)
	if err != nil {
		b.Fatal(err)
	}
	r := g.MustRect(decluster.Coord{8, 8}, decluster.Coord{55, 55})
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := s.Search(ctx, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	if _, err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkServeSoakP99 is BenchmarkServeSoak with a live obs sink, so
// the benchmark reports the soak's query-latency p99 alongside mean
// ns/op — the PR 10 bar is on the tail, not just the mean, because
// pooling bugs (a stalled worker, a contended freelist) surface at p99
// long before they move the average. bench_json.sh suite pr10 records
// the p99-ns metric into BENCH_PR10.json.
func BenchmarkServeSoakP99(b *testing.B) {
	g := grid.MustNew(64, 64)
	m, _ := alloc.NewHCAM(g, 16)
	f, _ := decluster.NewGridFile(decluster.GridFileConfig{Method: m})
	if err := f.InsertAll(decluster.UniformRecords{K: 2, Seed: 1}.Generate(50000)); err != nil {
		b.Fatal(err)
	}
	rep, err := decluster.NewOffsetReplication(m, 8)
	if err != nil {
		b.Fatal(err)
	}
	sink := decluster.NewSink()
	s, err := decluster.Serve(f,
		decluster.WithServeFailover(rep),
		decluster.WithHedging(decluster.HedgeConfig{After: time.Millisecond}),
		decluster.WithAdmission(decluster.AdmissionConfig{MaxQueue: 1024}),
		decluster.WithServeObserver(sink),
	)
	if err != nil {
		b.Fatal(err)
	}
	r := g.MustRect(decluster.Coord{8, 8}, decluster.Coord{55, 55})
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := s.Search(ctx, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	p99 := sink.Registry().Histogram("serve.query.latency").Snapshot().Percentile(99)
	b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
	if _, err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkDynamicGridInsert(b *testing.B) {
	recs := decluster.UniformRecords{K: 2, Seed: 1}.Generate(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := decluster.NewDynamicGridFile(decluster.DynamicConfig{K: 2, Disks: 8, Capacity: 32})
		if err != nil {
			b.Fatal(err)
		}
		if err := f.InsertAll(recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelScan(b *testing.B) {
	g := grid.MustNew(64, 64)
	m, _ := alloc.NewHCAM(g, 16)
	f, _ := decluster.NewGridFile(decluster.GridFileConfig{Method: m})
	if err := f.InsertAll(decluster.UniformRecords{K: 2, Seed: 1}.Generate(50000)); err != nil {
		b.Fatal(err)
	}
	r := g.MustRect(decluster.Coord{8, 8}, decluster.Coord{55, 55})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decluster.ParallelRangeSearch(ctx, f, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateWorkload(b *testing.B) {
	g := grid.MustNew(64, 64)
	m, _ := alloc.NewHCAM(g, 16)
	qs, err := query.Placements(g, []int{8, 8}, 300, 1)
	if err != nil {
		b.Fatal(err)
	}
	w := query.Workload{Name: "8×8", Queries: qs}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cost.Evaluate(m, w)
	}
}

// --- Response-time kernels ------------------------------------------

// BenchmarkKernelResponseTime prices the three response-time kernels on
// the Figure-5(b) large-query regime (64×64 grid, M=32, sides drawn
// from 16..48 ⇒ up to ~2300 buckets per query): the naive per-bucket
// walk, the table-walk Evaluator, and the summed-area PrefixEvaluator.
// Kernel construction happens outside the timer — the build-once,
// query-millions trade is the point. The PR-5 acceptance bar is
// prefix ≥ 5× walk (scripts/bench_json.sh pr5 renders the comparison
// into BENCH_PR5.json).
func BenchmarkKernelResponseTime(b *testing.B) {
	g := grid.MustNew(64, 64)
	m, _ := alloc.NewHCAM(g, 32)
	w, err := query.RandomRange(g, 16, 48, 500, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = cost.Evaluate(m, w)
		}
	})
	b.Run("walk", func(b *testing.B) {
		e := cost.NewEvaluator(m)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = e.Evaluate(w)
		}
	})
	b.Run("prefix", func(b *testing.B) {
		e, err := cost.NewPrefixEvaluator(m)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = e.Evaluate(w)
		}
	})
}

// BenchmarkKernelSweepDisksLarge regenerates the Figure-5(b) disks
// sweep end to end through the sweep engine under each kernel,
// including workload generation, method construction, and (for the
// prefix kernel) table builds — the honest whole-experiment speedup
// rather than the per-query one.
func BenchmarkKernelSweepDisksLarge(b *testing.B) {
	for _, tc := range []struct {
		name   string
		kernel cost.Kernel
	}{
		{"walk", cost.KernelWalk},
		{"prefix", cost.KernelPrefix},
	} {
		b.Run(tc.name, func(b *testing.B) {
			opt := experiments.Options{Seed: 1, SampleLimit: 300, Kernel: tc.kernel}
			for i := 0; i < b.N; i++ {
				if _, err := experiments.DisksLarge(benchDisksCfg(), opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvaluateWorkloadFast measures the table-materializing fast
// path the experiment harness uses; compare against
// BenchmarkEvaluateWorkload for the speedup.
func BenchmarkEvaluateWorkloadFast(b *testing.B) {
	g := grid.MustNew(64, 64)
	m, _ := alloc.NewHCAM(g, 16)
	qs, err := query.Placements(g, []int{8, 8}, 300, 1)
	if err != nil {
		b.Fatal(err)
	}
	w := query.Workload{Name: "8×8", Queries: qs}
	e := cost.NewEvaluator(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Evaluate(w)
	}
}

// BenchmarkClusterScatterGather measures one robust scatter/gather
// through the full cluster stack — shard decomposition, HTTP fan-out
// over loopback, per-node scheduling, gather and merge — healthy and
// with a crashed node routed around via replicas.
func BenchmarkClusterScatterGather(b *testing.B) {
	g := grid.MustNew(8, 8)
	sm, err := decluster.NewChainShardMap(g, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	method, err := decluster.NewFX(g, 4)
	if err != nil {
		b.Fatal(err)
	}
	recs := decluster.UniformRecords{K: 2, Seed: 1}.Generate(2048)
	h, err := decluster.StartClusterHarness(decluster.ClusterHarnessConfig{
		Map:     sm,
		Method:  method,
		Records: recs,
		Router:  decluster.RouterConfig{NodeDeadline: 5 * time.Second},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	q := g.MustRect(grid.Coord{1, 1}, grid.Coord{6, 6})

	run := func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := h.Router().Search(context.Background(), q)
			if err != nil {
				b.Fatal(err)
			}
			if res.Covered != res.SubQueries {
				b.Fatalf("covered %d of %d sub-queries", res.Covered, res.SubQueries)
			}
		}
	}
	b.Run("healthy", run)
	b.Run("degraded", func(b *testing.B) {
		h.Faults().Crash(2)
		defer h.Faults().Restart(2)
		run(b)
	})
}

// BenchmarkClusterMigration measures one full online membership change —
// plan, prepare, throttle-free bucket copies over loopback HTTP, cutover
// on every member, router adoption — alternating join and leave so each
// iteration starts from the epoch the previous one left behind.
func BenchmarkClusterMigration(b *testing.B) {
	g := grid.MustNew(8, 8)
	sm, err := decluster.NewChainShardMap(g, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	method, err := decluster.NewFX(g, 4)
	if err != nil {
		b.Fatal(err)
	}
	recs := decluster.UniformRecords{K: 2, Seed: 1}.Generate(2048)
	h, err := decluster.StartClusterHarness(decluster.ClusterHarnessConfig{
		Map:      sm,
		Method:   method,
		Records:  recs,
		Standbys: 1,
		Router:   decluster.RouterConfig{NodeDeadline: 5 * time.Second},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()

	var joined int // the member a join added, pending retirement
	joined = -1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var plan *decluster.MigrationPlan
		var err error
		if joined < 0 {
			plan, err = decluster.PlanClusterJoin(h.Router().Map())
		} else {
			plan, err = decluster.PlanClusterLeave(h.Router().Map(), joined)
		}
		if err != nil {
			b.Fatal(err)
		}
		st, err := decluster.MigrateCluster(context.Background(), decluster.ClusterMigrateConfig{
			Plan:      plan,
			Endpoints: h.URLs(),
			Router:    h.Router(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if st.Aborted || st.Buckets == 0 {
			b.Fatalf("iteration %d: stats %+v", i, st)
		}
		if joined < 0 {
			joined = plan.Member
		} else {
			joined = -1
		}
		b.ReportMetric(float64(st.Records), "records/op")
	}
}

// BenchmarkAutopilotScatterGather measures the scatter/gather hot path
// with the autopilot membership controller attached to the same
// cluster: every tick it fans health probes out to all members and
// snapshots the router's latency families for the windowed p99 signal.
// The policy is calm (thresholds far above anything the benchmark
// drives), so what's measured is pure controller coexistence — the
// acceptance bar is ≤ 1.05× the committed PR 7 healthy router mean,
// i.e. the decision loop stays off the query path.
func BenchmarkAutopilotScatterGather(b *testing.B) {
	g := grid.MustNew(8, 8)
	sm, err := decluster.NewChainShardMap(g, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	method, err := decluster.NewFX(g, 4)
	if err != nil {
		b.Fatal(err)
	}
	recs := decluster.UniformRecords{K: 2, Seed: 1}.Generate(2048)
	sink := decluster.NewSink()
	h, err := decluster.StartClusterHarness(decluster.ClusterHarnessConfig{
		Map:      sm,
		Method:   method,
		Records:  recs,
		Standbys: 1,
		Obs:      sink,
		Router:   decluster.RouterConfig{NodeDeadline: 5 * time.Second},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	ap, err := decluster.NewAutopilot(decluster.AutopilotConfig{
		Router:    h.Router(),
		Endpoints: h.URLs(),
		Obs:       sink,
		Tick:      20 * time.Millisecond,
		Policy: decluster.AutopilotPolicy{
			ScaleUpP99: time.Hour, // calm: observe, never act
			MinNodes:   4,
			MaxNodes:   5,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	ap.Start()
	defer ap.Stop()
	q := g.MustRect(grid.Coord{1, 1}, grid.Coord{6, 6})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := h.Router().Search(context.Background(), q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Covered != res.SubQueries {
			b.Fatalf("covered %d of %d sub-queries", res.Covered, res.SubQueries)
		}
	}
	b.StopTimer()
	// Short runs can finish inside the first tick period; give the
	// loop one tick off the clock before checking it stayed calm.
	time.Sleep(50 * time.Millisecond)
	if st := ap.Stats(); st.Joins != 0 || st.Leaves != 0 || st.Ticks == 0 {
		b.Fatalf("controller was not calmly observing: %+v", st)
	}
}

// --- Batch engine ----------------------------------------------------

// BenchmarkBatchThroughput answers the same overlapping logical queries
// two ways: one admission slot per query (individual) versus one
// batched group whose deduped physical read fans out to every member
// (batch). Each op resolves `overlap` identical queries, so the
// individual/batch ns-per-op ratio IS the goodput factor — and it
// grows with the overlap, because a group's read cost is flat while
// the individual path pays it per query.
func BenchmarkBatchThroughput(b *testing.B) {
	g, err := decluster.NewGrid(12, 12)
	if err != nil {
		b.Fatal(err)
	}
	m, err := decluster.NewHCAM(g, 8)
	if err != nil {
		b.Fatal(err)
	}
	f, err := decluster.NewGridFile(decluster.GridFileConfig{Method: m})
	if err != nil {
		b.Fatal(err)
	}
	if err := f.InsertAll(decluster.UniformRecords{K: 2, Seed: 7}.Generate(3000)); err != nil {
		b.Fatal(err)
	}
	rect, err := g.NewRect(decluster.Coord{2, 2}, decluster.Coord{5, 5}) // 16 buckets
	if err != nil {
		b.Fatal(err)
	}
	newSched := func(b *testing.B) *decluster.Scheduler {
		s, err := decluster.Serve(f,
			decluster.WithSimulatedLatency(2*time.Millisecond),
			decluster.WithAdmission(decluster.AdmissionConfig{MaxInFlight: 1, MaxQueue: 256}),
			decluster.WithDrainTimeout(30*time.Second),
		)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	run := func(b *testing.B, overlap int, do func(context.Context) error) {
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			errs := make([]error, overlap)
			var wg sync.WaitGroup
			for c := 0; c < overlap; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					errs[c] = do(ctx)
				}(c)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(overlap*b.N)/b.Elapsed().Seconds(), "queries/s")
	}
	for _, overlap := range []int{2, 4, 8} {
		overlap := overlap
		b.Run(fmt.Sprintf("individual-o%d", overlap), func(b *testing.B) {
			s := newSched(b)
			defer s.Close()
			run(b, overlap, func(ctx context.Context) error {
				_, err := s.Do(ctx, decluster.ServeQuery{Rect: rect})
				return err
			})
		})
		b.Run(fmt.Sprintf("batch-o%d", overlap), func(b *testing.B) {
			s := newSched(b)
			eng, err := decluster.NewBatchEngine(f, s,
				decluster.WithBatchWindow(2*time.Millisecond),
				decluster.WithBatchMax(overlap),
				decluster.WithBatchPolicy(decluster.BatchSharedWorkFirst))
			if err != nil {
				s.Close()
				b.Fatal(err)
			}
			defer s.Close()
			defer eng.Close()
			run(b, overlap, func(ctx context.Context) error {
				_, err := eng.Do(ctx, decluster.BatchQuery{Rect: rect})
				return err
			})
		})
	}
}
