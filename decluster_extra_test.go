package decluster_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"decluster"
)

func TestPublicSchemaToGridFile(t *testing.T) {
	tier, err := decluster.NewEnumAttr("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	schema, err := decluster.NewSchema(
		decluster.IntAttr{Min: 0, Max: 99},
		tier,
	)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := decluster.NewGrid(8, 2)
	m, _ := decluster.NewDM(g, 4)
	f, err := decluster.NewGridFile(decluster.GridFileConfig{Method: m})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		rec, err := schema.Record(i, int64(i), []string{"a", "b"}[i%2])
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	lo, hi, err := schema.Range(0, int64(20), int64(59))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := f.RangeSearch([]float64{lo, 0}, []float64{hi, 0.999})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Records) != 40 {
		t.Fatalf("typed range returned %d records, want 40", len(rs.Records))
	}
}

func TestPublicEquiDepthBoundaries(t *testing.T) {
	recs := decluster.ZipfRecords{K: 2, Seed: 3, S: 1.5, Buckets: 32}.Generate(2000)
	sample := make([][]float64, len(recs))
	for i, r := range recs {
		sample[i] = r.Values
	}
	g, _ := decluster.NewGrid(8, 8)
	bounds, err := decluster.EquiDepth(sample, g.Dims())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := decluster.NewHCAM(g, 4)
	f, err := decluster.NewGridFile(decluster.GridFileConfig{Method: m, Boundaries: bounds})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.InsertAll(recs); err != nil {
		t.Fatal(err)
	}
	if f.Stats().OccupiedBuckets < 50 {
		t.Fatalf("equi-depth file occupies only %d/64 buckets under skew", f.Stats().OccupiedBuckets)
	}
	if u := decluster.UniformBoundaries(4); len(u) != 3 || u[1] != 0.5 {
		t.Errorf("UniformBoundaries(4) = %v", u)
	}
}

func TestPublicReplication(t *testing.T) {
	g, _ := decluster.NewGrid(16, 16)
	dm, _ := decluster.NewDM(g, 4)
	r, err := decluster.NewChained(dm)
	if err != nil {
		t.Fatal(err)
	}
	q := g.MustRect(decluster.Coord{3, 3}, decluster.Coord{4, 4})
	if rt := r.ResponseTime(q); rt != 1 {
		t.Fatalf("chained DM on 2×2: RT %d, want 1", rt)
	}
	deg, err := r.ResponseTimeDegraded(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if deg < 1 || deg > 2 {
		t.Fatalf("degraded RT %d out of expected band", deg)
	}
	if _, err := decluster.NewOffsetReplication(dm, 4); err == nil {
		t.Error("offset ≡ 0 accepted")
	}
}

func TestPublicWitness(t *testing.T) {
	g, _ := decluster.NewGrid(4, 4)
	core, err := decluster.MinimalWitness(g, 4, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := decluster.SearchWithShapes(g, 4, core, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != decluster.SearchImpossible {
		t.Fatalf("public witness core does not prove impossibility: %v", core)
	}
}

func TestPublicOptimizeGDMAndHotRegion(t *testing.T) {
	g, _ := decluster.NewGrid(16, 16)
	hot := g.MustRect(decluster.Coord{0, 0}, decluster.Coord{7, 7})
	w, err := decluster.HotRegion(g, hot, 0.8, 1, 3, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := decluster.OptimizeGDM(g, 5, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Eval.Ratio < 1 {
		t.Fatal("impossible ratio")
	}
}

func TestPublicParallelScanMatchesSequential(t *testing.T) {
	g, _ := decluster.NewGrid(16, 16)
	m, _ := decluster.NewHCAM(g, 4)
	f, _ := decluster.NewGridFile(decluster.GridFileConfig{Method: m})
	if err := f.InsertAll(decluster.UniformRecords{K: 2, Seed: 1}.Generate(2000)); err != nil {
		t.Fatal(err)
	}
	r := g.MustRect(decluster.Coord{2, 2}, decluster.Coord{12, 12})
	par, err := decluster.ParallelRangeSearch(context.Background(), f, r)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := f.CellRangeSearch(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Records) != len(seq.Records) {
		t.Fatalf("parallel %d, sequential %d", len(par.Records), len(seq.Records))
	}
}

func TestPublicDynamicGridFile(t *testing.T) {
	f, err := decluster.NewDynamicGridFile(decluster.DynamicConfig{K: 2, Disks: 4, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.InsertAll(decluster.UniformRecords{K: 2, Seed: 2}.Generate(500)); err != nil {
		t.Fatal(err)
	}
	if f.NumBuckets() < 10 {
		t.Fatalf("dynamic file did not grow: %d buckets", f.NumBuckets())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAllocationPersistence(t *testing.T) {
	g, _ := decluster.NewGrid(8, 8)
	m, _ := decluster.NewECC(g, 4)
	var buf bytes.Buffer
	if err := decluster.SaveAllocation(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := decluster.LoadAllocation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g.Each(func(c decluster.Coord) bool {
		if loaded.DiskOf(c) != m.DiskOf(c) {
			t.Fatalf("persisted allocation diverges at %v", c)
		}
		return true
	})
}

func TestPublicOpenSimulation(t *testing.T) {
	g, _ := decluster.NewGrid(16, 16)
	m, _ := decluster.NewHCAM(g, 4)
	f, _ := decluster.NewGridFile(decluster.GridFileConfig{Method: m})
	if err := f.InsertAll(decluster.UniformRecords{K: 2, Seed: 3}.Generate(3000)); err != nil {
		t.Fatal(err)
	}
	rs, err := f.CellRangeSearch(g.MustRect(decluster.Coord{0, 0}, decluster.Coord{7, 7}))
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := decluster.NewDiskSimulator(decluster.DiskModel1993())
	qr, err := sim.SimulateOpen([]decluster.AccessTrace{rs.Trace}, 1, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if qr.MeanResponse < time.Millisecond || qr.Completed != 50 {
		t.Fatalf("open simulation result %+v", qr)
	}
}
