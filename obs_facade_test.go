package decluster_test

import (
	"context"
	"strings"
	"testing"

	decluster "decluster"
)

// The observability layer through the facade: one sink observes a bare
// executor and a full scheduler, the registry renders, and tracing
// retains the slowest queries.
func TestFacadeObservability(t *testing.T) {
	f, m, r := faultFixture(t)
	ctx := context.Background()

	sink := decluster.NewSink()
	sink.EnableTracing(2)

	e, err := decluster.NewExecutor(f, decluster.WithExecObserver(sink))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RangeSearch(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	reg := sink.Registry()
	if got := reg.Counter("exec.queries.ok").Value(); got != 1 {
		t.Fatalf("exec.queries.ok = %d, want 1", got)
	}
	if got := reg.Counter("exec.read.attempts").Value(); got == 0 {
		t.Fatal("no read attempts recorded")
	}
	if got := reg.CounterFamily("exec.disk.read.attempts", "disk", 1).Sum(); got != reg.Counter("exec.read.attempts").Value() {
		t.Fatalf("disk family sum %d != attempts", got)
	}

	rep, err := decluster.NewChained(m)
	if err != nil {
		t.Fatal(err)
	}
	s, err := decluster.Serve(f,
		decluster.WithServeFailover(rep),
		decluster.WithServeObserver(sink),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Search(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(res.Records) {
		t.Fatalf("served %d records, executor %d", len(got.Records), len(res.Records))
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if c := reg.Counter("serve.queries.completed").Value(); c != 1 {
		t.Fatalf("serve.queries.completed = %d, want 1", c)
	}

	var table strings.Builder
	if err := reg.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"exec.read.attempts", "serve.query.latency", "exec.disk.read.latency{disk0}"} {
		if !strings.Contains(table.String(), want) {
			t.Errorf("table dump missing %q:\n%s", want, table.String())
		}
	}

	traces := sink.SlowestTraces()
	if len(traces) != 1 {
		t.Fatalf("retained %d traces, want 1 (only the scheduler traces)", len(traces))
	}
	var tree strings.Builder
	if err := traces[0].RenderTree(&tree); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tree.String(), "disk ") {
		t.Errorf("trace tree has no disk span:\n%s", tree.String())
	}
}
