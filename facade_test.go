package decluster_test

import (
	"testing"

	"decluster"
)

// Exercise every facade constructor against its internal behavior so
// the public API surface stays wired correctly.
func TestFacadeConstructors(t *testing.T) {
	g, err := decluster.UniformGrid(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	ctors := map[string]func() (decluster.Method, error){
		"GDM":    func() (decluster.Method, error) { return decluster.NewGDM(g, 5, []int{1, 2}) },
		"FXAuto": func() (decluster.Method, error) { return decluster.NewFXAuto(g, 8) },
		"ZCAM":   func() (decluster.Method, error) { return decluster.NewZCAM(g, 8) },
		"GCAM":   func() (decluster.Method, error) { return decluster.NewGCAM(g, 8) },
		"Random": func() (decluster.Method, error) { return decluster.NewRandom(g, 8, 1) },
	}
	for name, ctor := range ctors {
		m, err := ctor()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !decluster.IsBalanced(m) && name != "GDM" {
			t.Errorf("%s unbalanced", name)
		}
		if d := m.DiskOf(decluster.Coord{3, 3}); d < 0 || d >= m.Disks() {
			t.Errorf("%s disk out of range", name)
		}
	}
	gb, _ := decluster.UniformGrid(3, 2)
	if _, err := decluster.NewBDM(gb, 4); err != nil {
		t.Errorf("BDM on binary grid: %v", err)
	}
	table := make([]int, 256)
	if _, err := decluster.NewTable("t", g, 8, table); err != nil {
		t.Errorf("NewTable: %v", err)
	}
	if len(decluster.MethodNames()) < 10 {
		t.Errorf("MethodNames = %v", decluster.MethodNames())
	}
}

func TestFacadeWorkloads(t *testing.T) {
	g, _ := decluster.NewGrid(16, 16)
	if _, err := decluster.ShapeSweep(g, 16, 50, 1); err != nil {
		t.Errorf("ShapeSweep: %v", err)
	}
	w, err := decluster.RandomRange(g, 2, 5, 30, 1)
	if err != nil || len(w.Queries) != 30 {
		t.Errorf("RandomRange: %v", err)
	}
	pts, err := decluster.Points(g, 20, 1)
	if err != nil || len(pts.Queries) != 20 {
		t.Errorf("Points: %v", err)
	}
	pm, err := decluster.PartialMatch(g, []bool{true, false}, 0, 1)
	if err != nil || len(pm.Queries) != 16 {
		t.Errorf("PartialMatch: %v, %d queries", err, len(pm.Queries))
	}
	m, _ := decluster.NewDM(g, 4)
	loads := decluster.DiskLoads(m, g.MustRect(decluster.Coord{0, 0}, decluster.Coord{3, 3}))
	total := 0
	for _, l := range loads {
		total += l
	}
	if total != 16 {
		t.Errorf("DiskLoads sum %d", total)
	}
}

func TestFacadeHeatAndWorst(t *testing.T) {
	g, _ := decluster.NewGrid(8, 8)
	m, _ := decluster.NewDM(g, 4)
	hm, err := decluster.NewHeatMap(m, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if hm.FracOptimal() != 0 {
		t.Errorf("DM 2×2 FracOptimal = %v", hm.FracOptimal())
	}
	worst, err := decluster.WorstQueries(m, 8, 3)
	if err != nil || len(worst) != 3 {
		t.Errorf("WorstQueries: %v, %d", err, len(worst))
	}
}

func TestFacadeDiskModels(t *testing.T) {
	if decluster.DiskModelModern().PageTransfer >= decluster.DiskModel1993().PageTransfer {
		t.Error("modern model not faster")
	}
	if _, err := decluster.NewDiskSimulator(decluster.DiskModel{}); err == nil {
		t.Error("zero model accepted")
	}
}

func TestFacadeExecutorOptions(t *testing.T) {
	g, _ := decluster.NewGrid(8, 8)
	m, _ := decluster.NewHCAM(g, 4)
	f, _ := decluster.NewGridFile(decluster.GridFileConfig{Method: m})
	if _, err := decluster.NewExecutor(f, decluster.WithMaxParallel(2)); err != nil {
		t.Errorf("NewExecutor: %v", err)
	}
	if _, err := decluster.NewExecutor(nil); err == nil {
		t.Error("nil file accepted")
	}
}

func TestFacadeCheckWorkloadOptimal(t *testing.T) {
	g, _ := decluster.NewGrid(8, 8)
	m, _ := decluster.NewDM(g, 4)
	rows, _ := decluster.Placements(g, []int{1, 4}, 0, 1)
	if v := decluster.CheckWorkloadOptimal(m, rows); v != nil {
		t.Errorf("DM violated on rows: %v", v)
	}
	squares, _ := decluster.Placements(g, []int{2, 2}, 0, 1)
	if v := decluster.CheckWorkloadOptimal(m, squares); v == nil {
		t.Error("DM reported optimal on squares")
	}
}

func TestFacadeDynamicAllocators(t *testing.T) {
	if decluster.RoundRobinAllocator() == nil {
		t.Error("nil round robin")
	}
	g, _ := decluster.NewGrid(8, 8)
	m, _ := decluster.NewHCAM(g, 4)
	a, err := decluster.MethodBucketAllocator(m)
	if err != nil || a == nil {
		t.Errorf("MethodBucketAllocator: %v", err)
	}
	if _, err := decluster.MethodBucketAllocator(nil); err == nil {
		t.Error("nil method accepted")
	}
}

func TestFacadeCatalogRoundTrip(t *testing.T) {
	c, err := decluster.NewCatalog(4)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := decluster.NewGrid(8, 8)
	if _, err := c.Create("r", g, "DM", 0); err != nil {
		t.Fatal(err)
	}
	if got := c.Names(); len(got) != 1 || got[0] != "r" {
		t.Errorf("Names = %v", got)
	}
}

func TestFacadeKernels(t *testing.T) {
	g, _ := decluster.NewGrid(16, 16)
	m, _ := decluster.NewHCAM(g, 4)
	w, err := decluster.RandomRange(g, 2, 6, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	walk := decluster.NewEvaluator(m)
	prefix, err := decluster.NewPrefixEvaluator(m)
	if err != nil {
		t.Fatal(err)
	}
	if walk.Evaluate(w) != prefix.Evaluate(w) {
		t.Error("facade kernels disagree")
	}
	k, err := decluster.ParseKernel("prefix")
	if err != nil || k != decluster.KernelPrefix {
		t.Errorf("ParseKernel = %v, %v", k, err)
	}
	e, err := decluster.NewKernelEvaluator(m, decluster.KernelAuto, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.ResponseTime(g.MustRect(decluster.Coord{1, 1}, decluster.Coord{4, 4})) != decluster.ResponseTime(m, g.MustRect(decluster.Coord{1, 1}, decluster.Coord{4, 4})) {
		t.Error("kernel evaluator disagrees with reference")
	}
	if decluster.PrefixTableBytes(g, 4) != 17*17*4*4 {
		t.Errorf("PrefixTableBytes = %d", decluster.PrefixTableBytes(g, 4))
	}
}
