package decluster

import (
	"decluster/internal/advisor"
	"decluster/internal/datagen"
	"decluster/internal/disksim"
	"decluster/internal/gridfile"
)

// Record is a multi-attribute record with normalized values in [0, 1).
type Record = datagen.Record

// RecordGenerator produces synthetic record populations.
type RecordGenerator = datagen.Generator

// UniformRecords generates records with independently uniform
// attributes.
type UniformRecords = datagen.Uniform

// ZipfRecords generates records skewed toward low attribute values.
type ZipfRecords = datagen.Zipf

// ClusteredRecords generates records from a Gaussian mixture.
type ClusteredRecords = datagen.Clustered

// CorrelatedRecords generates records whose later attributes track
// attribute 0.
type CorrelatedRecords = datagen.Correlated

// GridFile is a populated multi-disk Cartesian product file.
type GridFile = gridfile.File

// GridFileConfig describes a grid file: the declustering method (which
// fixes grid and disk count) and the page capacity.
type GridFileConfig = gridfile.Config

// AccessTrace is the per-disk page I/O footprint of one search.
type AccessTrace = gridfile.Trace

// SearchResultSet is the outcome of a grid-file search: records plus
// the access trace.
type SearchResultSet = gridfile.ResultSet

// NewGridFile creates an empty grid file declustered by cfg.Method.
func NewGridFile(cfg GridFileConfig) (*GridFile, error) { return gridfile.New(cfg) }

// DiskModel holds physical disk parameters for the simulator.
type DiskModel = disksim.Model

// DiskSimulator replays access traces into wall-clock response times.
type DiskSimulator = disksim.Simulator

// NewDiskSimulator constructs a simulator under the given model.
func NewDiskSimulator(m DiskModel) (*DiskSimulator, error) { return disksim.New(m) }

// DiskModel1993 returns parameters typical of the study's era.
func DiskModel1993() DiskModel { return disksim.Default1993() }

// DiskModelModern returns parameters of a 2000s-era drive, for
// ablation.
func DiskModelModern() DiskModel { return disksim.Modern() }

// WorkloadClass is one weighted component of an expected workload, for
// the advisor.
type WorkloadClass = advisor.WorkloadClass

// Recommendation ranks candidate declustering methods on a workload
// mix.
type Recommendation = advisor.Recommendation

// Recommend evaluates candidate methods (nil = the default set) over a
// weighted workload mix and ranks them by weighted mean response time —
// the paper's conclusion ("information about common queries … ought to
// be used in deciding the declustering") as a tool.
func Recommend(g *Grid, disks int, mix []WorkloadClass, candidates []string) (*Recommendation, error) {
	return advisor.Recommend(g, disks, mix, candidates)
}
