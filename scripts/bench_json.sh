#!/bin/sh
# bench_json.sh — render the observability-overhead benchmark into a
# small JSON report.
#
# Runs BenchmarkRangeSearch (the uninstrumented executor baseline) and
# BenchmarkObsOverhead/{off,on} (the same workload through an executor
# without and with a live metrics sink), then emits per-run ns/op
# samples, means, and the on-vs-off overhead percentage. The PR-4
# acceptance bar is overhead_pct < 5.
#
# Usage: scripts/bench_json.sh [count] > BENCH_PR4.json
set -eu
count="${1:-5}"
cd "$(dirname "$0")/.."

go test -run '^$' -bench '^BenchmarkObsOverhead$|^BenchmarkRangeSearch$' \
	-benchtime=2s -count="$count" . |
	awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
	/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		sub(/^Benchmark/, "", name)
		vals[name] = vals[name] sep[name] $3
		sep[name] = ", "
		sum[name] += $3
		n[name]++
	}
	function mean(k) { return n[k] ? sum[k] / n[k] : 0 }
	function series(k) {
		printf "    \"%s\": {\"ns_per_op\": [%s], \"mean_ns_per_op\": %.0f}", k, vals[k], mean(k)
	}
	END {
		off = mean("ObsOverhead/off"); on = mean("ObsOverhead/on")
		printf "{\n"
		printf "  \"benchmark\": \"BenchmarkObsOverhead\",\n"
		printf "  \"date\": \"%s\",\n", date
		printf "  \"cpu\": \"%s\",\n", cpu
		printf "  \"count\": %d,\n", n["ObsOverhead/off"]
		printf "  \"results\": {\n"
		series("RangeSearch"); printf ",\n"
		series("ObsOverhead/off"); printf ",\n"
		series("ObsOverhead/on"); printf "\n"
		printf "  },\n"
		printf "  \"overhead_pct\": %.2f,\n", off ? (on / off - 1) * 100 : 0
		printf "  \"bar_pct\": 5\n"
		printf "}\n"
	}'
