#!/bin/sh
# bench_json.sh — render a benchmark suite into a small JSON report.
#
# Suites:
#   pr4 (default) — BenchmarkRangeSearch (the uninstrumented executor
#       baseline) and BenchmarkObsOverhead/{off,on} (the same workload
#       through an executor without and with a live metrics sink), with
#       the on-vs-off overhead percentage. Acceptance bar:
#       overhead_pct < 5.
#   pr6 — BenchmarkClusterScatterGather/{healthy,degraded} (one robust
#       scatter/gather through the full cluster stack — shard
#       decomposition, HTTP fan-out over loopback, gather/merge —
#       against an all-up cluster and one with a crashed node routed
#       around via replicas). Acceptance bar: degraded_overhead_x < 5
#       (degraded mean over healthy mean; losing a node must not blow
#       up latency, just shift load to surviving replicas).
#   pr5 — BenchmarkKernelResponseTime/{naive,walk,prefix} (the three
#       response-time kernels on the Figure-5(b) large-query workload:
#       64×64 grid, HCAM, M=32, sides 16..48) and
#       BenchmarkKernelSweepDisksLarge/{walk,prefix} (the whole disk
#       sweep end to end, including workload generation and table
#       builds). Acceptance bar: kernel_speedup_x >= 5 (walk mean over
#       prefix mean on the per-query benchmark).
#   pr7 — BenchmarkClusterScatterGather/{healthy,degraded} again (the
#       router now stamps every sub-query with the shard-map epoch and
#       nodes verify it) plus BenchmarkClusterMigration (one full online
#       membership change: plan, prepare, copy, cutover, adopt).
#       Acceptance bar: epoch_router_overhead_x <= 1.05 (healthy mean
#       over the committed PR 6 healthy mean — epoch checks must be
#       effectively free on the scatter/gather hot path).
#   pr8 — BenchmarkClusterScatterGather/healthy (the PR 7 router,
#       nothing attached) vs BenchmarkAutopilotScatterGather (the same
#       scatter/gather with the autopilot membership controller
#       running: per-tick health probes and latency-window snapshots).
#       Acceptance bar: controller_overhead_x <= 1.05 (autopilot mean
#       over the same run's plain healthy mean — the decision loop must
#       stay off the query path). The committed PR 7 healthy mean is
#       echoed for cross-PR context.
#   pr9 — BenchmarkBatchThroughput/{individual,batch}-o{2,4,8} (the
#       same `overlap` identical queries resolved one admission slot
#       per query vs one batched group answering every member from a
#       deduped physical read; each op resolves all `overlap` queries,
#       so the individual/batch ns-per-op ratio is the goodput factor).
#       Acceptance bar: batch_vs_individual_goodput_x >= 1.5 at
#       overlap 4.
#   pr10 — BenchmarkRangeSearch with -benchmem (the pooled zero-alloc
#       executor hot path) and BenchmarkServeSoakP99 (a full closed-loop
#       serve soak per op, reporting the window's p99 as p99-ns).
#       Acceptance bars: rangesearch_allocs_per_op == 0 and
#       speedup_x_vs_pr4 >= 1.3 (the committed PR 4 RangeSearch mean
#       over this run's mean).
#   pr10-check — CI enforcement, no JSON: quick re-run of
#       BenchmarkRangeSearch, then exit non-zero if it allocates at all
#       or its mean ns/op regresses past the committed baseline
#       (BENCH_PR10.json × 1.5 headroom for runner noise when present,
#       else the BENCH_PR4.json mean it must beat).
#
# Usage: scripts/bench_json.sh [count] [suite] > BENCH_PR5.json
set -eu
count="${1:-5}"
suite="${2:-pr4}"
cd "$(dirname "$0")/.."

case "$suite" in
pr4)
	go test -run '^$' -bench '^BenchmarkObsOverhead$|^BenchmarkRangeSearch$' \
		-benchtime=2s -count="$count" . |
		awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
		/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			sub(/^Benchmark/, "", name)
			vals[name] = vals[name] sep[name] $3
			sep[name] = ", "
			sum[name] += $3
			n[name]++
		}
		function mean(k) { return n[k] ? sum[k] / n[k] : 0 }
		function series(k) {
			printf "    \"%s\": {\"ns_per_op\": [%s], \"mean_ns_per_op\": %.0f}", k, vals[k], mean(k)
		}
		END {
			off = mean("ObsOverhead/off"); on = mean("ObsOverhead/on")
			printf "{\n"
			printf "  \"benchmark\": \"BenchmarkObsOverhead\",\n"
			printf "  \"date\": \"%s\",\n", date
			printf "  \"cpu\": \"%s\",\n", cpu
			printf "  \"count\": %d,\n", n["ObsOverhead/off"]
			printf "  \"results\": {\n"
			series("RangeSearch"); printf ",\n"
			series("ObsOverhead/off"); printf ",\n"
			series("ObsOverhead/on"); printf "\n"
			printf "  },\n"
			printf "  \"overhead_pct\": %.2f,\n", off ? (on / off - 1) * 100 : 0
			printf "  \"bar_pct\": 5\n"
			printf "}\n"
		}'
	;;
pr5)
	go test -run '^$' \
		-bench '^BenchmarkKernelResponseTime$|^BenchmarkKernelSweepDisksLarge$' \
		-benchtime=1s -count="$count" . |
		awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
		/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			sub(/^Benchmark/, "", name)
			vals[name] = vals[name] sep[name] $3
			sep[name] = ", "
			sum[name] += $3
			n[name]++
		}
		function mean(k) { return n[k] ? sum[k] / n[k] : 0 }
		function series(k) {
			printf "    \"%s\": {\"ns_per_op\": [%s], \"mean_ns_per_op\": %.0f}", k, vals[k], mean(k)
		}
		END {
			walk = mean("KernelResponseTime/walk")
			prefix = mean("KernelResponseTime/prefix")
			swalk = mean("KernelSweepDisksLarge/walk")
			sprefix = mean("KernelSweepDisksLarge/prefix")
			printf "{\n"
			printf "  \"benchmark\": \"BenchmarkKernelResponseTime\",\n"
			printf "  \"date\": \"%s\",\n", date
			printf "  \"cpu\": \"%s\",\n", cpu
			printf "  \"count\": %d,\n", n["KernelResponseTime/walk"]
			printf "  \"results\": {\n"
			series("KernelResponseTime/naive"); printf ",\n"
			series("KernelResponseTime/walk"); printf ",\n"
			series("KernelResponseTime/prefix"); printf ",\n"
			series("KernelSweepDisksLarge/walk"); printf ",\n"
			series("KernelSweepDisksLarge/prefix"); printf "\n"
			printf "  },\n"
			printf "  \"kernel_speedup_x\": %.2f,\n", prefix ? walk / prefix : 0
			printf "  \"sweep_speedup_x\": %.2f,\n", sprefix ? swalk / sprefix : 0
			printf "  \"bar_speedup_x\": 5\n"
			printf "}\n"
		}'
	;;
pr6)
	go test -run '^$' -bench '^BenchmarkClusterScatterGather$' \
		-benchtime=200x -count="$count" . |
		awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
		/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			sub(/^Benchmark/, "", name)
			vals[name] = vals[name] sep[name] $3
			sep[name] = ", "
			sum[name] += $3
			n[name]++
		}
		function mean(k) { return n[k] ? sum[k] / n[k] : 0 }
		function series(k) {
			printf "    \"%s\": {\"ns_per_op\": [%s], \"mean_ns_per_op\": %.0f}", k, vals[k], mean(k)
		}
		END {
			healthy = mean("ClusterScatterGather/healthy")
			degraded = mean("ClusterScatterGather/degraded")
			printf "{\n"
			printf "  \"benchmark\": \"BenchmarkClusterScatterGather\",\n"
			printf "  \"date\": \"%s\",\n", date
			printf "  \"cpu\": \"%s\",\n", cpu
			printf "  \"count\": %d,\n", n["ClusterScatterGather/healthy"]
			printf "  \"results\": {\n"
			series("ClusterScatterGather/healthy"); printf ",\n"
			series("ClusterScatterGather/degraded"); printf "\n"
			printf "  },\n"
			printf "  \"degraded_overhead_x\": %.2f,\n", healthy ? degraded / healthy : 0
			printf "  \"bar_overhead_x\": 5\n"
			printf "}\n"
		}'
	;;
pr7)
	baseline=$(sed -n 's/.*"ClusterScatterGather\/healthy".*"mean_ns_per_op": \([0-9]*\).*/\1/p' BENCH_PR6.json 2>/dev/null || true)
	go test -run '^$' \
		-bench '^BenchmarkClusterScatterGather$|^BenchmarkClusterMigration$' \
		-benchtime=200x -count="$count" . |
		awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v baseline="${baseline:-0}" '
		/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			sub(/^Benchmark/, "", name)
			vals[name] = vals[name] sep[name] $3
			sep[name] = ", "
			sum[name] += $3
			n[name]++
			if ($6 == "records/op") { rsum[name] += $5; rn[name]++ }
		}
		function mean(k) { return n[k] ? sum[k] / n[k] : 0 }
		function series(k) {
			printf "    \"%s\": {\"ns_per_op\": [%s], \"mean_ns_per_op\": %.0f}", k, vals[k], mean(k)
		}
		END {
			healthy = mean("ClusterScatterGather/healthy")
			printf "{\n"
			printf "  \"benchmark\": \"BenchmarkClusterMigration\",\n"
			printf "  \"date\": \"%s\",\n", date
			printf "  \"cpu\": \"%s\",\n", cpu
			printf "  \"count\": %d,\n", n["ClusterScatterGather/healthy"]
			printf "  \"results\": {\n"
			series("ClusterScatterGather/healthy"); printf ",\n"
			series("ClusterScatterGather/degraded"); printf ",\n"
			series("ClusterMigration"); printf "\n"
			printf "  },\n"
			printf "  \"migration_records_per_op\": %.0f,\n", rn["ClusterMigration"] ? rsum["ClusterMigration"] / rn["ClusterMigration"] : 0
			printf "  \"pr6_healthy_mean_ns_per_op\": %d,\n", baseline
			printf "  \"epoch_router_overhead_x\": %.2f,\n", baseline ? healthy / baseline : 0
			printf "  \"bar_overhead_x\": 1.05\n"
			printf "}\n"
		}'
	;;
pr8)
	baseline=$(sed -n 's/.*"ClusterScatterGather\/healthy".*"mean_ns_per_op": \([0-9]*\).*/\1/p' BENCH_PR7.json 2>/dev/null || true)
	go test -run '^$' \
		-bench '^BenchmarkClusterScatterGather$|^BenchmarkAutopilotScatterGather$' \
		-benchtime=200x -count="$count" . |
		awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v baseline="${baseline:-0}" '
		/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			sub(/^Benchmark/, "", name)
			vals[name] = vals[name] sep[name] $3
			sep[name] = ", "
			sum[name] += $3
			n[name]++
		}
		function mean(k) { return n[k] ? sum[k] / n[k] : 0 }
		function series(k) {
			printf "    \"%s\": {\"ns_per_op\": [%s], \"mean_ns_per_op\": %.0f}", k, vals[k], mean(k)
		}
		END {
			healthy = mean("ClusterScatterGather/healthy")
			piloted = mean("AutopilotScatterGather")
			printf "{\n"
			printf "  \"benchmark\": \"BenchmarkAutopilotScatterGather\",\n"
			printf "  \"date\": \"%s\",\n", date
			printf "  \"cpu\": \"%s\",\n", cpu
			printf "  \"count\": %d,\n", n["AutopilotScatterGather"]
			printf "  \"results\": {\n"
			series("ClusterScatterGather/healthy"); printf ",\n"
			series("ClusterScatterGather/degraded"); printf ",\n"
			series("AutopilotScatterGather"); printf "\n"
			printf "  },\n"
			printf "  \"pr7_healthy_mean_ns_per_op\": %d,\n", baseline
			printf "  \"controller_overhead_x\": %.2f,\n", healthy ? piloted / healthy : 0
			printf "  \"bar_overhead_x\": 1.05\n"
			printf "}\n"
		}'
	;;
pr9)
	go test -run '^$' -bench '^BenchmarkBatchThroughput$' \
		-benchtime=20x -count="$count" . |
		awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
		/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			sub(/^Benchmark/, "", name)
			vals[name] = vals[name] sep[name] $3
			sep[name] = ", "
			sum[name] += $3
			n[name]++
		}
		function mean(k) { return n[k] ? sum[k] / n[k] : 0 }
		function series(k) {
			printf "    \"%s\": {\"ns_per_op\": [%s], \"mean_ns_per_op\": %.0f}", k, vals[k], mean(k)
		}
		END {
			ind = mean("BatchThroughput/individual-o4")
			bat = mean("BatchThroughput/batch-o4")
			printf "{\n"
			printf "  \"benchmark\": \"BenchmarkBatchThroughput\",\n"
			printf "  \"date\": \"%s\",\n", date
			printf "  \"cpu\": \"%s\",\n", cpu
			printf "  \"count\": %d,\n", n["BatchThroughput/batch-o4"]
			printf "  \"results\": {\n"
			series("BatchThroughput/individual-o2"); printf ",\n"
			series("BatchThroughput/batch-o2"); printf ",\n"
			series("BatchThroughput/individual-o4"); printf ",\n"
			series("BatchThroughput/batch-o4"); printf ",\n"
			series("BatchThroughput/individual-o8"); printf ",\n"
			series("BatchThroughput/batch-o8"); printf "\n"
			printf "  },\n"
			printf "  \"batch_vs_individual_goodput_x\": %.2f,\n", bat ? ind / bat : 0
			printf "  \"bar_goodput_x\": 1.5\n"
			printf "}\n"
		}'
	;;
pr10)
	baseline=$(sed -n 's/.*"RangeSearch".*"mean_ns_per_op": \([0-9]*\).*/\1/p' BENCH_PR4.json 2>/dev/null | head -1 || true)
	go test -run '^$' -bench '^BenchmarkRangeSearch$|^BenchmarkServeSoakP99$' \
		-benchmem -benchtime=2s -count="$count" . |
		awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v baseline="${baseline:-0}" '
		/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			sub(/^Benchmark/, "", name)
			# Metrics come as value/unit pairs; order varies with
			# -benchmem and ReportMetric, so scan rather than index.
			for (i = 3; i + 1 <= NF; i += 2) {
				v = $i; u = $(i + 1)
				if (u == "ns/op") {
					vals[name] = vals[name] sep[name] v
					sep[name] = ", "
					sum[name] += v
					n[name]++
				} else if (u == "allocs/op") { asum[name] += v; an[name]++ }
				else if (u == "B/op") { bsum[name] += v; bn[name]++ }
				else if (u == "p99-ns") { psum[name] += v; pn[name]++ }
			}
		}
		function mean(k) { return n[k] ? sum[k] / n[k] : 0 }
		function amean(k) { return an[k] ? asum[k] / an[k] : 0 }
		END {
			rs = mean("RangeSearch")
			printf "{\n"
			printf "  \"benchmark\": \"BenchmarkRangeSearch\",\n"
			printf "  \"date\": \"%s\",\n", date
			printf "  \"cpu\": \"%s\",\n", cpu
			printf "  \"count\": %d,\n", n["RangeSearch"]
			printf "  \"results\": {\n"
			printf "    \"RangeSearch\": {\"ns_per_op\": [%s], \"mean_ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.2f},\n", \
				vals["RangeSearch"], rs, bn["RangeSearch"] ? bsum["RangeSearch"] / bn["RangeSearch"] : 0, amean("RangeSearch")
			printf "    \"ServeSoakP99\": {\"ns_per_op\": [%s], \"mean_ns_per_op\": %.0f, \"mean_p99_ns\": %.0f}\n", \
				vals["ServeSoakP99"], mean("ServeSoakP99"), pn["ServeSoakP99"] ? psum["ServeSoakP99"] / pn["ServeSoakP99"] : 0
			printf "  },\n"
			printf "  \"rangesearch_allocs_per_op\": %.2f,\n", amean("RangeSearch")
			printf "  \"bar_allocs_per_op\": 0,\n"
			printf "  \"pr4_rangesearch_mean_ns_per_op\": %d,\n", baseline
			printf "  \"speedup_x_vs_pr4\": %.2f,\n", (baseline && rs) ? baseline / rs : 0
			printf "  \"bar_speedup_x\": 1.3\n"
			printf "}\n"
		}'
	;;
pr10-check)
	pr10=$(sed -n 's/.*"RangeSearch": {"ns_per_op".*"mean_ns_per_op": \([0-9]*\).*/\1/p' BENCH_PR10.json 2>/dev/null | head -1 || true)
	pr4=$(sed -n 's/.*"RangeSearch".*"mean_ns_per_op": \([0-9]*\).*/\1/p' BENCH_PR4.json 2>/dev/null | head -1 || true)
	if [ -n "$pr10" ]; then
		# Generous 1.5× over the committed mean: CI runners are noisy,
		# and a real pooling regression overshoots far past that.
		bar=$((pr10 * 3 / 2))
	elif [ -n "$pr4" ]; then
		# No PR 10 baseline committed yet: at minimum the pooled path
		# must still beat the pre-pooling executor outright.
		bar="$pr4"
	else
		bar=0
	fi
	out=$(go test -run '^$' -bench '^BenchmarkRangeSearch$' -benchmem -benchtime=1s -count="$count" .)
	printf '%s\n' "$out"
	printf '%s\n' "$out" | awk -v bar="$bar" '
		/^BenchmarkRangeSearch/ {
			for (i = 3; i + 1 <= NF; i += 2) {
				if ($(i + 1) == "ns/op") { sum += $i; n++ }
				else if ($(i + 1) == "allocs/op") { asum += $i; an++ }
			}
		}
		END {
			if (!n) { print "pr10-check: BenchmarkRangeSearch produced no samples" > "/dev/stderr"; exit 1 }
			if (an && asum > 0) {
				printf "pr10-check: RangeSearch allocates %.2f allocs/op; the pooled hot path must stay at 0\n", asum / an > "/dev/stderr"
				exit 1
			}
			if (bar > 0 && sum / n > bar) {
				printf "pr10-check: RangeSearch mean %.0f ns/op regressed past the committed baseline bar %d\n", sum / n, bar > "/dev/stderr"
				exit 1
			}
			printf "pr10-check: ok (mean %.0f ns/op, 0 allocs/op, bar %d)\n", sum / n, bar
		}'
	;;
*)
	echo "bench_json.sh: unknown suite '$suite' (want pr4, pr5, pr6, pr7, pr8, pr9, pr10 or pr10-check)" >&2
	exit 2
	;;
esac
