package decluster_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	decluster "decluster"
)

// The batch layer, end to end through the facade: an engine over a
// scheduler answers overlapping concurrent queries bit-identically to
// the unbatched path, dedup shows up in the stats, and the aggregate
// kernel answers without touching a bucket.
func TestFacadeBatch(t *testing.T) {
	f, _, r := faultFixture(t)
	ctx := context.Background()

	s, err := decluster.Serve(f,
		decluster.WithAdmission(decluster.AdmissionConfig{MaxInFlight: 4, MaxQueue: 64}),
		decluster.WithDrainTimeout(10*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	eng, err := decluster.NewBatchEngine(f, s,
		decluster.WithBatchWindow(3*time.Millisecond),
		decluster.WithBatchMax(8),
		decluster.WithBatchPolicy(decluster.BatchSharedWorkFirst),
	)
	if err != nil {
		t.Fatal(err)
	}

	want, err := s.Do(ctx, decluster.ServeQuery{Rect: r})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 6
	answers := make([]*decluster.BatchAnswer, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			answers[c], errs[c] = eng.Do(ctx, decluster.BatchQuery{Rect: r, Priority: c % 2})
		}(c)
	}
	wg.Wait()
	for c := 0; c < clients; c++ {
		if errs[c] != nil {
			t.Fatalf("client %d: %v", c, errs[c])
		}
		if !reflect.DeepEqual(answers[c].Records, want.Records) {
			t.Fatalf("client %d: batched answer differs from unbatched (%d vs %d records)",
				c, len(answers[c].Records), len(want.Records))
		}
	}

	agg, err := eng.Aggregate(ctx, decluster.AggregateQuery{Rect: r, Op: decluster.AggCount})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != int64(len(want.Records)) {
		t.Fatalf("aggregate count = %d, want %d", agg.Count, len(want.Records))
	}

	st, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Issued != clients || st.Answered != clients {
		t.Fatalf("stats = %+v, want %d issued and answered", st, clients)
	}
	if st.Deduped == 0 {
		t.Error("identical concurrent queries produced no dedup savings")
	}
	if st.Demand != st.Physical+st.Deduped+st.Pruned {
		t.Fatalf("Demand %d != Physical %d + Deduped %d + Pruned %d",
			st.Demand, st.Physical, st.Deduped, st.Pruned)
	}
	if _, err := eng.Search(ctx, r); !errors.Is(err, decluster.ErrBatchClosed) {
		t.Fatalf("post-close error = %v, want ErrBatchClosed", err)
	}
}
