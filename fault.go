package decluster

import (
	"time"

	"decluster/internal/cost"
	"decluster/internal/exec"
	"decluster/internal/fault"
)

// FaultInjector injects deterministic, seeded faults — fail-stop disks,
// transient per-bucket read errors, and straggler latency multipliers —
// into the execution and evaluation stack.
type FaultInjector = fault.Injector

// FaultConfig describes an injection scenario: seed, fail-stop disks,
// transient read-error probability, and straggler multipliers.
type FaultConfig = fault.Config

// UnavailableError reports a query that cannot be answered correctly
// because buckets are unreachable on every replica. It lists the
// unreachable buckets and the failed disks.
type UnavailableError = fault.UnavailableError

// TransientError reports a retryable read failure of one bucket.
type TransientError = fault.TransientError

// DiskFailedError reports a read against a fail-stop disk.
type DiskFailedError = fault.DiskFailedError

// Sentinel errors for errors.Is classification of injected faults.
var (
	// ErrUnavailable matches queries whose buckets are unreachable on
	// every replica.
	ErrUnavailable = fault.ErrUnavailable
	// ErrTransientRead matches retryable per-read errors.
	ErrTransientRead = fault.ErrTransient
	// ErrDiskFailed matches reads against fail-stop disks.
	ErrDiskFailed = fault.ErrDiskFailed
)

// NewFaultInjector validates the configuration and builds an injector.
// Runs with equal seeds inject identical faults, so degraded-mode
// behaviour is reproducible.
func NewFaultInjector(cfg FaultConfig) (*FaultInjector, error) { return fault.New(cfg) }

// NodeInjector injects node-level faults — crash, network partition,
// slow node — observed by a cluster node's HTTP layer. It is the
// cluster-scale sibling of FaultInjector's disk-level faults.
type NodeInjector = fault.NodeInjector

// NodeState is a node's current fault status: up, crashed, or
// partitioned.
type NodeState = fault.NodeState

// NodeEvent is one timed state transition in a fault schedule.
type NodeEvent = fault.NodeEvent

// NodeSchedule is a deterministic timeline of node fault events,
// derived purely from a seed so any run can be replayed exactly.
type NodeSchedule = fault.NodeSchedule

// NewNodeInjector builds an injector with every node up.
func NewNodeInjector() *NodeInjector { return fault.NewNodeInjector() }

// NodeLossSchedule crashes one seeded-random node at ¼ of the duration
// and restarts it at ¾.
func NodeLossSchedule(seed int64, nodes int, duration time.Duration) NodeSchedule {
	return fault.NodeLossSchedule(seed, nodes, duration)
}

// RollingRestartSchedule restarts every node once, in seeded-random
// order, across the middle half of the duration.
func RollingRestartSchedule(seed int64, nodes int, duration time.Duration) NodeSchedule {
	return fault.RollingRestartSchedule(seed, nodes, duration)
}

// RetryPolicy bounds per-read retries of transient errors: total
// attempts plus capped exponential backoff.
type RetryPolicy = exec.RetryPolicy

// DefaultRetry is a retry policy suited to the injector's transient
// faults: up to 5 attempts with 1ms → 8ms exponential backoff.
func DefaultRetry() RetryPolicy { return exec.DefaultRetry() }

// BucketReader is the executor's pluggable I/O layer; implementations
// may return errors, which the executor retries (transient) or
// propagates.
type BucketReader = exec.BucketReader

// WithFaults attaches a fault injector to an executor: fail-stop disks
// affect routing (failover or typed unavailability) and reads may
// transiently error per the injector's probability.
func WithFaults(inj *FaultInjector) ExecOption { return exec.WithFaults(inj) }

// WithRetry sets the executor's transient-error retry policy.
func WithRetry(p RetryPolicy) ExecOption { return exec.WithRetry(p) }

// WithQueryDeadline bounds each query's wall-clock time; exceeding it
// returns context.DeadlineExceeded.
func WithQueryDeadline(d time.Duration) ExecOption { return exec.WithDeadline(d) }

// WithFailover attaches a replica scheme for degraded routing: buckets
// whose primary disk failed are served from their backup, with the
// query re-scheduled to minimize the busiest surviving disk.
func WithFailover(r *Replicated) ExecOption { return exec.WithFailover(r) }

// WithBucketReader replaces the executor's default grid-file reader.
func WithBucketReader(r BucketReader) ExecOption { return exec.WithBucketReader(r) }

// DegradedResponseTime returns the parallel response time of query r
// under method m with the listed disks failed: the busiest
// surviving-disk bucket count. When any bucket of the query lives only
// on a failed disk, a typed *UnavailableError is returned instead of a
// silently wrong number.
func DegradedResponseTime(m Method, r Rect, failed []int) (int, error) {
	return cost.DegradedResponseTime(m, r, failed)
}

// DegradedDiskLoads returns per-disk bucket loads for query r with the
// listed disks failed, plus the row-major buckets that became
// unreachable.
func DegradedDiskLoads(m Method, r Rect, failed []int) (loads []int, unreachable []int, err error) {
	return cost.DegradedDiskLoads(m, r, failed)
}
