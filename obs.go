package decluster

import (
	"decluster/internal/exec"
	"decluster/internal/obs"
	"decluster/internal/serve"
)

// Sink is the process-wide observability hub: a metrics registry plus
// an optional query-trace recorder. One sink is shared by every layer
// that observes — scheduler, executor, fault injector, scrubber,
// rebuilder, and read-repairer — so their counters land in one
// namespace and conserve exactly (see the conservation soak test).
// All methods are safe on a nil *Sink, which disables observation at
// the cost of one branch per instrumented site.
type Sink = obs.Sink

// MetricsRegistry holds named counters, gauges, latency histograms,
// and per-disk labeled families. Render with WriteTable or WriteCSV,
// or serve live via Sink.Handler.
type MetricsRegistry = obs.Registry

// QueryTrace is one query's span tree — admit, dispatch, per-disk read
// attempts, hedge legs, read-repair — rendered with RenderTree.
type QueryTrace = obs.Trace

// NewSink constructs an observability sink with an empty registry and
// tracing disabled; call EnableTracing(n) to retain the n slowest
// query traces.
func NewSink() *Sink { return obs.NewSink() }

// WithServeObserver attaches a sink to a serving scheduler: admission,
// outcome, hedge, and breaker counters, queue-depth and in-flight
// gauges, query/leg latency histograms, and (when tracing is enabled)
// per-query span trees. The scheduler forwards the sink to its
// executor.
func WithServeObserver(s *Sink) ServeOption { return serve.WithObserver(s) }

// WithExecObserver attaches a sink to a bare executor: per-disk read
// counters and latency histograms, attempt/retry/call classifications,
// and per-attempt spans under a traced query. Schedulers built with
// WithServeObserver wire this automatically.
func WithExecObserver(s *Sink) ExecOption { return exec.WithObserver(s) }
