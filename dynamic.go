package decluster

import (
	"decluster/internal/cost"
	"decluster/internal/dyngrid"
	"decluster/internal/grid"
)

// DynamicGridFile is an adaptable grid file (Nievergelt et al. 1984):
// attribute scales grow as data arrives, buckets split on overflow, and
// each new bucket is placed on a disk by a pluggable allocator — the
// dynamic structure whose stable snapshot is the Cartesian product file
// the declustering methods allocate.
type DynamicGridFile = dyngrid.File

// DynamicConfig describes a dynamic grid file.
type DynamicConfig = dyngrid.Config

// BucketAllocator chooses the disk for a freshly created bucket from
// its value-space bounding box.
type BucketAllocator = dyngrid.Allocator

// NewDynamicGridFile creates an empty dynamic grid file.
func NewDynamicGridFile(cfg DynamicConfig) (*DynamicGridFile, error) {
	return dyngrid.New(cfg)
}

// RoundRobinAllocator deals disks to buckets in creation order — the
// baseline dynamic policy.
func RoundRobinAllocator() BucketAllocator { return dyngrid.RoundRobin() }

// MethodBucketAllocator adapts a static declustering method to dynamic
// bucket creation: each new bucket receives the disk the method assigns
// to the virtual grid cell containing the bucket's center.
func MethodBucketAllocator(m Method) (BucketAllocator, error) {
	return dyngrid.MethodAllocator(m)
}

// GridObserver receives a dynamic grid file's structural-change
// notifications — cell disk moves and directory reshapes.
type GridObserver = dyngrid.Observer

// MaintainedEvaluator is a response-time kernel kept incrementally
// correct while the underlying cell→disk mapping mutates.
type MaintainedEvaluator = cost.MaintainedEvaluator

// maintainObserver forwards dyngrid structural changes into the
// maintained kernel.
type maintainObserver struct{ me *cost.MaintainedEvaluator }

func (o maintainObserver) CellMoved(cell []int, from, to int) {
	// The file only reports cells of its own directory, so a delta
	// failure is an invariant violation, not an input error.
	if err := o.me.CellMoved(grid.Coord(cell), from, to); err != nil {
		panic(err)
	}
}

func (o maintainObserver) GridReshaped() { o.me.GridReshaped() }

// NewDynamicEvaluator attaches a delta-maintained response-time kernel
// to a dynamic grid file: bucket splits fold into the kernel's tables
// as cell moves in O(axis-suffix) each, and a directory doubling
// re-tiles the kernel for the new shape on the next query — queries
// between inserts never see stale loads and never pay a per-query
// rebuild. The evaluator observes the file from this call on (it
// replaces any observer installed earlier); kernel and budget choose
// tables as in NewKernelEvaluator. Not safe for concurrent use, like
// the file itself.
func NewDynamicEvaluator(f *DynamicGridFile, name string, k EvalKernel, tableBudget int64) (*MaintainedEvaluator, error) {
	me, err := cost.NewMaintainedEvaluator(f.AsMethod(name), k, tableBudget)
	if err != nil {
		return nil, err
	}
	f.SetObserver(maintainObserver{me})
	return me, nil
}
