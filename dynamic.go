package decluster

import (
	"decluster/internal/dyngrid"
)

// DynamicGridFile is an adaptable grid file (Nievergelt et al. 1984):
// attribute scales grow as data arrives, buckets split on overflow, and
// each new bucket is placed on a disk by a pluggable allocator — the
// dynamic structure whose stable snapshot is the Cartesian product file
// the declustering methods allocate.
type DynamicGridFile = dyngrid.File

// DynamicConfig describes a dynamic grid file.
type DynamicConfig = dyngrid.Config

// BucketAllocator chooses the disk for a freshly created bucket from
// its value-space bounding box.
type BucketAllocator = dyngrid.Allocator

// NewDynamicGridFile creates an empty dynamic grid file.
func NewDynamicGridFile(cfg DynamicConfig) (*DynamicGridFile, error) {
	return dyngrid.New(cfg)
}

// RoundRobinAllocator deals disks to buckets in creation order — the
// baseline dynamic policy.
func RoundRobinAllocator() BucketAllocator { return dyngrid.RoundRobin() }

// MethodBucketAllocator adapts a static declustering method to dynamic
// bucket creation: each new bucket receives the disk the method assigns
// to the virtual grid cell containing the bucket's center.
func MethodBucketAllocator(m Method) (BucketAllocator, error) {
	return dyngrid.MethodAllocator(m)
}
