// Quickstart: decluster a 64×64 Cartesian product file across 16 disks
// with each of the paper's methods and compare their response times on
// a single range query and on a small workload.
package main

import (
	"fmt"
	"log"

	"decluster"
)

func main() {
	// A two-attribute relation whose domains are each partitioned into
	// 64 intervals: 4096 buckets.
	g, err := decluster.NewGrid(64, 64)
	if err != nil {
		log.Fatal(err)
	}
	const disks = 16

	// The four methods the ICDE 1994 study compares.
	methods := decluster.PaperSet(g, disks)

	// One concrete 4×4 range query.
	q := g.MustRect(decluster.Coord{10, 20}, decluster.Coord{13, 23})
	opt := decluster.OptimalRT(q.Volume(), disks)
	fmt.Printf("query %v: %d buckets over %d disks, optimal RT = %d\n\n",
		q, q.Volume(), disks, opt)
	for _, m := range methods {
		rt := decluster.ResponseTime(m, q)
		marker := ""
		if rt == opt {
			marker = "  ← optimal"
		}
		fmt.Printf("  %-5s response time %d bucket accesses%s\n", m.Name(), rt, marker)
	}

	// A workload: every placement of 4×4 queries (sampled).
	qs, err := decluster.Placements(g, []int{4, 4}, 500, 1)
	if err != nil {
		log.Fatal(err)
	}
	w := decluster.Workload{Name: "4×4 everywhere", Queries: qs}
	fmt.Printf("\nworkload %q (%d queries):\n", w.Name, len(w.Queries))
	for _, res := range decluster.EvaluateAll(methods, w) {
		fmt.Printf("  %-5s mean RT %.3f (%.3f× optimal), optimal on %.0f%% of queries\n",
			res.Method, res.MeanRT, res.Ratio, res.FracOptimal*100)
	}

	fmt.Println("\nthe paper's small-query finding: the curve/code methods (HCAM, ECC)")
	fmt.Println("spread compact queries best; DM's anti-diagonals collide on squares.")
}
