// Advisor: the paper's conclusion as a tool. The study ends by
// recommending that "information about common queries on a relation
// ought to be used in deciding the declustering for it" and that
// systems "must support a number of declustering methods". This example
// describes two workload profiles for the same relation and shows the
// advisor electing different methods for each.
package main

import (
	"fmt"
	"log"

	"decluster"
)

func main() {
	g, err := decluster.NewGrid(64, 64)
	if err != nil {
		log.Fatal(err)
	}
	const disks = 16

	// Workload building blocks.
	rows, err := decluster.Placements(g, []int{1, 32}, 400, 1) // report scans on attribute 1
	if err != nil {
		log.Fatal(err)
	}
	squares, err := decluster.Placements(g, []int{4, 4}, 400, 1) // map-tile lookups
	if err != nil {
		log.Fatal(err)
	}
	rowClass := decluster.Workload{Name: "row scans (1×32)", Queries: rows}
	tileClass := decluster.Workload{Name: "tile lookups (4×4)", Queries: squares}

	profiles := []struct {
		name string
		mix  []decluster.WorkloadClass
	}{
		{
			name: "reporting system: 90% row scans, 10% tiles",
			mix: []decluster.WorkloadClass{
				{Workload: rowClass, Weight: 9},
				{Workload: tileClass, Weight: 1},
			},
		},
		{
			name: "interactive map: 10% row scans, 90% tiles",
			mix: []decluster.WorkloadClass{
				{Workload: rowClass, Weight: 1},
				{Workload: tileClass, Weight: 9},
			},
		},
	}

	for _, p := range profiles {
		rec, err := decluster.Recommend(g, disks, p.mix, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", p.name)
		fmt.Printf("  → decluster with %s\n", rec.Best())
		for i, s := range rec.Ranking {
			fmt.Printf("    %d. %-5s weighted mean RT %.3f buckets (%.3f× optimal)\n",
				i+1, s.Method, s.Score, s.Ratio)
		}
		fmt.Println()
	}

	fmt.Println("the two profiles elect different methods — exactly the paper's point:")
	fmt.Println("there is no clear winner, so the declustering choice must follow the workload.")
}
