// Parallelscan: an end-to-end run of the storage substrate — load one
// million-cell-scale grid file per declustering method with the same
// skewed record population, execute range and partial-match searches,
// and replay the I/O traces through the 1993-era disk simulator to get
// wall-clock response times and parallel speedups.
package main

import (
	"fmt"
	"log"
	"time"

	"decluster"
)

func main() {
	g, err := decluster.NewGrid(32, 32)
	if err != nil {
		log.Fatal(err)
	}
	const (
		disks   = 8
		records = 100_000
	)

	// A clustered population: hot regions stress declustering harder
	// than uniform data because popular buckets overflow into many
	// pages.
	gen := decluster.ClusteredRecords{K: 2, Seed: 7, Clusters: 6, Sigma: 0.12}
	population := gen.Generate(records)

	sim, err := decluster.NewDiskSimulator(decluster.DiskModel1993())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("population: %d records, %s; file: %v grid on %d disks\n\n",
		records, gen.Name(), g, disks)

	for _, m := range decluster.PaperSet(g, disks) {
		f, err := decluster.NewGridFile(decluster.GridFileConfig{Method: m})
		if err != nil {
			log.Fatal(err)
		}
		if err := f.InsertAll(population); err != nil {
			log.Fatal(err)
		}

		// A value-level range query: one quarter of the space.
		rs, err := f.RangeSearch([]float64{0.25, 0.25}, []float64{0.745, 0.745})
		if err != nil {
			log.Fatal(err)
		}
		rangeRT := sim.ResponseTime(rs.Trace)
		rangeSpeedup := sim.Speedup(rs.Trace)

		// A partial match: attribute 0 pinned, attribute 1 free.
		pm, err := f.PartialMatchSearch([]float64{0.5, 0}, []bool{true, false})
		if err != nil {
			log.Fatal(err)
		}
		pmRT := sim.ResponseTime(pm.Trace)

		fmt.Printf("%-5s range: %5d records in %8s (%.2f× speedup, %3d buckets)   PM stripe: %8s\n",
			m.Name(), len(rs.Records), rangeRT.Round(100*time.Microsecond),
			rangeSpeedup, rs.Trace.BucketsTouched(), pmRT.Round(100*time.Microsecond))
	}

	fmt.Println("\nserial baseline for the same range query (all data on one disk):")
	one, err := decluster.NewDM(g, 1)
	if err != nil {
		log.Fatal(err)
	}
	f, err := decluster.NewGridFile(decluster.GridFileConfig{Method: one})
	if err != nil {
		log.Fatal(err)
	}
	if err := f.InsertAll(population); err != nil {
		log.Fatal(err)
	}
	rs, err := f.RangeSearch([]float64{0.25, 0.25}, []float64{0.745, 0.745})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  single disk: %s — declustering buys roughly the disk count in speedup\n",
		sim.ResponseTime(rs.Trace).Round(100*time.Microsecond))
}
