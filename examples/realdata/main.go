// Realdata: declustering a relation with real attribute types. A sales
// table (order_date TIMESTAMP, amount FLOAT, tier ENUM) is mapped onto
// the normalized grid through a typed schema, partitioned equi-depth so
// the skewed amounts don't pile into a few buckets, declustered with
// HCAM, and queried with typed range predicates.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"decluster"
)

func main() {
	// Schema: order date over 1994, amount in [0, 10000) dollars
	// (heavily skewed toward small orders), customer tier.
	start := time.Date(1994, 1, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(1995, 1, 1, 0, 0, 0, 0, time.UTC)
	tier, err := decluster.NewEnumAttr("bronze", "silver", "gold", "platinum")
	if err != nil {
		log.Fatal(err)
	}
	schema, err := decluster.NewSchema(
		decluster.TimeAttr{Start: start, End: end},
		decluster.FloatAttr{Min: 0, Max: 10000},
		tier,
	)
	if err != nil {
		log.Fatal(err)
	}

	// Synthesize 30k orders: dates uniform, amounts log-skewed, tiers
	// weighted.
	rng := rand.New(rand.NewSource(7))
	tiers := []string{"bronze", "bronze", "bronze", "silver", "silver", "gold", "platinum"}
	records := make([]decluster.Record, 0, 30_000)
	sample := make([][]float64, 0, 30_000)
	for i := 0; i < 30_000; i++ {
		date := start.Add(time.Duration(rng.Int63n(int64(end.Sub(start)))))
		amount := 10000 * rng.Float64() * rng.Float64() * rng.Float64() // skewed low
		rec, err := schema.Record(i, date, amount, tiers[rng.Intn(len(tiers))])
		if err != nil {
			log.Fatal(err)
		}
		records = append(records, rec)
		sample = append(sample, rec.Values)
	}

	// 16×16×4 grid (dates × amounts × tiers) over 8 disks, partitioned
	// equi-depth from the data sample so skewed amounts stay balanced.
	g, err := decluster.NewGrid(16, 16, 4)
	if err != nil {
		log.Fatal(err)
	}
	// Equi-depth on the continuous axes; the 4-value tier axis keeps
	// uniform boundaries (its quantiles would collapse on the heavy
	// bronze tier).
	timeAmount := make([][]float64, len(sample))
	for i, row := range sample {
		timeAmount[i] = row[:2]
	}
	bounds, err := decluster.EquiDepth(timeAmount, []int{16, 16})
	if err != nil {
		log.Fatal(err)
	}
	bounds = append(bounds, decluster.UniformBoundaries(4))
	method, err := decluster.NewHCAM(g, 8)
	if err != nil {
		log.Fatal(err)
	}
	f, err := decluster.NewGridFile(decluster.GridFileConfig{
		Method:     method,
		Boundaries: bounds,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := f.InsertAll(records); err != nil {
		log.Fatal(err)
	}

	stats := f.Stats()
	fmt.Printf("loaded %d orders into %d buckets (%d pages) across 8 disks\n",
		stats.Records, stats.OccupiedBuckets, stats.TotalPages)
	fmt.Printf("pages per disk: %v\n\n", stats.PagesPerDisk)

	// Typed query: Q2 orders over $1000, any tier.
	dLo, dHi, err := schema.Range(0,
		time.Date(1994, 4, 1, 0, 0, 0, 0, time.UTC),
		time.Date(1994, 6, 30, 23, 59, 59, 0, time.UTC))
	if err != nil {
		log.Fatal(err)
	}
	aLo, aHi, err := schema.Range(1, 1000.0, 9999.99)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := f.RangeSearch(
		[]float64{dLo, aLo, 0},
		[]float64{dHi, aHi, 0.999999},
	)
	if err != nil {
		log.Fatal(err)
	}
	disksUsed := 0
	for _, as := range rs.Trace.PerDisk {
		if len(as) > 0 {
			disksUsed++
		}
	}
	fmt.Printf("Q2 orders > $1000: %d records; %d buckets read across %d disks,\n",
		len(rs.Records), rs.Trace.BucketsTouched(), disksUsed)
	fmt.Printf("busiest disk %d pages of %d total → parallel speedup ≈ %.1f×\n",
		rs.Trace.MaxDiskPages(), rs.Trace.TotalPages(),
		float64(rs.Trace.TotalPages())/float64(rs.Trace.MaxDiskPages()))

	sim, err := decluster.NewDiskSimulator(decluster.DiskModel1993())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on 1993 hardware this query answers in %v\n",
		sim.ResponseTime(rs.Trace).Round(time.Millisecond))
}
