// Catalog: the whole system in one story. A parallel database holds
// several relations, each with its own query profile; the catalog
// elects a declustering method per relation (the paper's conclusion),
// stores records, routes queries — and when a relation's workload
// drifts, it is redeclustered, with the reorganization cost surfaced.
package main

import (
	"bytes"
	"fmt"
	"log"

	"decluster"
)

func main() {
	const disks = 16
	cat, err := decluster.NewCatalog(disks)
	if err != nil {
		log.Fatal(err)
	}

	// Relation 1: a reporting table dominated by row scans.
	gOrders, _ := decluster.NewGrid(64, 64)
	rowScans, err := decluster.Placements(gOrders, []int{1, 32}, 400, 1)
	if err != nil {
		log.Fatal(err)
	}
	ordersRel, ordersRec, err := cat.CreateAdvised("orders", gOrders,
		[]decluster.WorkloadClass{{
			Workload: decluster.Workload{Name: "row scans", Queries: rowScans},
			Weight:   1,
		}}, nil, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Relation 2: a map-tile table dominated by compact squares.
	gTiles, _ := decluster.NewGrid(64, 64)
	tiles, err := decluster.Placements(gTiles, []int{4, 4}, 400, 1)
	if err != nil {
		log.Fatal(err)
	}
	tilesRel, tilesRec, err := cat.CreateAdvised("tiles", gTiles,
		[]decluster.WorkloadClass{{
			Workload: decluster.Workload{Name: "tile lookups", Queries: tiles},
			Weight:   1,
		}}, nil, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("catalog after creation (one method per relation, per its workload):")
	fmt.Printf("  orders → %-5s (advisor ranking: %s)\n", ordersRel.Method().Name(), rankingLine(ordersRec))
	fmt.Printf("  tiles  → %-5s (advisor ranking: %s)\n\n", tilesRel.Method().Name(), rankingLine(tilesRec))

	// Load and query.
	records := decluster.UniformRecords{K: 2, Seed: 5}.Generate(20_000)
	for _, rel := range cat.Names() {
		if err := cat.Insert(rel, records); err != nil {
			log.Fatal(err)
		}
	}
	rs, err := cat.RangeSearch("orders", []float64{0.1, 0.0}, []float64{0.12, 0.999})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("row scan on orders: %d records, busiest disk read %d pages (of %d total)\n",
		len(rs.Records), rs.Trace.MaxDiskPages(), rs.Trace.TotalPages())

	// The orders workload drifts to compact squares: redecluster.
	fmt.Println("\nworkload drift: orders now serves tile-shaped queries — redeclustering…")
	moved, err := cat.Redecluster("orders", tilesRel.Method().Name())
	if err != nil {
		log.Fatal(err)
	}
	ordersRel, _ = cat.Get("orders")
	fmt.Printf("  orders → %s, %d occupied buckets moved between disks\n",
		ordersRel.Method().Name(), moved)

	// Persist the catalog metadata.
	var buf bytes.Buffer
	if err := cat.Save(&buf); err != nil {
		log.Fatal(err)
	}
	restored, err := decluster.LoadCatalog(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncatalog persisted and reloaded: %d relations (%v) on %d disks\n",
		len(restored.Names()), restored.Names(), restored.Disks())
	fmt.Println("\n\"since there is no clear winner, parallel database systems must")
	fmt.Println("support a number of declustering methods\" — and here they do.")
}

// rankingLine compacts an advisor ranking to one line.
func rankingLine(rec *decluster.Recommendation) string {
	out := ""
	for i, s := range rec.Ranking {
		if i > 0 {
			out += " > "
		}
		out += s.Method
	}
	return out
}
