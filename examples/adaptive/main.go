// Adaptive: a dynamic grid file growing under skewed insertions. The
// paper's methods allocate a *static* Cartesian product file, assuming
// "the data distribution tends to remain fairly stable"; this example
// shows the structure underneath that assumption — scales adapt to the
// data, buckets split, the directory doubles — and compares two dynamic
// disk-allocation policies: creation-order round robin versus placing
// each new bucket with a static HCAM layout over a virtual grid. The
// punchline is a concrete demonstration of the static assumption's
// limit: under heavy skew the virtual grid's resolution saturates (many
// hot buckets share one virtual cell, hence one disk), so the static
// layout collapses exactly where the data is hottest.
package main

import (
	"fmt"
	"log"

	"decluster"
)

func main() {
	const (
		disks   = 8
		records = 40_000
	)
	// A skewed population: most records crowd the low corner.
	gen := decluster.ZipfRecords{K: 2, Seed: 13, S: 1.6, Buckets: 128}
	population := gen.Generate(records)

	// Policy 1: round robin by bucket creation order.
	rr, err := decluster.NewDynamicGridFile(decluster.DynamicConfig{
		K: 2, Disks: disks, Capacity: 16,
		Allocate: decluster.RoundRobinAllocator(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Policy 2: HCAM over a virtual 64×64 grid decides each bucket's
	// disk from its spatial position.
	vg, err := decluster.NewGrid(64, 64)
	if err != nil {
		log.Fatal(err)
	}
	hcam, err := decluster.NewHCAM(vg, disks)
	if err != nil {
		log.Fatal(err)
	}
	methodAlloc, err := decluster.MethodBucketAllocator(hcam)
	if err != nil {
		log.Fatal(err)
	}
	ma, err := decluster.NewDynamicGridFile(decluster.DynamicConfig{
		K: 2, Disks: disks, Capacity: 16,
		Allocate: methodAlloc,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, f := range []*decluster.DynamicGridFile{rr, ma} {
		if err := f.InsertAll(population); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("inserted %d %s records\n\n", records, gen.Name())
	fmt.Printf("structure after growth (both files see the same data):\n")
	fmt.Printf("  buckets: %d   splits: %d   directory doublings: %d   directory: %v cells\n",
		rr.NumBuckets(), rr.Splits(), rr.DirectoryDoublings(), rr.Dims())
	lowScales, highScales := 0, 0
	for _, s := range rr.Scales(0) {
		if s < 0.25 {
			lowScales++
		} else {
			highScales++
		}
	}
	fmt.Printf("  attribute 0 split points: %d below 0.25, %d above — the scales follow the skew\n\n",
		lowScales, highScales)

	// Compare the policies on compact queries in the hot region.
	fmt.Println("hot-region 10%×10% range queries, busiest-disk pages per query:")
	fmt.Printf("  %-28s %-12s %s\n", "query box", "round-robin", "HCAM-placed")
	for _, corner := range [][2]float64{{0.0, 0.0}, {0.05, 0.05}, {0.1, 0.02}, {0.02, 0.12}} {
		lo := []float64{corner[0], corner[1]}
		hi := []float64{corner[0] + 0.1, corner[1] + 0.1}
		r1, err := rr.RangeSearch(lo, hi)
		if err != nil {
			log.Fatal(err)
		}
		r2, err := ma.RangeSearch(lo, hi)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  [%.2f,%.2f]→[%.2f,%.2f]      %-12d %d\n",
			lo[0], lo[1], hi[0], hi[1], r1.Trace.MaxDiskPages(), r2.Trace.MaxDiskPages())
	}
	fmt.Println("\naway from the hot spot both policies are comparable, but in the hottest")
	fmt.Println("box the HCAM-placed file collapses onto few disks: thousands of buckets")
	fmt.Println("map to a handful of virtual 64×64 cells, so they share disks. This is")
	fmt.Println("the boundary of the paper's static-allocation assumption — when the")
	fmt.Println("distribution drifts far from the declustering grid, the relation must")
	fmt.Println("be redeclustered (or allocated adaptively, as round robin does here).")
}
