// Shapestudy: the paper's Experiment 2 through the public API — fix a
// query area and sweep its shape from square to line, showing how
// sensitive each declustering method is to aspect ratio. Demonstrates
// building shape-sweep workloads and tabulating results by hand.
package main

import (
	"fmt"
	"log"

	"decluster"
)

func main() {
	g, err := decluster.NewGrid(64, 64)
	if err != nil {
		log.Fatal(err)
	}
	const (
		disks = 16
		area  = 64 // every query touches 64 buckets; only the shape varies
	)
	methods := decluster.PaperSet(g, disks)

	workloads, err := decluster.ShapeSweep(g, area, 500, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query shape sweep at fixed area %d on %v, M=%d\n", area, g, disks)
	fmt.Printf("(mean response time in bucket accesses; optimal = %d)\n\n",
		decluster.OptimalRT(area, disks))

	fmt.Printf("%-8s", "shape")
	for _, m := range methods {
		fmt.Printf("%8s", m.Name())
	}
	fmt.Println()
	for _, w := range workloads {
		fmt.Printf("%-8s", w.Name)
		for _, res := range decluster.EvaluateAll(methods, w) {
			fmt.Printf("%8.3f", res.MeanRT)
		}
		fmt.Println()
	}

	fmt.Println("\nreading the sweep:")
	fmt.Println("  - DM and FX answer 1×64 / 64×1 line queries exactly optimally")
	fmt.Println("    (the classic partial-match optimality of the modulo family);")
	fmt.Println("  - HCAM prefers compact shapes: its Hilbert clustering falls apart")
	fmt.Println("    on lines, which cross many curve segments;")
	fmt.Println("  - the paper's finding (iii): performance is quite sensitive to")
	fmt.Println("    query shape, so no single method wins every shape.")
}
