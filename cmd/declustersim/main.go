// Command declustersim regenerates the tables and figures of the
// reproduced declustering study (Himatsingka & Srivastava, ICDE 1994)
// as plain-text tables.
//
// Usage:
//
//	declustersim [flags]
//
//	-experiment  which artifact to regenerate: all, table1, theorem,
//	             size, shape, attrs, disks-small, disks-large, dbsize,
//	             pm, endtoend, availability, chaos, recovery, cluster,
//	             batch-goodput (default all; chaos, recovery, cluster,
//	             and batch-goodput are excluded from all — they are
//	             wall-clock soaks)
//	-metric      meanrt | ratio | fracopt | worst (default meanrt)
//	-samples     query placements sampled per workload (default 2000)
//	-seed        sampling seed (default 1)
//	-exhaustive  disable sampling (exhaustive placements); experiments
//	             that cannot honour it (open-ended query bands) say so
//	             in a printed warning
//	-random      include the balanced-random baseline
//	-parallel    sweep-engine workers (default 0 = every CPU; results
//	             are byte-identical at any setting)
//	-kernel      response-time kernel: auto, walk, or prefix (default
//	             auto — prefix summed-area tables when they fit the
//	             memory budget, table walk otherwise)
//	-fail-disks  availability: maximum simultaneously failed disks
//	             (default 2; 0 disables the failure sweep)
//	-fail-prob   availability: transient read-error probability of the
//	             end-to-end fault drill (default 0.3; 0 disables
//	             transient errors)
//	-soak        chaos: soak duration per method × scheme cell; passing
//	             it implies -experiment chaos (default 300ms)
//	-qps         chaos: total target arrival rate (default 0 =
//	             closed-loop clients)
//	-clients     chaos: concurrent query clients (default 12)
//	-hedge-after chaos: hedged-read delay (default 2.5× the simulated
//	             base read latency)
//	-rebuild-rate recovery: comma-separated rebuild throttles in
//	             pages/sec, one table cell each per replication scheme;
//	             0 means unthrottled (default 50,200,1600)
//	-nodes       cluster: cluster size N — one HTTP server per node on
//	             loopback (default 4)
//	-replicas    cluster: copies per shard of the replicated placements
//	             (default 2); the fault schedule replays from the
//	             printed -seed
//	-join        cluster: run the online-join migration scenario; any of
//	             -join/-leave/-partition narrows the run to exactly the
//	             scenarios named (default: all five chaos scenarios)
//	-leave       cluster: run the online-leave migration scenario
//	-partition   cluster: run the partition-then-heal scenario
//	-flash-crowd cluster: run the flash-crowd load surge against static
//	             membership
//	-autopilot   cluster: run the flash-crowd surge with the autopilot
//	             membership controller attached — it joins the standby
//	             when windowed p99 crosses the -autopilot-p99 bound
//	-blinking    cluster: run the blinking-partition adversarial
//	             schedule against the autopilot (fuses must hold, zero
//	             thrash)
//	-spike-factor cluster: flash-crowd surge intensity — open-loop
//	             issuers hammering the seeded hot region (default 2)
//	-autopilot-p99 cluster: autopilot scale-up trigger and stated p99
//	             bound (default 10× base latency)
//	-migrate-rate cluster: throttle join/leave bucket copies in
//	             pages/sec (default 0 = unthrottled; autopilot
//	             migrations obey it too)
//	-corrupt-prob recovery: per-page silent-corruption probability of
//	             the seeded rot plan (default 0.02)
//	-metrics     dump the observability registry after the run as
//	             "table" or "csv" (the chaos and recovery soaks are the
//	             instrumented experiments)
//	-trace-slowest record per-query lifecycle traces and print the N
//	             slowest span trees after the run
//	-http        serve live metrics (/metrics JSON, /metrics.txt,
//	             /metrics.csv, /traces) and /debug/pprof on this
//	             address while the run executes
//
// Examples:
//
//	declustersim -experiment size -metric ratio
//	declustersim -experiment theorem
//	declustersim -experiment availability -fail-disks 3 -fail-prob 0.5 -seed 7
//	declustersim -experiment batch-goodput -soak 1s -clients 16
//	declustersim -soak 1s -clients 16 -hedge-after 600us
//	declustersim -soak 1s -metrics table -trace-slowest 3 -http :8080
//	declustersim -experiment recovery -rebuild-rate 200,800 -corrupt-prob 0.05
//	declustersim -experiment cluster -nodes 6 -replicas 2 -soak 1s -seed 42
//	declustersim -experiment cluster -join -leave -migrate-rate 400 -soak 1s
//	declustersim -experiment cluster -partition -soak 2s -seed 9
//	declustersim -flash-crowd -autopilot -soak 8s -migrate-rate 800 -seed 42
//	declustersim -blinking -soak 4s -seed 42
//	declustersim -experiment all -samples 500
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"slices"
	"sort"
	"strconv"
	"strings"

	"decluster/internal/cost"
	"decluster/internal/experiments"
	"decluster/internal/grid"
	"decluster/internal/obs"
	"decluster/internal/optimality"
)

func main() {
	var (
		experiment  = flag.String("experiment", "all", "artifact to regenerate (all, table1, theorem, size, shape, attrs, disks-small, disks-large, dbsize, pm, endtoend, availability, chaos, recovery, cluster, batch-goodput)")
		metric      = flag.String("metric", "meanrt", "metric to print: meanrt, ratio, fracopt, worst")
		samples     = flag.Int("samples", 2000, "query placements sampled per workload")
		seed        = flag.Int64("seed", 1, "sampling seed")
		exhaustive  = flag.Bool("exhaustive", false, "disable sampling")
		random      = flag.Bool("random", false, "include the balanced-random baseline")
		parallel    = flag.Int("parallel", 0, "sweep-engine workers (0 = every CPU)")
		kernelName  = flag.String("kernel", "auto", "response-time kernel: auto, walk, prefix")
		csvOut      = flag.Bool("csv", false, "emit sweep experiments as CSV instead of tables")
		plotOut     = flag.Bool("plot", false, "render sweep experiments as ASCII charts instead of tables")
		failDisks   = flag.Int("fail-disks", 2, "availability experiment: maximum simultaneously failed disks")
		failProb    = flag.Float64("fail-prob", 0.3, "availability experiment: transient read-error probability of the fault drill")
		soak        = flag.Duration("soak", 0, "chaos experiment: soak duration per cell (implies -experiment chaos)")
		qps         = flag.Float64("qps", 0, "chaos experiment: total target arrival rate (0 = closed-loop)")
		clients     = flag.Int("clients", 0, "chaos experiment: concurrent query clients (default 12)")
		hedgeAfter  = flag.Duration("hedge-after", 0, "chaos experiment: hedged-read delay (default 2.5× base latency)")
		rebuildRate = flag.String("rebuild-rate", "", "recovery experiment: comma-separated rebuild throttles in pages/sec (0 = unthrottled; default 50,200,1600)")
		nodes       = flag.Int("nodes", 0, "cluster experiment: cluster size N (default 4)")
		replicas    = flag.Int("replicas", 0, "cluster experiment: copies per shard of the replicated placements (default 2)")
		joinScen    = flag.Bool("join", false, "cluster experiment: run the online-join migration scenario (narrows the scenario set)")
		leaveScen   = flag.Bool("leave", false, "cluster experiment: run the online-leave migration scenario (narrows the scenario set)")
		partScen    = flag.Bool("partition", false, "cluster experiment: run the partition-then-heal scenario (narrows the scenario set)")
		flashScen   = flag.Bool("flash-crowd", false, "cluster experiment: run the flash-crowd load-surge scenario, static membership (narrows the scenario set)")
		autoScen    = flag.Bool("autopilot", false, "cluster experiment: run the flash-crowd scenario with the autopilot membership controller attached (narrows the scenario set)")
		blinkScen   = flag.Bool("blinking", false, "cluster experiment: run the blinking-partition adversarial scenario against the autopilot (narrows the scenario set)")
		spikeFactor = flag.Float64("spike-factor", 0, "cluster experiment: flash-crowd surge intensity on the hot region (default 2)")
		autoP99     = flag.Duration("autopilot-p99", 0, "cluster experiment: autopilot scale-up p99 trigger and stated bound (default 10× base latency)")
		migrateRate = flag.Float64("migrate-rate", 0, "cluster experiment: join/leave copy throttle in pages/sec (0 = unthrottled)")
		corruptProb = flag.Float64("corrupt-prob", 0, "recovery experiment: per-page silent-corruption probability (default 0.02)")
		metricsOut  = flag.String("metrics", "", "dump the observability registry after the run: table or csv (chaos and recovery)")
		traceSlow   = flag.Int("trace-slowest", 0, "record per-query traces and print the N slowest span trees after the run")
		httpAddr    = flag.String("http", "", "serve live metrics, traces, and pprof on this address (e.g. :8080) while the run executes")
	)
	flag.Parse()

	m, err := parseMetric(*metric)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *parallel < 0 {
		fmt.Fprintln(os.Stderr, "declustersim: -parallel must be ≥ 0")
		os.Exit(2)
	}
	kernel, err := cost.ParseKernel(*kernelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "declustersim:", err)
		os.Exit(2)
	}
	opt := experiments.Options{
		Seed:          *seed,
		SampleLimit:   *samples,
		Exhaustive:    *exhaustive,
		IncludeRandom: *random,
		Parallel:      *parallel,
		Kernel:        kernel,
	}
	mode := modeTable
	if *csvOut {
		mode = modeCSV
	}
	if *plotOut {
		mode = modePlot
	}
	if *failDisks < 0 {
		fmt.Fprintln(os.Stderr, "declustersim: -fail-disks must be ≥ 0")
		os.Exit(2)
	}
	if *failProb < 0 || *failProb >= 1 {
		fmt.Fprintln(os.Stderr, "declustersim: -fail-prob must be in [0, 1)")
		os.Exit(2)
	}
	avail := experiments.AvailabilityConfig{
		MaxFailed:     *failDisks,
		TransientProb: *failProb,
	}
	// Zero is meaningful for both flags (no failure sweep, no transient
	// errors) but is also the config's selects-the-default value, so an
	// explicitly passed 0 becomes the config's negative sentinel.
	flag.Visit(func(fl *flag.Flag) {
		switch fl.Name {
		case "fail-disks":
			if *failDisks == 0 {
				avail.MaxFailed = -1
			}
		case "fail-prob":
			if *failProb == 0 {
				avail.TransientProb = -1
			}
		}
	})
	if *soak < 0 || *qps < 0 || *clients < 0 || *hedgeAfter < 0 {
		fmt.Fprintln(os.Stderr, "declustersim: -soak, -qps, -clients, and -hedge-after must be ≥ 0")
		os.Exit(2)
	}
	chaos := experiments.ChaosConfig{
		Duration:   *soak,
		QPS:        *qps,
		Clients:    *clients,
		HedgeAfter: *hedgeAfter,
	}
	if *nodes < 0 || *replicas < 0 || *migrateRate < 0 || *spikeFactor < 0 || *autoP99 < 0 {
		fmt.Fprintln(os.Stderr, "declustersim: -nodes, -replicas, -migrate-rate, -spike-factor, and -autopilot-p99 must be ≥ 0")
		os.Exit(2)
	}
	clusterCfg := experiments.ClusterChaosConfig{
		Nodes:        *nodes,
		Replicas:     *replicas,
		Duration:     *soak,
		Clients:      *clients,
		HedgeAfter:   *hedgeAfter,
		MigrateRate:  *migrateRate,
		SpikeFactor:  *spikeFactor,
		AutopilotP99: *autoP99,
	}
	// Naming any scenario flag narrows the run to exactly the scenarios
	// named; naming none keeps the default five-scenario sweep.
	var scenarios []string
	if *partScen {
		scenarios = append(scenarios, "partition")
	}
	if *joinScen {
		scenarios = append(scenarios, "join")
	}
	if *leaveScen {
		scenarios = append(scenarios, "leave")
	}
	if *flashScen {
		scenarios = append(scenarios, "flash-crowd")
	}
	if *autoScen {
		scenarios = append(scenarios, "flash-crowd+autopilot")
	}
	if *blinkScen {
		scenarios = append(scenarios, "blinking-partition")
	}
	clusterCfg.Scenarios = scenarios
	if *corruptProb < 0 || *corruptProb >= 1 {
		fmt.Fprintln(os.Stderr, "declustersim: -corrupt-prob must be in [0, 1)")
		os.Exit(2)
	}
	rates, err := parseRates(*rebuildRate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "declustersim:", err)
		os.Exit(2)
	}
	recovery := experiments.RecoveryConfig{
		RebuildRates: rates,
		CorruptProb:  *corruptProb,
	}
	if *metricsOut != "" && *metricsOut != "table" && *metricsOut != "csv" {
		fmt.Fprintf(os.Stderr, "declustersim: -metrics must be table or csv, got %q\n", *metricsOut)
		os.Exit(2)
	}
	if *traceSlow < 0 {
		fmt.Fprintln(os.Stderr, "declustersim: -trace-slowest must be ≥ 0")
		os.Exit(2)
	}
	var sink *obs.Sink
	if *metricsOut != "" || *traceSlow > 0 || *httpAddr != "" {
		sink = obs.NewSink()
		if *traceSlow > 0 {
			sink.EnableTracing(*traceSlow)
		}
		chaos.Obs = sink
		recovery.Obs = sink
		clusterCfg.Obs = sink
	}
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "declustersim:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "declustersim: observability on http://%s/metrics (live for the run)\n", ln.Addr())
		go http.Serve(ln, sink.Handler())
	}
	name := *experiment
	// -soak alone is enough to ask for the chaos soak, and a scenario
	// flag alone for the cluster soak; don't make the user also spell
	// -experiment. The scenario flags win: they exist only for cluster.
	if name == "all" && (*soak > 0 || len(scenarios) > 0) {
		expSet := false
		flag.Visit(func(fl *flag.Flag) {
			if fl.Name == "experiment" {
				expSet = true
			}
		})
		if !expSet {
			name = "chaos"
			if len(scenarios) > 0 {
				name = "cluster"
			}
		}
	}
	passed := make(map[string]bool)
	flag.Visit(func(fl *flag.Flag) { passed[fl.Name] = true })
	if err := checkFlagScope(name, passed); err != nil {
		fmt.Fprintln(os.Stderr, "declustersim:", err)
		os.Exit(2)
	}
	if err := run(os.Stdout, name, m, opt, avail, chaos, recovery, clusterCfg, mode); err != nil {
		fmt.Fprintln(os.Stderr, "declustersim:", err)
		os.Exit(1)
	}
	if err := dumpObs(os.Stdout, sink, *metricsOut, *traceSlow); err != nil {
		fmt.Fprintln(os.Stderr, "declustersim:", err)
		os.Exit(1)
	}
}

// dumpObs writes the end-of-run observability artifacts: the metric
// registry in the requested format, then the slowest recorded traces as
// span trees. A nil sink no-ops (observability was never requested).
func dumpObs(w io.Writer, sink *obs.Sink, metricsMode string, traceN int) error {
	if sink == nil {
		return nil
	}
	switch metricsMode {
	case "table":
		fmt.Fprintln(w, "\n== metrics ==")
		if err := sink.Registry().WriteTable(w); err != nil {
			return err
		}
	case "csv":
		if err := sink.Registry().WriteCSV(w); err != nil {
			return err
		}
	}
	if traceN > 0 {
		traces := sink.SlowestTraces()
		fmt.Fprintf(w, "\n== slowest %d traces ==\n", len(traces))
		for _, tr := range traces {
			if err := tr.RenderTree(w); err != nil {
				return err
			}
		}
	}
	return nil
}

func parseMetric(s string) (experiments.Metric, error) {
	switch strings.ToLower(s) {
	case "meanrt":
		return experiments.MeanRT, nil
	case "ratio":
		return experiments.Ratio, nil
	case "fracopt":
		return experiments.FracOptimal, nil
	case "worst":
		return experiments.WorstRT, nil
	default:
		return 0, fmt.Errorf("unknown metric %q (meanrt, ratio, fracopt, worst)", s)
	}
}

// parseRates parses the -rebuild-rate list ("100,400,1600"); empty
// means the recovery experiment's defaults.
func parseRates(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("-rebuild-rate: %q is not a number", part)
		}
		if r < 0 {
			return nil, fmt.Errorf("-rebuild-rate: %v must be ≥ 0 (0 = unthrottled)", r)
		}
		rates = append(rates, r)
	}
	return rates, nil
}

// runners maps experiment names to their execution, in the paper's
// presentation order.
var order = []string{
	"table1", "theorem", "size", "shape", "attrs",
	"disks-small", "disks-large", "dbsize", "pm", "endtoend",
	"batch", "skew", "drift", "replication", "availability", "load", "witness",
}

// scopedFlags maps each flag that only specific experiments read to
// those experiments. "all" appears only where the default sweep
// actually reaches the consumer (availability); the soak experiments
// are excluded from "all", so their knobs are not consumed there.
var scopedFlags = map[string][]string{
	"soak":          {"chaos", "cluster", "batch-goodput"},
	"qps":           {"chaos"},
	"clients":       {"chaos", "cluster", "batch-goodput"},
	"hedge-after":   {"chaos", "cluster"},
	"nodes":         {"cluster"},
	"replicas":      {"cluster"},
	"join":          {"cluster"},
	"leave":         {"cluster"},
	"partition":     {"cluster"},
	"flash-crowd":   {"cluster"},
	"autopilot":     {"cluster"},
	"blinking":      {"cluster"},
	"spike-factor":  {"cluster"},
	"autopilot-p99": {"cluster"},
	"migrate-rate":  {"cluster"},
	"rebuild-rate":  {"recovery"},
	"corrupt-prob":  {"recovery"},
	"fail-disks":    {"availability", "all"},
	"fail-prob":     {"availability", "all"},
}

// checkFlagScope rejects explicitly passed flags the selected
// experiment never reads. Before this check such flags were silently
// ignored — `-qps 500` without `-experiment chaos` ran the default
// sweep at full tilt and reported numbers for a run the user never
// asked for. The experiment name is the one after -soak/scenario-flag
// implication, so the convenience spellings still work.
func checkFlagScope(experiment string, passed map[string]bool) error {
	names := make([]string, 0, len(passed))
	for n := range passed {
		if _, ok := scopedFlags[n]; ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		consumers := scopedFlags[n]
		if !slices.Contains(consumers, experiment) {
			return fmt.Errorf("-%s is read only by -experiment %s and would be silently ignored by %q",
				n, strings.Join(consumers, "|"), experiment)
		}
	}
	return nil
}

// outputMode selects how sweep experiments are rendered.
type outputMode int

const (
	modeTable outputMode = iota
	modeCSV
	modePlot
)

// run executes one experiment (or all) and writes its artifact to w in
// the chosen output mode. The chaos and recovery soaks are deliberately
// not part of "all": they burn wall-clock time by design and their
// numbers vary run to run, while everything in order is fast and
// deterministic.
func run(w io.Writer, name string, metric experiments.Metric, opt experiments.Options, avail experiments.AvailabilityConfig, chaos experiments.ChaosConfig, recovery experiments.RecoveryConfig, clusterCfg experiments.ClusterChaosConfig, mode outputMode) error {
	if name == "all" {
		for _, n := range order {
			if err := run(w, n, metric, opt, avail, chaos, recovery, clusterCfg, mode); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	switch name {
	case "table1":
		t, err := experiments.Table1Report([]int{16, 16}, 8)
		if err != nil {
			return err
		}
		fmt.Fprint(w, t)
	case "theorem":
		res, err := experiments.Theorem(experiments.TheoremConfig{})
		if err != nil {
			return err
		}
		fmt.Fprint(w, res.Table())
		if res.HoldsPaperTheorem() {
			fmt.Fprintln(w, "paper theorem confirmed: no strictly optimal declustering exists for M > 5")
		} else {
			fmt.Fprintln(w, "WARNING: paper theorem NOT confirmed on this sweep")
		}
	case "size":
		e, err := experiments.QuerySize(experiments.SizeConfig{}, opt)
		return printExperiment(w, e, err, metric, mode)
	case "shape":
		e, err := experiments.QueryShape(experiments.ShapeConfig{}, opt)
		return printExperiment(w, e, err, metric, mode)
	case "attrs":
		e, err := experiments.Attributes(experiments.AttrsConfig{}, opt)
		return printExperiment(w, e, err, metric, mode)
	case "disks-small":
		e, err := experiments.DisksSmall(experiments.DisksConfig{}, opt)
		return printExperiment(w, e, err, metric, mode)
	case "disks-large":
		e, err := experiments.DisksLarge(experiments.DisksConfig{}, opt)
		return printExperiment(w, e, err, metric, mode)
	case "dbsize":
		e, err := experiments.DatabaseSize(experiments.DBSizeConfig{}, opt)
		return printExperiment(w, e, err, metric, mode)
	case "pm":
		e, err := experiments.PartialMatch(experiments.PMConfig{}, opt)
		return printExperiment(w, e, err, metric, mode)
	case "endtoend":
		res, err := experiments.EndToEnd(experiments.EndToEndConfig{}, opt)
		if err != nil {
			return err
		}
		fmt.Fprint(w, res.Table())
	case "batch":
		res, err := experiments.Batch(experiments.BatchConfig{}, opt)
		if err != nil {
			return err
		}
		fmt.Fprint(w, res.Table())
	case "skew":
		res, err := experiments.Skew(experiments.SkewConfig{}, opt)
		if err != nil {
			return err
		}
		fmt.Fprint(w, res.Table())
	case "drift":
		res, err := experiments.Drift(experiments.DriftConfig{}, opt)
		if err != nil {
			return err
		}
		fmt.Fprint(w, res.Table())
	case "replication":
		res, err := experiments.Replication(experiments.ReplicationConfig{}, opt)
		if err != nil {
			return err
		}
		fmt.Fprint(w, res.Table())
	case "availability":
		res, err := experiments.Availability(avail, opt)
		if err != nil {
			return err
		}
		fmt.Fprint(w, res.Table())
		fmt.Fprint(w, res.DrillReport())
	case "load":
		res, err := experiments.Load(experiments.LoadConfig{}, opt)
		if err != nil {
			return err
		}
		fmt.Fprint(w, res.Table())
	case "chaos":
		res, err := experiments.Chaos(chaos, opt)
		if err != nil {
			return err
		}
		fmt.Fprint(w, res.Table())
		fmt.Fprint(w, res.HedgeReport())
	case "recovery":
		res, err := experiments.Recovery(recovery, opt)
		if err != nil {
			return err
		}
		fmt.Fprint(w, res.Table())
		fmt.Fprint(w, res.ThrottleReport())
	case "cluster":
		res, err := experiments.ClusterChaos(clusterCfg, opt)
		if err != nil {
			return err
		}
		fmt.Fprint(w, res.Table())
		fmt.Fprintf(w, "fault schedules are pure functions of the seed; replay with -seed %d\n", res.Seed)
	case "batch-goodput":
		// The EB soak shares the chaos soak's knobs: -soak is the cell
		// duration, -clients the issuer count, -metrics the registry dump.
		res, err := experiments.BatchGoodput(experiments.BatchGoodputConfig{
			Duration: chaos.Duration,
			Clients:  chaos.Clients,
			Obs:      chaos.Obs,
		}, opt)
		if err != nil {
			return err
		}
		fmt.Fprint(w, res.Table())
		fmt.Fprint(w, res.AggregateReport())
	case "witness":
		return printWitnesses(w)
	default:
		return fmt.Errorf("unknown experiment %q (try: all, %s, chaos, recovery, cluster, batch-goodput)", name, strings.Join(order, ", "))
	}
	return nil
}

// printWitnesses extracts and prints the minimal query-shape cores of
// the impossibility theorem on cheap witness grids.
func printWitnesses(w io.Writer) error {
	fmt.Fprintln(w, "minimal query-shape cores proving no strictly optimal allocation exists")
	for _, tc := range []struct {
		dims []int
		m    int
	}{
		{[]int{4, 4}, 4},
		{[]int{3, 6}, 6},
		{[]int{7, 7}, 7},
	} {
		g, err := grid.New(tc.dims...)
		if err != nil {
			return err
		}
		core, err := optimality.MinimalWitness(g, tc.m, 100_000_000)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %v grid, M=%d: shapes %v\n", g, tc.m, core)
	}
	fmt.Fprintln(w, "every placement of just these shapes is already unsatisfiable;")
	fmt.Fprintln(w, "dropping any one shape admits an allocation.")
	return nil
}

func printExperiment(w io.Writer, e *experiments.Experiment, err error, metric experiments.Metric, mode outputMode) error {
	if err != nil {
		return err
	}
	// Warnings travel with the artifact on every output mode (CSV
	// warnings go to stderr so the data stream stays parseable): data
	// that deviates from what was asked must say so.
	warnTo := w
	if mode == modeCSV {
		warnTo = os.Stderr
	}
	for _, warn := range e.Warnings {
		fmt.Fprintf(warnTo, "warning: %s: %s\n", e.ID, warn)
	}
	switch mode {
	case modeCSV:
		return e.WriteCSV(w, metric)
	case modePlot:
		fmt.Fprint(w, e.Chart(metric))
		return nil
	default:
		fmt.Fprint(w, e.Table(metric))
		fmt.Fprintf(w, "best per row: %s\n", strings.Join(e.Best(metric), ", "))
		return nil
	}
}
