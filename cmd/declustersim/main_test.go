package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"decluster/internal/cost"
	"decluster/internal/experiments"
)

func fastOpt() experiments.Options {
	return experiments.Options{Seed: 1, SampleLimit: 50}
}

func TestParseMetric(t *testing.T) {
	for name, want := range map[string]experiments.Metric{
		"meanrt":  experiments.MeanRT,
		"RATIO":   experiments.Ratio,
		"fracopt": experiments.FracOptimal,
		"worst":   experiments.WorstRT,
	} {
		got, err := parseMetric(name)
		if err != nil || got != want {
			t.Errorf("parseMetric(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseMetric("bogus"); err == nil {
		t.Error("bogus metric accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "bogus", experiments.MeanRT, fastOpt(), experiments.AvailabilityConfig{}, experiments.ChaosConfig{}, experiments.RecoveryConfig{}, experiments.ClusterChaosConfig{}, modeTable); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSizeTable(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "size", experiments.Ratio, fastOpt(), experiments.AvailabilityConfig{}, experiments.ChaosConfig{}, experiments.RecoveryConfig{}, experiments.ClusterChaosConfig{}, modeTable); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"E3", "DM", "HCAM", "area=1024", "best per row:"} {
		if !strings.Contains(out, want) {
			t.Errorf("size output missing %q", want)
		}
	}
}

func TestRunSizeCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "size", experiments.Ratio, fastOpt(), experiments.AvailabilityConfig{}, experiments.ChaosConfig{}, experiments.RecoveryConfig{}, experiments.ClusterChaosConfig{}, modeCSV); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "query area,") {
		t.Errorf("CSV header missing: %q", strings.SplitN(out, "\n", 2)[0])
	}
	if strings.Contains(out, "best per row") {
		t.Error("CSV output contains table footer")
	}
}

func TestRunTheorem(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "theorem", experiments.MeanRT, fastOpt(), experiments.AvailabilityConfig{}, experiments.ChaosConfig{}, experiments.RecoveryConfig{}, experiments.ClusterChaosConfig{}, modeTable); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "paper theorem confirmed") {
		t.Errorf("theorem output:\n%s", buf.String())
	}
}

func TestRunTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "table1", experiments.MeanRT, fastOpt(), experiments.AvailabilityConfig{}, experiments.ChaosConfig{}, experiments.RecoveryConfig{}, experiments.ClusterChaosConfig{}, modeTable); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "holds") {
		t.Errorf("table1 output:\n%s", buf.String())
	}
}

func TestRunEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	opt := experiments.Options{Seed: 1, SampleLimit: 5}
	if err := run(&buf, "endtoend", experiments.MeanRT, opt, experiments.AvailabilityConfig{}, experiments.ChaosConfig{}, experiments.RecoveryConfig{}, experiments.ClusterChaosConfig{}, modeTable); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "E10") {
		t.Errorf("endtoend output:\n%s", buf.String())
	}
}

func TestRunPlotMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "size", experiments.Ratio, fastOpt(), experiments.AvailabilityConfig{}, experiments.ChaosConfig{}, experiments.RecoveryConfig{}, experiments.ClusterChaosConfig{}, modePlot); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "legend:") || !strings.Contains(out, "|") {
		t.Errorf("plot output malformed:\n%s", out)
	}
}

func TestRunPMShapeAttrs(t *testing.T) {
	for _, name := range []string{"pm", "shape", "attrs", "dbsize"} {
		var buf bytes.Buffer
		if err := run(&buf, name, experiments.MeanRT, fastOpt(), experiments.AvailabilityConfig{}, experiments.ChaosConfig{}, experiments.RecoveryConfig{}, experiments.ClusterChaosConfig{}, modeTable); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", name)
		}
	}
}

func TestRunRemainingExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("heavier experiment defaults")
	}
	opt := experiments.Options{Seed: 1, SampleLimit: 20}
	for _, name := range []string{
		"disks-small", "disks-large", "batch", "skew", "drift", "replication", "load",
	} {
		var buf bytes.Buffer
		if err := run(&buf, name, experiments.MeanRT, opt, experiments.AvailabilityConfig{}, experiments.ChaosConfig{}, experiments.RecoveryConfig{}, experiments.ClusterChaosConfig{}, modeTable); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", name)
		}
	}
}

func TestRunAvailability(t *testing.T) {
	var buf bytes.Buffer
	avail := experiments.AvailabilityConfig{GridSide: 16, Disks: 8, MaxFailed: 2, FailTrials: 2}
	if err := run(&buf, "availability", experiments.MeanRT, fastOpt(), avail, experiments.ChaosConfig{}, experiments.RecoveryConfig{}, experiments.ClusterChaosConfig{}, modeTable); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"EA", "chain", "offset+", "fault drill", "unavail", "without replication"} {
		if !strings.Contains(out, want) {
			t.Errorf("availability output missing %q:\n%s", want, out)
		}
	}
}

func TestRunChaos(t *testing.T) {
	var buf bytes.Buffer
	chaos := experiments.ChaosConfig{
		GridSide: 8, Disks: 4, Records: 512, Clients: 6,
		Duration: 60 * time.Millisecond, BaseLatency: 50 * time.Microsecond,
		Offset: 2, Methods: []string{"HCAM"},
	}
	if err := run(&buf, "chaos", experiments.MeanRT, fastOpt(), experiments.AvailabilityConfig{}, chaos, experiments.RecoveryConfig{}, experiments.ClusterChaosConfig{}, modeTable); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"EC", "goodput", "p999", "+hedge", "hedging effect"} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos output missing %q:\n%s", want, out)
		}
	}
}

func TestChaosNotInAll(t *testing.T) {
	for _, n := range order {
		if n == "chaos" {
			t.Error("chaos must not run as part of -experiment all")
		}
	}
}

func TestRunRecovery(t *testing.T) {
	var buf bytes.Buffer
	recovery := experiments.RecoveryConfig{
		GridSide: 8, Disks: 4, Records: 512, PageCapacity: 4, Clients: 4,
		Steady: 30 * time.Millisecond, Cooldown: 20 * time.Millisecond,
		BaseLatency: 50 * time.Microsecond, CorruptProb: 0.05,
		RebuildRates: []float64{0}, Offset: 2, Methods: []string{"HCAM"},
	}
	if err := run(&buf, "recovery", experiments.MeanRT, fastOpt(), experiments.AvailabilityConfig{}, experiments.ChaosConfig{}, recovery, experiments.ClusterChaosConfig{}, modeTable); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ER", "MTTR", "chain", "offset+2", "trade-off"} {
		if !strings.Contains(out, want) {
			t.Errorf("recovery output missing %q:\n%s", want, out)
		}
	}
}

func TestRecoveryNotInAll(t *testing.T) {
	for _, n := range order {
		if n == "recovery" {
			t.Error("recovery must not run as part of -experiment all")
		}
	}
}

func TestParseRates(t *testing.T) {
	rates, err := parseRates(" 100, 400,1600 ")
	if err != nil || len(rates) != 3 || rates[0] != 100 || rates[2] != 1600 {
		t.Errorf("parseRates = %v, %v", rates, err)
	}
	if got, err := parseRates(""); err != nil || got != nil {
		t.Errorf("empty parseRates = %v, %v", got, err)
	}
	if _, err := parseRates("fast"); err == nil {
		t.Error("non-numeric rate accepted")
	}
	if _, err := parseRates("-5"); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestRunWitness(t *testing.T) {
	if testing.Short() {
		t.Skip("witness extraction is seconds-scale")
	}
	var buf bytes.Buffer
	if err := run(&buf, "witness", experiments.MeanRT, fastOpt(), experiments.AvailabilityConfig{}, experiments.ChaosConfig{}, experiments.RecoveryConfig{}, experiments.ClusterChaosConfig{}, modeTable); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "M=7") || !strings.Contains(out, "unsatisfiable") {
		t.Errorf("witness output malformed:\n%s", out)
	}
}

// -parallel and -kernel flow into the sweep engine; every combination
// must print the same table, and an exhaustive disk sweep must carry
// its substitution warning into the artifact.
func TestRunParallelKernelIdentical(t *testing.T) {
	var want string
	for _, opt := range []experiments.Options{
		{Seed: 1, SampleLimit: 50, Parallel: 1, Kernel: cost.KernelWalk},
		{Seed: 1, SampleLimit: 50, Parallel: 8, Kernel: cost.KernelPrefix},
		{Seed: 1, SampleLimit: 50, Parallel: 3, Kernel: cost.KernelAuto},
	} {
		var buf bytes.Buffer
		if err := run(&buf, "disks-large", experiments.MeanRT, opt, experiments.AvailabilityConfig{}, experiments.ChaosConfig{}, experiments.RecoveryConfig{}, experiments.ClusterChaosConfig{}, modeTable); err != nil {
			t.Fatal(err)
		}
		if want == "" {
			want = buf.String()
		} else if buf.String() != want {
			t.Fatalf("output differs for %+v", opt)
		}
	}
}

func TestRunExhaustiveDisksWarns(t *testing.T) {
	var buf bytes.Buffer
	opt := experiments.Options{Seed: 1, Exhaustive: true}
	if err := run(&buf, "disks-small", experiments.MeanRT, opt, experiments.AvailabilityConfig{}, experiments.ChaosConfig{}, experiments.RecoveryConfig{}, experiments.ClusterChaosConfig{}, modeTable); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "warning: E6") || !strings.Contains(out, "sampled 2000") {
		t.Errorf("exhaustive disks output missing warning: %q", out[:120])
	}
}

func TestRunCluster(t *testing.T) {
	var buf bytes.Buffer
	clusterCfg := experiments.ClusterChaosConfig{
		GridSide: 8, Nodes: 4, DisksPerNode: 4, Records: 512, Clients: 4,
		Duration: 100 * time.Millisecond, BaseLatency: 100 * time.Microsecond,
	}
	if err := run(&buf, "cluster", experiments.MeanRT, fastOpt(), experiments.AvailabilityConfig{}, experiments.ChaosConfig{}, experiments.RecoveryConfig{}, clusterCfg, modeTable); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"EN", "placement", "chain", "offset+2", "node-loss", "rolling-restart", "replay with -seed"} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster output missing %q:\n%s", want, out)
		}
	}
}

// TestCheckFlagScope pins the silent-ignore fix: a soak-only flag
// passed to an experiment that never reads it must be rejected, while
// the same flag under a consuming experiment (including the implied
// spellings) passes.
func TestCheckFlagScope(t *testing.T) {
	set := func(names ...string) map[string]bool {
		m := make(map[string]bool, len(names))
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	for _, tc := range []struct {
		experiment string
		passed     map[string]bool
		wantErr    string // substring; "" = accept
	}{
		// The bug: soak knobs under the default sweep were silently dropped.
		{"all", set("qps"), "-qps"},
		{"all", set("soak"), "-soak"},
		{"size", set("clients"), "-clients"},
		{"table1", set("hedge-after"), "-hedge-after"},
		{"chaos", set("flash-crowd"), "-flash-crowd"},
		{"batch-goodput", set("qps"), "-qps"},
		{"batch-goodput", set("hedge-after"), "-hedge-after"},
		{"size", set("rebuild-rate"), "-rebuild-rate"},
		{"chaos", set("corrupt-prob"), "-corrupt-prob"},
		{"chaos", set("nodes"), "-nodes"},
		{"size", set("fail-disks"), "-fail-disks"},
		// Consumed: the flag reaches its experiment.
		{"chaos", set("soak", "qps", "clients", "hedge-after"), ""},
		{"cluster", set("soak", "clients", "hedge-after", "nodes", "flash-crowd", "migrate-rate"), ""},
		{"batch-goodput", set("soak", "clients"), ""},
		{"recovery", set("rebuild-rate", "corrupt-prob"), ""},
		{"availability", set("fail-disks", "fail-prob"), ""},
		{"all", set("fail-disks"), ""}, // the default sweep runs availability
		// Unscoped flags are everyone's business.
		{"size", set("seed", "samples", "metric"), ""},
		{"all", nil, ""},
	} {
		err := checkFlagScope(tc.experiment, tc.passed)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("checkFlagScope(%q, %v) rejected: %v", tc.experiment, tc.passed, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("checkFlagScope(%q, %v) accepted; want error naming %s", tc.experiment, tc.passed, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) || !strings.Contains(err.Error(), tc.experiment) {
			t.Errorf("checkFlagScope(%q, %v) error %q does not name the flag and experiment", tc.experiment, tc.passed, err)
		}
	}
}
