package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"decluster/internal/experiments"
	"decluster/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from this run's output")

// obsSoak runs one tiny instrumented chaos soak and returns its sink.
// The golden tests compare the *structure* of the dumps (metric names,
// labels, field layout) — values are normalized away — so the soak only
// needs to register every serving metric, which construction alone
// guarantees.
func obsSoak(t *testing.T, traceN int) *obs.Sink {
	t.Helper()
	sink := obs.NewSink()
	if traceN > 0 {
		sink.EnableTracing(traceN)
	}
	chaos := experiments.ChaosConfig{
		GridSide: 8, Disks: 4, Records: 256, Clients: 4,
		Duration: 40 * time.Millisecond, BaseLatency: 50 * time.Microsecond,
		Offset: 2, Methods: []string{"HCAM"},
		Obs: sink,
	}
	var buf bytes.Buffer
	if err := run(&buf, "chaos", experiments.MeanRT, fastOpt(), experiments.AvailabilityConfig{}, chaos, experiments.RecoveryConfig{}, experiments.ClusterChaosConfig{}, modeTable); err != nil {
		t.Fatal(err)
	}
	return sink
}

// normalizeDump replaces every metric value with a placeholder while
// keeping names, labels, and field structure: durations become "X",
// "=<int>" fields become "=N", and trailing integers (counter rows,
// CSV value columns) become "N".
func normalizeDump(s string) string {
	s = regexp.MustCompile(`-?\d+\.\d+ms`).ReplaceAllString(s, "X")
	s = regexp.MustCompile(`=-?\d+`).ReplaceAllString(s, "=N")
	s = regexp.MustCompile(`(?m)[ ,]-?\d+$`).ReplaceAllStringFunc(s, func(m string) string {
		return m[:1] + "N"
	})
	return s
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch (re-run with -update if the change is intended)\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestMetricsTableGolden(t *testing.T) {
	sink := obsSoak(t, 0)
	var buf bytes.Buffer
	if err := dumpObs(&buf, sink, "table", 0); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics_table.golden", normalizeDump(buf.String()))
}

func TestMetricsCSVGolden(t *testing.T) {
	sink := obsSoak(t, 0)
	var buf bytes.Buffer
	if err := dumpObs(&buf, sink, "csv", 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "kind,name,label,field,value\n") {
		t.Fatalf("CSV header missing:\n%s", strings.SplitN(out, "\n", 2)[0])
	}
	checkGolden(t, "metrics_csv.golden", normalizeDump(out))
}

func TestTraceDump(t *testing.T) {
	sink := obsSoak(t, 3)
	var buf bytes.Buffer
	if err := dumpObs(&buf, sink, "", 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== slowest") {
		t.Fatalf("trace header missing:\n%s", out)
	}
	for _, want := range []string{"query", "admit", "exec", "└─"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpObsNilSink(t *testing.T) {
	var buf bytes.Buffer
	if err := dumpObs(&buf, nil, "table", 5); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil sink produced output: %q", buf.String())
	}
}
