package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"decluster/internal/allocio"
)

func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const goodSpec = `{
  "grid": [32, 32],
  "disks": 8,
  "classes": [
    {"name": "rows", "sides": [1, 16], "weight": 3},
    {"name": "tiles", "sides": [4, 4], "weight": 1}
  ]
}`

func TestRunRecommends(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, writeSpec(t, goodSpec), "", "", 100, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"recommended method:", "per-class breakdown", "rows", "tiles"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSavesAllocation(t *testing.T) {
	var buf bytes.Buffer
	savePath := filepath.Join(t.TempDir(), "alloc.json")
	if err := run(&buf, writeSpec(t, goodSpec), savePath, "", 100, 1); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(savePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := allocio.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.Disks() != 8 || m.Grid().Buckets() != 1024 {
		t.Errorf("saved allocation wrong: %d disks, %d buckets", m.Disks(), m.Grid().Buckets())
	}
}

func TestRunCandidateFilter(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, writeSpec(t, goodSpec), "", "DM, HCAM", 100, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "ECC") {
		t.Error("filtered-out candidate appears in output")
	}
}

func TestRunSpecErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "/nonexistent/spec.json", "", "", 100, 1); err == nil {
		t.Error("missing spec accepted")
	}
	if err := run(&buf, writeSpec(t, "not json"), "", "", 100, 1); err == nil {
		t.Error("garbage spec accepted")
	}
	if err := run(&buf, writeSpec(t, `{"grid":[8,8],"disks":0,"classes":[]}`), "", "", 100, 1); err == nil {
		t.Error("zero disks accepted")
	}
	if err := run(&buf, writeSpec(t, `{"grid":[8,8],"disks":4,"classes":[]}`), "", "", 100, 1); err == nil {
		t.Error("empty classes accepted")
	}
	if err := run(&buf, writeSpec(t, `{"grid":[],"disks":4,"classes":[{"sides":[1],"weight":1}]}`), "", "", 100, 1); err == nil {
		t.Error("empty grid accepted")
	}
	bad := `{"grid":[8,8],"disks":4,"classes":[{"name":"x","sides":[9,1],"weight":1}]}`
	if err := run(&buf, writeSpec(t, bad), "", "", 100, 1); err == nil {
		t.Error("oversized class shape accepted")
	}
}

func TestRunUnnamedClassGetsDefault(t *testing.T) {
	var buf bytes.Buffer
	spec := `{"grid":[16,16],"disks":4,"classes":[{"sides":[2,2],"weight":1}]}`
	if err := run(&buf, writeSpec(t, spec), "", "", 50, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "class 0") {
		t.Errorf("default class name missing:\n%s", buf.String())
	}
}
