// Command declusteradvise recommends a declustering method for a
// relation from a description of its expected query workload — the
// reproduced paper's conclusion ("information about common queries on a
// relation ought to be used in deciding the declustering for it") as a
// command-line tool.
//
// The workload is described by a JSON spec:
//
//	{
//	  "grid":  [64, 64],
//	  "disks": 16,
//	  "classes": [
//	    {"name": "row scans",    "sides": [1, 32], "weight": 9},
//	    {"name": "tile lookups", "sides": [4, 4],  "weight": 1}
//	  ]
//	}
//
// Each class is a rectangle shape (sides, one per attribute) placed
// everywhere on the grid, weighted by how often queries of that class
// run.
//
// Usage:
//
//	declusteradvise -spec workload.json [-save allocation.json]
//	                [-candidates DM,GDM,FX*,ECC,HCAM] [-samples 1000]
//
// With -save, the winning method's full bucket→disk table is written
// as JSON (loadable by the library's allocio format).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"decluster/internal/advisor"
	"decluster/internal/alloc"
	"decluster/internal/allocio"
	"decluster/internal/grid"
	"decluster/internal/query"
)

// spec is the JSON workload description.
type spec struct {
	Grid    []int       `json:"grid"`
	Disks   int         `json:"disks"`
	Classes []classSpec `json:"classes"`
}

type classSpec struct {
	Name   string  `json:"name"`
	Sides  []int   `json:"sides"`
	Weight float64 `json:"weight"`
}

func main() {
	var (
		specPath   = flag.String("spec", "", "path to the JSON workload spec (required)")
		savePath   = flag.String("save", "", "write the winning allocation table as JSON to this path")
		candidates = flag.String("candidates", "", "comma-separated candidate methods (default: DM,GDM,FX*,ECC,HCAM)")
		samples    = flag.Int("samples", 1000, "query placements sampled per class")
		seed       = flag.Int64("seed", 1, "sampling seed")
	)
	flag.Parse()
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "declusteradvise: -spec is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *specPath, *savePath, *candidates, *samples, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "declusteradvise:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, specPath, savePath, candidateList string, samples int, seed int64) error {
	raw, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	var s spec
	if err := json.Unmarshal(raw, &s); err != nil {
		return fmt.Errorf("parsing %s: %w", specPath, err)
	}
	if s.Disks < 1 {
		return fmt.Errorf("spec: disks must be ≥ 1, got %d", s.Disks)
	}
	g, err := grid.New(s.Grid...)
	if err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("spec: no workload classes")
	}

	mix := make([]advisor.WorkloadClass, 0, len(s.Classes))
	for i, c := range s.Classes {
		qs, err := query.Placements(g, c.Sides, samples, seed+int64(i))
		if err != nil {
			return fmt.Errorf("class %q: %w", c.Name, err)
		}
		name := c.Name
		if name == "" {
			name = fmt.Sprintf("class %d", i)
		}
		mix = append(mix, advisor.WorkloadClass{
			Workload: query.Workload{Name: name, Queries: qs},
			Weight:   c.Weight,
		})
	}

	var cands []string
	if candidateList != "" {
		cands = strings.Split(candidateList, ",")
		for i := range cands {
			cands[i] = strings.TrimSpace(cands[i])
		}
	}
	rec, err := advisor.Recommend(g, s.Disks, mix, cands)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "relation: %v grid over %d disks, %d workload classes\n\n", g, s.Disks, len(mix))
	fmt.Fprint(w, rec.Describe())
	fmt.Fprintln(w, "\nper-class breakdown (mean RT in bucket accesses):")
	fmt.Fprintf(w, "  %-6s", "method")
	for _, c := range mix {
		fmt.Fprintf(w, "  %20s", c.Workload.Name)
	}
	fmt.Fprintln(w)
	for _, sc := range rec.Ranking {
		fmt.Fprintf(w, "  %-6s", sc.Method)
		for _, res := range sc.PerClass {
			fmt.Fprintf(w, "  %20.3f", res.MeanRT)
		}
		fmt.Fprintln(w)
	}

	if savePath == "" {
		return nil
	}
	winner, err := alloc.Build(rec.Best(), g, s.Disks)
	if err != nil {
		return err
	}
	f, err := os.Create(savePath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := allocio.Save(f, winner); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwinning allocation (%s) written to %s\n", rec.Best(), savePath)
	return nil
}
