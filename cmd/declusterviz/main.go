// Command declusterviz renders a declustering method's allocation of a
// 2-D grid as ASCII art: one character per bucket, the character
// encoding the disk (0-9 then a-z then A-Z), so the spatial structure
// of each scheme — DM's anti-diagonals, FX's XOR tartan, ECC's coset
// weave, HCAM's curve-following round robin — is visible at a glance.
//
// Usage:
//
//	declusterviz [flags]
//
//	-method  declustering method name (default HCAM)
//	-rows    grid partitions on attribute 0 (default 16)
//	-cols    grid partitions on attribute 1 (default 16)
//	-disks   number of disks (default 8)
//	-query   optional query rectangle "lo0,lo1,hi0,hi1" to analyze
//	-heat    optional query shape "s0xs1": render the response-time
//	         deviation of that shape at every placement
//	-worst   list the N worst small queries of the method (0 = off)
//
// Examples:
//
//	declusterviz -method DM -rows 12 -cols 12 -disks 5 -query 2,3,5,9
//	declusterviz -method DM -disks 4 -heat 2x2 -worst 5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"decluster"
)

// diskChar encodes a disk number as one character.
func diskChar(d int) byte {
	switch {
	case d < 10:
		return byte('0' + d)
	case d < 36:
		return byte('a' + d - 10)
	case d < 62:
		return byte('A' + d - 36)
	default:
		return '?'
	}
}

func main() {
	var (
		method = flag.String("method", "HCAM", "declustering method (see decluster.MethodNames)")
		rows   = flag.Int("rows", 16, "partitions on attribute 0")
		cols   = flag.Int("cols", 16, "partitions on attribute 1")
		disks  = flag.Int("disks", 8, "number of disks")
		qspec  = flag.String("query", "", `query rectangle "lo0,lo1,hi0,hi1"`)
		heat   = flag.String("heat", "", `query shape "s0xs1" to heat-map`)
		worst  = flag.Int("worst", 0, "list the N worst small queries")
	)
	flag.Parse()

	if err := run(os.Stdout, *method, *rows, *cols, *disks, *qspec, *heat, *worst); err != nil {
		fmt.Fprintln(os.Stderr, "declusterviz:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, method string, rows, cols, disks int, qspec, heat string, worst int) error {
	g, err := decluster.NewGrid(rows, cols)
	if err != nil {
		return err
	}
	m, err := decluster.Build(method, g, disks)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%s on a %s grid over %d disks\n\n", m.Name(), g, disks)
	for i := 0; i < rows; i++ {
		var line strings.Builder
		for j := 0; j < cols; j++ {
			line.WriteByte(diskChar(m.DiskOf(decluster.Coord{i, j})))
			line.WriteByte(' ')
		}
		fmt.Fprintln(w, line.String())
	}

	hist := decluster.LoadHistogram(m)
	fmt.Fprintf(w, "\nload histogram (buckets per disk): %v", hist)
	if decluster.IsBalanced(m) {
		fmt.Fprintln(w, "  [balanced]")
	} else {
		fmt.Fprintln(w, "  [imbalanced]")
	}

	if qspec != "" {
		r, err := parseQuery(g, qspec)
		if err != nil {
			return err
		}
		rt := decluster.ResponseTime(m, r)
		opt := decluster.OptimalRT(r.Volume(), disks)
		fmt.Fprintf(w, "\nquery %v: %d buckets, response time %d bucket accesses (optimal %d)\n",
			r, r.Volume(), rt, opt)
		fmt.Fprintf(w, "per-disk loads: %v\n", decluster.DiskLoads(m, r))
		if rt == opt {
			fmt.Fprintln(w, "the method answers this query optimally")
		} else {
			fmt.Fprintf(w, "deviation from optimal: %.2f×\n", float64(rt)/float64(opt))
		}
	}

	if heat != "" {
		sides, err := parseShape(heat)
		if err != nil {
			return err
		}
		hm, err := decluster.NewHeatMap(m, sides)
		if err != nil {
			return err
		}
		art, err := hm.Render2D()
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, art)
		anchor, worstRT := hm.Worst()
		fmt.Fprintf(w, "optimal on %.0f%% of placements; worst anchor %v with RT %d\n",
			hm.FracOptimal()*100, anchor, worstRT)
	}

	if worst > 0 {
		maxVol := 2 * disks
		qs, err := decluster.WorstQueries(m, maxVol, worst)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nworst queries of volume ≤ %d:\n", maxVol)
		if len(qs) == 0 {
			fmt.Fprintln(w, "  none — the method is optimal on every such query")
		}
		for i, q := range qs {
			fmt.Fprintf(w, "  %d. %v  RT %d vs optimal %d (%.2f×)\n", i+1, q.Rect, q.RT, q.Opt, q.Ratio)
		}
	}
	return nil
}

// parseShape parses "s0xs1" into side lengths.
func parseShape(spec string) ([]int, error) {
	parts := strings.Split(strings.ToLower(spec), "x")
	if len(parts) != 2 {
		return nil, fmt.Errorf("heat shape %q: want s0xs1", spec)
	}
	sides := make([]int, 2)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("heat shape %q: bad side %q", spec, p)
		}
		sides[i] = v
	}
	return sides, nil
}

// parseQuery parses "lo0,lo1,hi0,hi1" into a validated rectangle.
func parseQuery(g *decluster.Grid, spec string) (decluster.Rect, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 4 {
		return decluster.Rect{}, fmt.Errorf("query spec %q: want lo0,lo1,hi0,hi1", spec)
	}
	vals := make([]int, 4)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return decluster.Rect{}, fmt.Errorf("query spec %q: %v", spec, err)
		}
		vals[i] = v
	}
	return g.NewRect(decluster.Coord{vals[0], vals[1]}, decluster.Coord{vals[2], vals[3]})
}
