package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestDiskChar(t *testing.T) {
	cases := []struct {
		d    int
		want byte
	}{
		{0, '0'}, {9, '9'}, {10, 'a'}, {35, 'z'}, {36, 'A'}, {61, 'Z'}, {62, '?'},
	}
	for _, tc := range cases {
		if got := diskChar(tc.d); got != tc.want {
			t.Errorf("diskChar(%d) = %c, want %c", tc.d, got, tc.want)
		}
	}
}

func TestRunBasicRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "DM", 8, 8, 5, "", "", 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "DM on a 8×8 grid over 5 disks") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "load histogram") {
		t.Error("histogram missing")
	}
	// 8 rows of 8 cells each.
	gridLines := 0
	for _, line := range strings.Split(out, "\n") {
		if len(line) == 16 && strings.Count(line, " ") == 8 {
			gridLines++
		}
	}
	if gridLines != 8 {
		t.Errorf("got %d grid rows, want 8:\n%s", gridLines, out)
	}
}

func TestRunWithQuery(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "DM", 8, 8, 4, "1,1,2,4", "", 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "query <1,1>..<2,4>") || !strings.Contains(out, "per-disk loads") {
		t.Errorf("query analysis missing:\n%s", out)
	}
}

func TestRunWithHeatAndWorst(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "DM", 8, 8, 4, "", "2x2", 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "optimal on") || !strings.Contains(out, "worst queries of volume") {
		t.Errorf("heat/worst output missing:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "bogus", 8, 8, 4, "", "", 0); err == nil {
		t.Error("unknown method accepted")
	}
	if err := run(&buf, "DM", 0, 8, 4, "", "", 0); err == nil {
		t.Error("zero rows accepted")
	}
	if err := run(&buf, "DM", 8, 8, 4, "9,9,1,1", "", 0); err == nil {
		t.Error("inverted query accepted")
	}
	if err := run(&buf, "DM", 8, 8, 4, "1,1", "", 0); err == nil {
		t.Error("short query spec accepted")
	}
	if err := run(&buf, "DM", 8, 8, 4, "a,b,c,d", "", 0); err == nil {
		t.Error("non-numeric query spec accepted")
	}
	if err := run(&buf, "DM", 8, 8, 4, "", "2x2x2", 0); err == nil {
		t.Error("3-part heat shape accepted")
	}
	if err := run(&buf, "DM", 8, 8, 4, "", "0x2", 0); err == nil {
		t.Error("zero heat side accepted")
	}
}
