package main

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseGrid(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"8x8", []int{8, 8}, true},
		{" 4x4x4 ", []int{4, 4, 4}, true},
		{"32", []int{32}, true},
		{"8X8", []int{8, 8}, true},
		{"8x", nil, false},
		{"0x8", nil, false},
		{"8x-2", nil, false},
		{"axb", nil, false},
	}
	for _, c := range cases {
		got, err := parseGrid(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseGrid(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseGrid(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseRect(t *testing.T) {
	sm, _, err := buildGeometry("8x8", 4, 1, "chain", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := sm.Grid()
	r, err := parseRect("1,2:5,6", g)
	if err != nil {
		t.Fatal(err)
	}
	if r.Lo[0] != 1 || r.Lo[1] != 2 || r.Hi[0] != 5 || r.Hi[1] != 6 {
		t.Errorf("parseRect = %v", r)
	}
	for _, bad := range []string{"1,2", "1:2", "1,2:5", "1,2,3:4,5,6", "9,9:9,9", "5,5:1,1", "a,b:c,d"} {
		if _, err := parseRect(bad, g); err == nil {
			t.Errorf("parseRect(%q) accepted", bad)
		}
	}
}

func TestBuildGeometry(t *testing.T) {
	sm, method, err := buildGeometry("8x8", 4, 2, "offset", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Stride() != 2 {
		t.Errorf("offset default stride = %d, want nodes/2 = 2", sm.Stride())
	}
	if method.Grid().Buckets() != 64 {
		t.Errorf("method buckets = %d", method.Grid().Buckets())
	}
	if _, _, err := buildGeometry("8x8", 4, 2, "ring", 0, 4); err == nil {
		t.Error("unknown placement accepted")
	}
	if _, _, err := buildGeometry("2x2", 8, 1, "chain", 0, 4); err == nil {
		t.Error("more nodes than buckets accepted")
	}
}

// TestServeAndQuery boots a real 3-node cluster on loopback through the
// binary's own startNode path and runs client queries against it —
// healthy, then with one node stopped (replicated, so still exact).
func TestServeAndQuery(t *testing.T) {
	const (
		nodes   = 3
		records = 600
		seed    = int64(1)
	)
	sm, method, err := buildGeometry("8x8", nodes, 2, "chain", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*nodeServer, nodes)
	urls := make([]string, nodes)
	for i := range servers {
		s, err := startNode("127.0.0.1:0", i, sm, method, records, seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown()
		servers[i] = s
		urls[i] = "http://" + s.Addr()
	}
	peers := strings.Join(urls, ",")

	var out strings.Builder
	if err := runQuery(&out, "0,0:7,7", peers, sm, time.Second, 0, 10*time.Second); err != nil {
		t.Fatalf("healthy query: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "600 records") {
		t.Errorf("full-grid query should return all %d records:\n%s", records, out.String())
	}
	if !strings.Contains(out.String(), "3/3 sub-queries") {
		t.Errorf("full-grid query should cover 3 shards:\n%s", out.String())
	}

	// Stop node 1; with 2 replicas per shard the router must still
	// answer exactly via the surviving copies.
	if err := servers[1].Shutdown(); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runQuery(&out, "0,0:7,7", peers, sm, 500*time.Millisecond, 0, 10*time.Second); err != nil {
		t.Fatalf("degraded query: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "600 records") {
		t.Errorf("degraded query lost records:\n%s", out.String())
	}
	if strings.Contains(out.String(), "PARTIAL") {
		t.Errorf("degraded query went partial despite replication:\n%s", out.String())
	}

	// Mismatched peer count is rejected up front.
	if err := runQuery(&out, "0,0:7,7", urls[0], sm, time.Second, 0, time.Second); err == nil {
		t.Error("peer/node count mismatch accepted")
	}
}

// TestMigrateJoinAndStaleQuery drives the binary's whole elastic story:
// boot a 3-node cluster plus one standby, run -migrate join against it,
// then query it with a router still built from the 3-node boot geometry
// — the stale router must adopt the new epoch mid-query (via the nodes'
// stale-epoch replies) and still return every record.
func TestMigrateJoinAndStaleQuery(t *testing.T) {
	const (
		nodes   = 3
		records = 600
		seed    = int64(1)
	)
	sm, method, err := buildGeometry("8x8", nodes, 2, "chain", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	var urls []string
	for i := 0; i < nodes+1; i++ {
		id := i
		if i == nodes {
			id = sm.MaxMember() + 1 // the standby, as -standby computes it
		}
		s, err := startNode("127.0.0.1:0", id, sm, method, records, seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown()
		urls = append(urls, "http://"+s.Addr())
	}
	peers := strings.Join(urls, ",")

	var out strings.Builder
	if err := runMigrate(&out, "join", peers, sm, -1, 0, 30*time.Second); err != nil {
		t.Fatalf("migrate join: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "migrated to epoch 2") {
		t.Errorf("join did not reach epoch 2:\n%s", out.String())
	}

	// The query-side router is built from the boot geometry — epoch 1 —
	// and must follow the cluster to epoch 2 without being told.
	out.Reset()
	if err := runQuery(&out, "0,0:7,7", peers, sm, time.Second, 0, 10*time.Second); err != nil {
		t.Fatalf("stale query after join: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "600 records") {
		t.Errorf("stale query lost records after join:\n%s", out.String())
	}

	// Bad mode and unknown victim are rejected up front.
	if err := runMigrate(&out, "shuffle", peers, sm, -1, 0, time.Second); err == nil {
		t.Error("unknown -migrate mode accepted")
	}
	if err := runMigrate(&out, "leave", peers, sm, 99, 0, time.Second); err == nil {
		t.Error("leave of unknown member accepted")
	}
}
