// Command declusterd runs one node of a grid-declustered cluster, or
// queries a running cluster from the client side.
//
// Serve mode (-listen) boots one cluster member: the node derives the
// shared shard map from the cluster geometry flags, loads its hosted
// slice of the seeded dataset, and serves its shards over HTTP through
// a full serve.Scheduler (admission control, per-disk breakers, the
// single-process stack). Every node of a cluster must be started with
// identical geometry and dataset flags — the shard map and the data are
// pure functions of them, so nodes agree without any coordination
// service.
//
// Query mode (-query) scatter/gathers one range query across the
// cluster with the robust router: per-node deadlines, retry across
// replicas, hedging, breakers, and typed partial results when coverage
// is lost.
//
// Migrate mode (-migrate join|leave) executes one online membership
// change against a running cluster: it computes the minimal bucket-move
// plan from the boot geometry, streams the buckets to their new homes
// at migration priority (reads keep flowing), and cuts every member
// over to the next epoch. Routers that were not told — other declusterd
// -query invocations, long-lived clients — discover the new epoch on
// their next query via the nodes' stale-epoch replies.
//
// Autopilot mode (-autopilot) attaches the load-driven membership
// controller to a running cluster: it watches windowed per-node p99,
// admission-queue depth, and shed rate through its own router and
// health probes, and joins standby peers in (or drains the most recent
// joiner) through the same online migration the -migrate mode runs —
// with hysteresis, safety fuses, and a post-migration cool-down so a
// flapping signal never flaps the membership. Every decision is logged
// to stderr; it runs until SIGINT/SIGTERM.
//
// Usage:
//
//	declusterd -listen ADDR -node I [geometry flags]   serve node I
//	declusterd -listen ADDR -standby                   serve the joiner
//	declusterd -query LO:HI -peers URL,URL,...         query a cluster
//	declusterd -migrate join  -peers URL,...,JOINER    grow the cluster
//	declusterd -migrate leave -victim I -peers ...     shrink it
//	declusterd -autopilot -peers URL,...,STANDBYS      run the controller
//
//	Geometry (must match on every node and client):
//	-grid      grid dimensions, e.g. 8x8 or 4x4x4 (default 8x8)
//	-nodes     cluster size N (default 4)
//	-replicas  copies per shard (default 2)
//	-placement chain | offset (default chain)
//	-offset    offset placement's node stride (default nodes/2)
//	-disks     local disks per node (default 4)
//	-records   dataset size (default 4096)
//	-seed      dataset generator seed (default 1)
//
//	Serve mode:
//	-listen       bind address, e.g. 127.0.0.1:7000
//	-node         this node's ID in [0, nodes)
//	-standby      serve the next joiner instead: an empty member with
//	              ID nodes (it hosts nothing until a join migration
//	              streams its buckets in)
//	-base-latency simulated per-bucket read service time (default 0)
//
//	Query mode:
//	-query         cell rectangle "x1,y1:x2,y2" (inclusive)
//	-peers         comma-separated node base URLs, indexed by node ID
//	-node-deadline per-attempt deadline against one node (default 2s)
//	-hedge-after   hedge delay; 0 disables (default 0)
//	-timeout       end-to-end query deadline (default 30s)
//
//	Migrate mode:
//	-migrate      join (add the standby as member nodes) or leave
//	              (retire -victim; its buckets move to the survivors)
//	-victim       leave: the member to retire (default nodes-1)
//	-peers        every member's base URL indexed by member ID — for
//	              join, the standby's URL comes last
//	-migrate-rate copy throttle in pages/sec (default 0 = unthrottled)
//	-timeout      end-to-end migration deadline (default 30s)
//
//	Autopilot mode:
//	-autopilot      run the membership controller against -peers; URLs
//	                past the boot map are the standby pool it may join
//	-scale-up-p99   join a standby once windowed per-node p99 crosses
//	                this (default 50ms)
//	-scale-up-queue join once any member's admission queue reaches this
//	                depth (0 disables; default 0)
//	-scale-down-p99 drain the newest joiner once p99 falls below this
//	                with empty queues (0 disables scale-down; default 0)
//	-tick           control-loop period (default 250ms)
//	-cooldown       post-migration freeze (default 5s)
//	-min-nodes      never drain below this many members (default the
//	                boot map's node count)
//	-max-nodes      never grow past this many members (default the
//	                -peers count)
//	-migrate-rate   throttle for autopilot migrations too
//
// Example 3-node cluster on loopback, then an online join:
//
//	declusterd -listen 127.0.0.1:7000 -node 0 -nodes 3 &
//	declusterd -listen 127.0.0.1:7001 -node 1 -nodes 3 &
//	declusterd -listen 127.0.0.1:7002 -node 2 -nodes 3 &
//	declusterd -query 0,0:7,7 -nodes 3 \
//	  -peers http://127.0.0.1:7000,http://127.0.0.1:7001,http://127.0.0.1:7002
//	declusterd -listen 127.0.0.1:7003 -standby -nodes 3 &
//	declusterd -migrate join -nodes 3 -migrate-rate 800 \
//	  -peers http://127.0.0.1:7000,http://127.0.0.1:7001,http://127.0.0.1:7002,http://127.0.0.1:7003
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"decluster/internal/alloc"
	"decluster/internal/autopilot"
	"decluster/internal/cluster"
	"decluster/internal/datagen"
	"decluster/internal/grid"
	"decluster/internal/obs"
	"decluster/internal/repair"
	"decluster/internal/serve"
)

func main() {
	var (
		listen       = flag.String("listen", "", "serve mode: bind address (e.g. 127.0.0.1:7000)")
		nodeID       = flag.Int("node", 0, "serve mode: this node's ID in [0, nodes)")
		standby      = flag.Bool("standby", false, "serve mode: boot the next joiner (empty member ID nodes) instead of a map member")
		migrate      = flag.String("migrate", "", "migrate mode: execute an online membership change, join or leave")
		victim       = flag.Int("victim", -1, "migrate mode: the member -migrate leave retires (default nodes-1)")
		migrateRate  = flag.Float64("migrate-rate", 0, "migrate mode: copy throttle in pages/sec (0 = unthrottled)")
		gridSpec     = flag.String("grid", "8x8", "grid dimensions, e.g. 8x8 or 4x4x4")
		nodes        = flag.Int("nodes", 4, "cluster size N")
		replicas     = flag.Int("replicas", 2, "copies per shard")
		placement    = flag.String("placement", "chain", "replica placement: chain or offset")
		offset       = flag.Int("offset", 0, "offset placement's node stride (default nodes/2)")
		disks        = flag.Int("disks", 4, "local disks per node")
		records      = flag.Int("records", 4096, "dataset size")
		seed         = flag.Int64("seed", 1, "dataset generator seed")
		baseLatency  = flag.Duration("base-latency", 0, "serve mode: simulated per-bucket read service time")
		autopilotOn  = flag.Bool("autopilot", false, "autopilot mode: run the load-driven membership controller against -peers")
		scaleUpP99   = flag.Duration("scale-up-p99", 50*time.Millisecond, "autopilot mode: windowed per-node p99 that triggers a scale-up")
		scaleUpQueue = flag.Int("scale-up-queue", 0, "autopilot mode: admission-queue depth that triggers a scale-up (0 disables)")
		scaleDownP99 = flag.Duration("scale-down-p99", 0, "autopilot mode: p99 below which an idle cluster drains its newest joiner (0 disables scale-down)")
		apTick       = flag.Duration("tick", 250*time.Millisecond, "autopilot mode: control-loop period")
		apCooldown   = flag.Duration("cooldown", 5*time.Second, "autopilot mode: post-migration freeze")
		minNodes     = flag.Int("min-nodes", 0, "autopilot mode: membership floor (default the boot map's node count)")
		maxNodes     = flag.Int("max-nodes", 0, "autopilot mode: membership ceiling (default the -peers count)")
		query        = flag.String("query", "", "query mode: cell rectangle x1,y1:x2,y2 (inclusive)")
		peers        = flag.String("peers", "", "query mode: comma-separated node base URLs, indexed by node ID")
		nodeDeadline = flag.Duration("node-deadline", 2*time.Second, "query mode: per-attempt deadline against one node")
		hedgeAfter   = flag.Duration("hedge-after", 0, "query mode: hedge delay (0 disables)")
		timeout      = flag.Duration("timeout", 30*time.Second, "query mode: end-to-end query deadline")
	)
	flag.Parse()

	sm, method, err := buildGeometry(*gridSpec, *nodes, *replicas, *placement, *offset, *disks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "declusterd:", err)
		os.Exit(2)
	}
	modes := 0
	for _, on := range []bool{*listen != "", *query != "", *migrate != "", *autopilotOn} {
		if on {
			modes++
		}
	}
	switch {
	case modes > 1:
		fmt.Fprintln(os.Stderr, "declusterd: -listen, -query, -migrate, and -autopilot are mutually exclusive")
		os.Exit(2)
	case *listen != "":
		id := *nodeID
		if *standby {
			// The joiner is the member PlanJoin will bring in: one past
			// the highest member of the boot map.
			id = sm.MaxMember() + 1
		}
		err = serveNode(*listen, id, sm, method, *records, *seed, *baseLatency, os.Stderr)
	case *query != "":
		err = runQuery(os.Stdout, *query, *peers, sm, *nodeDeadline, *hedgeAfter, *timeout)
	case *migrate != "":
		err = runMigrate(os.Stdout, *migrate, *peers, sm, *victim, *migrateRate, *timeout)
	case *autopilotOn:
		err = runAutopilot(os.Stderr, *peers, sm, autopilotSettings{
			scaleUpP99:   *scaleUpP99,
			scaleUpQueue: *scaleUpQueue,
			scaleDownP99: *scaleDownP99,
			tick:         *apTick,
			cooldown:     *apCooldown,
			minNodes:     *minNodes,
			maxNodes:     *maxNodes,
			migrateRate:  *migrateRate,
			nodeDeadline: *nodeDeadline,
		})
	default:
		fmt.Fprintln(os.Stderr, "declusterd: pass -listen (serve a node), -query (query a cluster), -migrate (change membership), or -autopilot (run the controller)")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "declusterd:", err)
		os.Exit(1)
	}
}

// buildGeometry derives the cluster's shared shard map and per-node
// allocation method from the geometry flags.
func buildGeometry(gridSpec string, nodes, replicas int, placement string, offset, disks int) (*cluster.ShardMap, alloc.Method, error) {
	dims, err := parseGrid(gridSpec)
	if err != nil {
		return nil, nil, err
	}
	g, err := grid.New(dims...)
	if err != nil {
		return nil, nil, err
	}
	stride := 1
	switch placement {
	case "chain":
	case "offset":
		stride = offset
		if stride == 0 {
			stride = nodes / 2
		}
	default:
		return nil, nil, fmt.Errorf("unknown placement %q (chain, offset)", placement)
	}
	sm, err := cluster.NewShardMap(g, nodes, replicas, stride)
	if err != nil {
		return nil, nil, err
	}
	method, err := alloc.NewFX(g, disks)
	if err != nil {
		return nil, nil, err
	}
	return sm, method, nil
}

// nodeServer is one booted cluster member: a Node behind a live HTTP
// listener.
type nodeServer struct {
	node *cluster.Node
	srv  *http.Server
	ln   net.Listener
	errc chan error
}

func (s *nodeServer) Addr() string { return s.ln.Addr().String() }

func (s *nodeServer) Shutdown() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.srv.Shutdown(ctx)
	return s.node.Close()
}

// startNode builds one node's full stack (grid file, scheduler, HTTP
// handler) and binds it to listen. The caller owns shutdown.
func startNode(listen string, nodeID int, sm *cluster.ShardMap, method alloc.Method, records int, seed int64, baseLatency time.Duration) (*nodeServer, error) {
	data := datagen.Uniform{K: sm.Grid().K(), Seed: seed}.Generate(records)
	var opts []serve.Option
	if baseLatency > 0 {
		opts = append(opts, serve.WithBaseLatency(baseLatency))
	}
	n, err := cluster.NewNode(cluster.NodeConfig{
		ID:           nodeID,
		Map:          sm,
		Method:       method,
		Records:      data,
		ServeOptions: opts,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		n.Close()
		return nil, err
	}
	s := &nodeServer{
		node: n,
		srv:  &http.Server{Handler: n.Handler()},
		ln:   ln,
		errc: make(chan error, 1),
	}
	go func() { s.errc <- s.srv.Serve(ln) }()
	return s, nil
}

// serveNode boots one cluster member and blocks until SIGINT/SIGTERM.
func serveNode(listen string, nodeID int, sm *cluster.ShardMap, method alloc.Method, records int, seed int64, baseLatency time.Duration, logw io.Writer) error {
	s, err := startNode(listen, nodeID, sm, method, records, seed, baseLatency)
	if err != nil {
		return err
	}
	if hosted := sm.HostedShardsOfMember(nodeID); len(hosted) > 0 {
		fmt.Fprintf(logw, "declusterd: node %d/%d serving shards %v (%d records) on %s\n",
			nodeID, sm.Nodes(), hosted, s.node.Records(), s.Addr())
	} else {
		fmt.Fprintf(logw, "declusterd: standby member %d on %s (empty; awaiting a join migration)\n",
			nodeID, s.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case sg := <-sig:
		fmt.Fprintf(logw, "declusterd: %v, draining\n", sg)
	case err := <-s.errc:
		if !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}
	return s.Shutdown()
}

// runQuery scatter/gathers one range query and prints the outcome.
func runQuery(w io.Writer, querySpec, peerList string, sm *cluster.ShardMap, nodeDeadline, hedgeAfter, timeout time.Duration) error {
	q, err := parseRect(querySpec, sm.Grid())
	if err != nil {
		return err
	}
	endpoints := splitPeers(peerList)
	// Extra URLs beyond the boot map are fine — they name members a
	// join migration brought (or will bring) in, and the router needs
	// them the moment it adopts the newer epoch.
	if len(endpoints) < sm.Nodes() {
		return fmt.Errorf("-peers lists %d URLs for %d nodes", len(endpoints), sm.Nodes())
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Map:          sm,
		Endpoints:    endpoints,
		NodeDeadline: nodeDeadline,
		HedgeAfter:   hedgeAfter,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	start := time.Now()
	res, err := rt.Search(ctx, q)
	elapsed := time.Since(start)

	var pe *cluster.PartialError
	switch {
	case err == nil:
		fmt.Fprintf(w, "query %v: %d records from %d/%d sub-queries in %v\n",
			q, len(res.Records), res.Covered, res.SubQueries, elapsed.Round(time.Millisecond))
	case errors.As(err, &pe):
		fmt.Fprintf(w, "query %v: PARTIAL — %d records, %d/%d sub-queries covered in %v\n",
			q, len(res.Records), res.Covered, res.SubQueries, elapsed.Round(time.Millisecond))
		for i, r := range pe.Uncovered {
			fmt.Fprintf(w, "  uncovered: shard %d rect %v\n", pe.Shards[i], r)
		}
	default:
		return err
	}
	if res != nil {
		fmt.Fprintf(w, "per-node sub-queries: %v", res.PerNode)
		if res.Retries > 0 || res.Hedges > 0 {
			fmt.Fprintf(w, " (retries %d, hedges %d, hedge wins %d)", res.Retries, res.Hedges, res.HedgeWins)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runMigrate plans and executes one online membership change, then
// prints the plan and the copy statistics. The From map is the boot
// geometry (epoch 1): this tool performs a fresh cluster's first
// membership change; nodes already past epoch 1 refuse the prepare, so
// a mismatch fails loudly instead of moving buckets under the wrong map.
func runMigrate(w io.Writer, kind, peerList string, sm *cluster.ShardMap, victim int, rate float64, timeout time.Duration) error {
	var (
		plan *cluster.MigrationPlan
		err  error
	)
	switch kind {
	case "join":
		plan, err = cluster.PlanJoin(sm)
	case "leave":
		if victim < 0 {
			victim = sm.MemberAt(sm.Nodes() - 1)
		}
		plan, err = cluster.PlanLeave(sm, victim)
	default:
		return fmt.Errorf("-migrate must be join or leave, got %q", kind)
	}
	if err != nil {
		return err
	}
	throttle, err := repair.NewThrottle(rate, 0)
	if err != nil {
		return err
	}
	endpoints := splitPeers(peerList)
	fmt.Fprintf(w, "migrate %s: %s\n", kind, plan)
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	st, err := cluster.Migrate(ctx, cluster.MigrateConfig{
		Plan:      plan,
		Endpoints: endpoints,
		Throttle:  throttle,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "migrated to epoch %d: %d buckets (%d records, %d pages) in %v",
		plan.To.Epoch(), st.Buckets, st.Records, st.Pages, st.Elapsed.Round(time.Millisecond))
	if st.Retries > 0 {
		fmt.Fprintf(w, " (%d donor retries)", st.Retries)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "routers discover the new epoch on their next query")
	return nil
}

// autopilotSettings carries the -autopilot flag group.
type autopilotSettings struct {
	scaleUpP99   time.Duration
	scaleUpQueue int
	scaleDownP99 time.Duration
	tick         time.Duration
	cooldown     time.Duration
	minNodes     int
	maxNodes     int
	migrateRate  float64
	nodeDeadline time.Duration
}

// runAutopilot attaches the membership controller to a running cluster
// and blocks until SIGINT/SIGTERM, logging every decision as it lands.
// The controller's private router serves no query traffic, so its
// latency families stay empty; the windowed p99 signal instead comes
// from the latency histograms the nodes report in their health
// replies, which see every router's traffic — the watcher diffs
// successive probes into the same sliding window.
func runAutopilot(logw io.Writer, peerList string, sm *cluster.ShardMap, s autopilotSettings) error {
	endpoints := splitPeers(peerList)
	if len(endpoints) < sm.Nodes() {
		return fmt.Errorf("-peers lists %d URLs for %d nodes", len(endpoints), sm.Nodes())
	}
	if s.minNodes == 0 {
		s.minNodes = sm.Nodes()
	}
	if s.maxNodes == 0 {
		s.maxNodes = len(endpoints)
	}
	sink := obs.NewSink()
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Map:          sm,
		Endpoints:    endpoints,
		NodeDeadline: s.nodeDeadline,
		Obs:          sink,
	})
	if err != nil {
		return err
	}
	ctrl, err := autopilot.New(autopilot.Config{
		Router:      rt,
		Endpoints:   endpoints,
		Obs:         sink,
		Tick:        s.tick,
		MigrateRate: s.migrateRate,
		Policy: autopilot.Policy{
			ScaleUpP99:   s.scaleUpP99,
			ScaleUpQueue: s.scaleUpQueue,
			ScaleDownP99: s.scaleDownP99,
			CoolDown:     s.cooldown,
			MinNodes:     s.minNodes,
			MaxNodes:     s.maxNodes,
		},
		OnDecision: func(line string) { fmt.Fprintln(logw, "declusterd: autopilot", line) },
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "declusterd: autopilot watching %d members (+%d standby) — envelope [%d, %d], tick %v\n",
		sm.Nodes(), len(endpoints)-sm.Nodes(), s.minNodes, s.maxNodes, s.tick)
	ctrl.Start()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	sg := <-sig
	fmt.Fprintf(logw, "declusterd: %v, stopping autopilot\n", sg)
	ctrl.Stop()
	st := ctrl.Stats()
	fmt.Fprintf(logw, "declusterd: autopilot ran %d ticks: %d joins, %d leaves, %d aborts, %d vetoes, %d thrash, %d buckets moved (epoch %d)\n",
		st.Ticks, st.Joins, st.Leaves, st.Aborts, st.Vetoes, st.Thrash, st.Buckets, rt.Epoch())
	return nil
}

// parseGrid parses "8x8" / "4x4x4" into grid dimensions.
func parseGrid(s string) ([]int, error) {
	parts := strings.Split(strings.ToLower(strings.TrimSpace(s)), "x")
	if len(parts) < 1 {
		return nil, fmt.Errorf("bad -grid %q", s)
	}
	dims := make([]int, len(parts))
	for i, p := range parts {
		d, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || d < 1 {
			return nil, fmt.Errorf("bad -grid %q: %q is not a positive integer", s, p)
		}
		dims[i] = d
	}
	return dims, nil
}

// parseRect parses "x1,y1:x2,y2" into a validated cell rectangle.
func parseRect(s string, g *grid.Grid) (grid.Rect, error) {
	halves := strings.Split(strings.TrimSpace(s), ":")
	if len(halves) != 2 {
		return grid.Rect{}, fmt.Errorf("bad -query %q: want lo:hi (e.g. 0,0:7,7)", s)
	}
	parse := func(h string) (grid.Coord, error) {
		parts := strings.Split(h, ",")
		if len(parts) != g.K() {
			return nil, fmt.Errorf("bad -query %q: corner %q has %d axes for %d-attribute grid", s, h, len(parts), g.K())
		}
		c := make(grid.Coord, len(parts))
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("bad -query %q: %q is not an integer", s, p)
			}
			c[i] = v
		}
		return c, nil
	}
	lo, err := parse(halves[0])
	if err != nil {
		return grid.Rect{}, err
	}
	hi, err := parse(halves[1])
	if err != nil {
		return grid.Rect{}, err
	}
	return g.NewRect(lo, hi)
}

// splitPeers splits the -peers list, dropping empty entries.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
