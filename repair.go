package decluster

import (
	"context"
	"time"

	"decluster/internal/exec"
	"decluster/internal/gridfile"
	"decluster/internal/repair"
	"decluster/internal/serve"
)

// Store is the checksummed physical layer: per-disk bucket copies with
// per-page checksums verified on every read, supporting corruption
// injection, repair, and disk drop/rebuild cycles.
type Store = gridfile.Store

// CorruptPageError reports a page whose checksum failed verification.
type CorruptPageError = gridfile.CorruptError

// ErrCorruptPage matches checksum-mismatch read errors with errors.Is.
var ErrCorruptPage = gridfile.ErrCorrupt

// NewReplicaStore materializes a grid file onto a checksummed two-copy
// physical store: every bucket is stored on its primary and backup disk
// under the replica scheme.
func NewReplicaStore(f *GridFile, rep *Replicated) (*Store, error) {
	return gridfile.NewStore(f, func(b int) []int {
		return []int{rep.PrimaryOf(b), rep.BackupOf(b)}
	})
}

// StoreReader reads buckets from a checksummed store, verifying page
// checksums on every read. Attach with WithBucketReader or
// WithServeReader so queries observe — and with read-repair, fix —
// silent corruption.
func StoreReader(s *Store) BucketReader { return exec.NewStoreReader(s) }

// RepairState is one disk's position in the repair lifecycle:
// healthy → suspect → rebuilding → healthy.
type RepairState = repair.State

// Repair lifecycle states.
const (
	RepairHealthy    = repair.StateHealthy
	RepairSuspect    = repair.StateSuspect
	RepairRebuilding = repair.StateRebuilding
)

// RepairTracker records per-disk repair states; its zero value is ready
// to use and safe for concurrent use.
type RepairTracker = repair.Tracker

// Scrubber sweeps stored bucket copies verifying checksums and
// repairing mismatches from a clean sibling replica, paced by a token
// bucket.
type Scrubber = repair.Scrubber

// ScrubConfig tunes a Scrubber's pace, tracker, and fault awareness.
type ScrubConfig = repair.ScrubConfig

// ScrubReport summarizes one scrub sweep.
type ScrubReport = repair.ScrubReport

// NewScrubber builds a corruption scrubber over a checksummed store.
func NewScrubber(s *Store, cfg ScrubConfig) (*Scrubber, error) {
	return repair.NewScrubber(s, cfg)
}

// Scrub runs one full scrub sweep with default pacing: every stored
// copy verified, mismatches repaired from surviving replicas.
func Scrub(ctx context.Context, s *Store, inj *FaultInjector) (*ScrubReport, error) {
	sc, err := repair.NewScrubber(s, repair.ScrubConfig{Faults: inj})
	if err != nil {
		return nil, err
	}
	return sc.RunOnce(ctx)
}

// ReadRepairer wraps a bucket reader so a foreground read that hits a
// checksum mismatch repairs the rotten copy from the surviving replica
// and returns the clean records — attach its Wrap with WithReadRepair.
type ReadRepairer = repair.ReadRepairer

// NewReadRepairer builds an inline read-repairer over a store. tracker
// and inj may be nil.
func NewReadRepairer(s *Store, tracker *RepairTracker, inj *FaultInjector) *ReadRepairer {
	return repair.NewReadRepairer(s, tracker, inj)
}

// WithReadRepair attaches inline read-repair to a serving scheduler:
// foreground reads that observe corruption fix it in passing.
func WithReadRepair(rr *ReadRepairer) ServeOption { return serve.WithReadWrapper(rr.Wrap) }

// WithServeWrapper composes an arbitrary reader wrapper into a
// scheduler's read path (applied in option order, innermost first).
func WithServeWrapper(wrap func(BucketReader) BucketReader) ServeOption {
	return serve.WithReadWrapper(wrap)
}

// Rebuilder reconstructs a permanently failed disk's bucket copies from
// surviving replicas, throttled and admitted at background priority
// when a scheduler is attached.
type Rebuilder = repair.Rebuilder

// RebuildConfig tunes a rebuild: throttle, admission priority, shed
// backoff, and state tracking.
type RebuildConfig = repair.RebuildConfig

// RebuildReport summarizes one disk rebuild, including the elapsed
// mean-time-to-repair.
type RebuildReport = repair.RebuildReport

// RebuildBackgroundPriority is the default admission priority of
// rebuild reads — far below foreground, so overload sheds rebuild
// traffic first.
const RebuildBackgroundPriority = repair.BackgroundPriority

// NewRebuilder builds a rebuild engine. sched may be nil for direct
// store reads.
func NewRebuilder(s *Store, sched *Scheduler, inj *FaultInjector, cfg RebuildConfig) (*Rebuilder, error) {
	return repair.NewRebuilder(s, sched, inj, cfg)
}

// Rebuild reconstructs a permanently failed disk with default pacing
// (unthrottled, background priority) and returns it to service.
func Rebuild(ctx context.Context, s *Store, sched *Scheduler, inj *FaultInjector, disk int) (*RebuildReport, error) {
	rb, err := repair.NewRebuilder(s, sched, inj, repair.RebuildConfig{})
	if err != nil {
		return nil, err
	}
	return rb.Rebuild(ctx, disk)
}

// SeedCorruption applies an injector's seeded per-page corruption plan
// to a store, keeping at least one fully clean copy of every bucket.
// It returns the number of pages corrupted.
func SeedCorruption(s *Store, inj *FaultInjector) int {
	return repair.SeedCorruption(s, inj)
}

// ServeWarnings returns non-fatal configuration warnings a scheduler
// accumulated at construction (e.g. a base latency clamped up to the
// host's measurable timer floor).
func ServeWarnings(s *Scheduler) []string { return s.Warnings() }

// TimerFloor is the smallest sleep the host's timers can actually
// deliver; simulated latencies below it are clamped up to it.
func TimerFloor() time.Duration { return serve.TimerFloor() }
